"""Structured tracing and counters for the evaluation stack.

The paper's complexity theorems are statements about *quantities* —
materialised domain cardinalities ``|dom(T, D)|`` (hyperexponential in
general, Section 2), quantifier product sizes, fixpoint stage counts
(Definition 3.1), and range sizes under restricted evaluation
(Theorem 5.1).  This module makes those quantities observable:

* :class:`Tracer` — collects a tree of timed :class:`Span` objects with
  point-in-time :class:`Event` records hanging off them, plus a flat
  ``counters`` dict of monotonic counts and last-write gauges.
* :data:`NULL_TRACER` — a no-op :class:`NullTracer` singleton that is
  the module-level default, so instrumentation call sites cost one
  attribute check when tracing is off.
* :func:`use_tracer` / :func:`get_tracer` — install a live tracer for a
  dynamic extent; every instrumented engine resolves the active tracer
  at evaluation time, so callers never have to thread it explicitly.

Zero dependencies by design: only ``time.perf_counter`` and stdlib
containers.  Rendering and JSON export live in :mod:`repro.obs.render`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from .metrics import MetricsRegistry

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

#: Default cap on recorded events across a whole trace; beyond it events
#: are counted in ``Tracer.dropped_events`` instead of stored, so a
#: million-stage fixpoint cannot exhaust memory through its own trace.
DEFAULT_MAX_EVENTS = 100_000


class Event:
    """A point-in-time record inside a span (e.g. one fixpoint stage)."""

    __slots__ = ("name", "attrs", "time")

    def __init__(self, name: str, attrs: dict[str, Any], at: float):
        self.name = name
        self.attrs = attrs
        self.time = at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, {self.attrs!r})"


class Span:
    """A timed region of evaluation (a query, a fixpoint, an operator).

    Beyond the timing fields, a span knows its ``parent`` (None only for
    the root), carries a ``status`` (``"ok"``, or ``"aborted"`` when an
    exception unwound through it), and — when the tracer runs with
    ``memory=True`` — per-span allocation accounting from
    :class:`repro.obs.memory.MemoryAttributor`:

    * ``alloc_bytes`` — net bytes retained across the span (cumulative,
      children included);
    * ``self_alloc_bytes`` — ``alloc_bytes`` minus the children's, i.e.
      what this span's own code retained;
    * ``peak_bytes`` — the high-water mark of traced bytes above the
      span's opening level (cumulative).
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "events",
                 "parent", "status", "alloc_bytes", "self_alloc_bytes",
                 "peak_bytes")

    def __init__(self, name: str, attrs: dict[str, Any], start: float,
                 parent: Span | None = None):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []
        self.events: list[Event] = []
        self.parent = parent
        self.status = "ok"
        self.alloc_bytes: int | None = None
        self.self_alloc_bytes: int | None = None
        self.peak_bytes: int | None = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span has been opened (e.g. row
        counts known only once the region finished)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Wall seconds; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Wall seconds spent in this span minus its closed children —
        the span's own share of the cumulative time."""
        own = self.duration - sum(child.duration for child in self.children)
        return own if own > 0.0 else 0.0

    def walk(self) -> Iterator[Span]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.attrs!r}, children={len(self.children)})"


class Tracer:
    """Collects spans, events, and counters for one traced extent.

    Counters are a flat ``name -> number`` dict; :meth:`count` adds
    (monotonic counters), :meth:`gauge` overwrites (last-write gauges
    such as per-type domain cardinalities), :meth:`gauge_max` keeps the
    high watermark (peak working-set rows).  Each of those also feeds a
    typed metric of the same name in ``metrics``
    (:class:`repro.obs.metrics.MetricsRegistry`); :meth:`observe`
    records into a log-bucketed histogram there *without* polluting the
    flat dict (distributions are not single numbers).  The span tree
    hangs off ``root``, an implicit span opened at construction.
    """

    enabled = True

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS,
                 memory: bool = False, stream: Any = None):
        self.root = Span("trace", {}, time.perf_counter())
        self.counters: dict[str, int | float] = {}
        self.metrics = MetricsRegistry()
        self.max_events = max_events
        self.dropped_events = 0
        self.last_beat = time.monotonic()
        self._stack: list[Span] = [self.root]
        self._n_events = 0
        self.memory = None
        if memory:
            from .memory import MemoryAttributor

            self.memory = MemoryAttributor()
            self.memory.start()
            self.memory.on_open(self.root)
        self.stream = None
        if stream is not None:
            from .stream import StreamWriter

            if not isinstance(stream, StreamWriter):
                stream = StreamWriter(stream)
            self.stream = stream
            self.stream.begin(self)

    # -- span / event API ------------------------------------------------

    @contextmanager
    def span(self, name: str, /, **attrs: Any) -> Iterator[Span]:
        """Open a child span for the dynamic extent of the ``with`` body.

        An exception unwinding through the body still closes the span
        (timing and memory accounting stay consistent) but marks it
        ``status="aborted"``, so a partial trace of a failed run shows
        exactly how far evaluation got.
        """
        span = Span(name, attrs, time.perf_counter(), self._stack[-1])
        self._stack[-1].children.append(span)
        self._stack.append(span)
        self.last_beat = time.monotonic()
        if self.memory is not None:
            self.memory.on_open(span)
        if self.stream is not None:
            self.stream.span_opened(span)
        try:
            yield span
        except BaseException:
            span.status = "aborted"
            raise
        finally:
            span.end = time.perf_counter()
            if self.memory is not None:
                self.memory.on_close(span)
            if self.stream is not None:
                self.stream.span_closed(span, self.counters)
            self._stack.pop()

    def event(self, name: str, /, **attrs: Any) -> None:
        """Record a point event under the innermost open span."""
        self.last_beat = time.monotonic()
        if self._n_events >= self.max_events:
            self.dropped_events += 1
            return
        self._n_events += 1
        event = Event(name, attrs, time.perf_counter())
        span = self._stack[-1]
        span.events.append(event)
        if self.stream is not None:
            self.stream.event_recorded(span, event, self.counters)

    def heartbeat(self) -> None:
        """Signal liveness to the stall watchdog; engines call this once
        per fixpoint stage / Datalog rule, so a beat-free window means a
        single stage is wedged, not that evaluation is merely slow."""
        self.last_beat = time.monotonic()

    # -- counters --------------------------------------------------------

    def count(self, name: str, /, delta: int | float = 1) -> None:
        """Add ``delta`` to a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + delta
        self.metrics.counter(name).inc(delta)

    def gauge(self, name: str, /, value: int | float) -> None:
        """Set a last-write gauge."""
        self.counters[name] = value
        self.metrics.gauge(name).set(value)

    def gauge_max(self, name: str, /, value: int | float) -> None:
        """Raise a high-watermark gauge to ``value`` if it exceeds the
        current reading (peak working-set rows, peak range size)."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value
        self.metrics.gauge(name).set_max(value)

    def observe(self, name: str, /, value: int | float) -> None:
        """Record ``value`` into the log-bucketed histogram ``name``.

        Histograms live only in the typed registry — the flat
        ``counters`` dict stays a scalar table.
        """
        self.metrics.histogram(name).record(value)

    def close(self) -> None:
        """Close the root span (idempotent); exporters call this.

        Any span still open — possible when an exception unwinds past a
        caller that holds the tracer, or a generator parks mid-span — is
        flushed: marked ``aborted``, closed, and memory-accounted, so an
        exported partial trace is always a complete tree.
        """
        if self.root.end is not None:
            return
        now = time.perf_counter()
        while len(self._stack) > 1:
            span = self._stack[-1]
            span.status = "aborted"
            span.end = now
            if self.memory is not None:
                self.memory.on_close(span)
            if self.stream is not None:
                self.stream.span_closed(span, self.counters)
            self._stack.pop()
        self.root.end = now
        if self.memory is not None:
            self.memory.on_close(self.root)
            self.memory.stop()
        if self.stream is not None:
            self.stream.span_closed(self.root, self.counters)
            self.stream.end(self)


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`; swallows ``set``."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


class _NullSpanContext:
    """Reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """No-op tracer: every method returns immediately.

    ``enabled`` is False so hot loops can skip even building the kwargs
    for an event (``if tracer.enabled: tracer.event(...)``).
    """

    enabled = False

    def span(self, name: str, /, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, /, **attrs: Any) -> None:
        pass

    def heartbeat(self) -> None:
        pass

    def count(self, name: str, /, delta: int | float = 1) -> None:
        pass

    def gauge(self, name: str, /, value: int | float) -> None:
        pass

    def gauge_max(self, name: str, /, value: int | float) -> None:
        pass

    def observe(self, name: str, /, value: int | float) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the no-op default unless one is installed)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer (None restores the no-op
    default); returns the now-active tracer."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER
    return _active


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` for the dynamic extent of the ``with`` body."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
