"""Typed metrics: counters, gauges, and log-bucketed histograms.

The paper's theorems are statements about *curves* — time and space as
functions of instance size (PTIME/PSPACE on dense inputs, Theorem 4.1;
``P(hyper(j,k))`` under mixed density, Theorem 4.2; the LOGSPACE/PTIME/
PSPACE safety ladder of Theorem 5.1).  The flat ``Tracer.counters`` dict
of PR 1 records point totals but erases *types* (a monotonic count and a
last-write gauge are indistinguishable) and *distributions* (a million
fixpoint stages collapse to one number).  This module adds the typed
layer:

* :class:`Counter` — monotonically increasing totals (rows derived,
  value nodes materialised);
* :class:`Gauge` — last-write (or high-watermark, via :meth:`Gauge.set_max`)
  instantaneous values (peak working-set rows, per-type domain
  cardinalities);
* :class:`Histogram` — power-of-two log-bucketed distributions with
  count/total/min/max and bucket-resolution quantiles (per-stage
  relation cardinalities, per-variable range sizes);
* :class:`MetricsRegistry` — a name-keyed collection of the above, with
  kind-checked get-or-create accessors;
* :func:`metrics_to_json` / :func:`metrics_from_json` — a versioned,
  JSON-safe export that round-trips.

Space-accounting helpers live here too: :func:`value_node_count` is the
deep node count of a nested complex object (every atom, tuple, and set
node — the ``||o||``-flavoured size the engines report for materialised
domains and answers), and :func:`tracemalloc_peak` is an optional
context manager measuring peak allocated bytes via :mod:`tracemalloc`.

Zero dependencies by design, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "metrics_to_json",
    "metrics_from_json",
    "value_node_count",
    "tracemalloc_peak",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value: Number = value

    def inc(self, delta: Number = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter decremented by {delta!r}")
        self.value += delta

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value!r})"


class Gauge:
    """A last-write instantaneous value, with a high-watermark mode."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value: Number = value

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        """Write ``value`` only if it exceeds the current reading —
        turns the gauge into a peak (high-watermark) tracker."""
        if value > self.value:
            self.value = value

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value!r})"


def _bucket_index(value: Number) -> int:
    """The log-2 bucket of a value.

    Bucket ``0`` holds everything ``<= 1`` (including zero and negative
    readings); bucket ``b >= 1`` holds values in ``(2**(b-1), 2**b]``.
    Exact powers of two land in the bucket they bound, so boundaries
    are deterministic for the integer readings the engines record.
    """
    if value <= 1:
        return 0
    if isinstance(value, int):
        return (value - 1).bit_length()
    return max(1, math.ceil(math.log2(value)))


class Histogram:
    """A power-of-two log-bucketed distribution.

    Bucket ``b`` has upper bound ``2**b`` (bucket 0: values ``<= 1``),
    so fifty buckets cover every cardinality up to ``2**50`` with
    constant memory — the right resolution for quantities that the
    paper's bounds describe up to polynomial factors anyway.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total: Number = 0
        self.min: Number | None = None
        self.max: Number | None = None
        self.buckets: dict[int, int] = {}

    def record(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = _bucket_index(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_upper_bound(self, bucket: int) -> int:
        return 1 if bucket == 0 else 2**bucket

    def quantile(self, q: float) -> Number:
        """An upper bound on the ``q``-quantile at bucket resolution.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q * count``, clipped to the observed maximum
        (exact when all mass in that bucket sits at one value).
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0
        target = q * self.count
        cumulative = 0
        assert self.max is not None
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            if cumulative >= target:
                return min(self.bucket_upper_bound(bucket), self.max)
        return self.max

    def summary(self) -> dict[str, Any]:
        """Count/total/min/max/mean plus p50/p90/p99 bucket quantiles."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, min={self.min}, max={self.max})"


Metric = Union[Counter, Gauge, Histogram]

_KINDS: dict[str, type] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Name-keyed typed metrics with kind-checked get-or-create access.

    Re-registering a name under a different kind raises — a counter
    silently read back as a gauge is exactly the confusion typed metrics
    exist to rule out.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._get_or_create(name, Histogram)
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def items(self) -> Iterator[tuple[str, Metric]]:
        yield from sorted(self._metrics.items())

    def histograms(self) -> Iterator[tuple[str, Histogram]]:
        for name, metric in self.items():
            if isinstance(metric, Histogram):
                yield name, metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics


def metrics_to_json(metrics: MetricsRegistry) -> dict[str, Any]:
    """A versioned JSON-safe document; round-trips through
    :func:`metrics_from_json`."""
    return {
        "schema": 1,
        "metrics": {name: metric.to_json() for name, metric in metrics.items()},
    }


def metrics_from_json(doc: dict[str, Any]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from :func:`metrics_to_json`
    output."""
    registry = MetricsRegistry()
    for name, entry in doc.get("metrics", {}).items():
        kind = _KINDS.get(entry.get("kind"))
        if kind is None:
            raise ValueError(f"unknown metric kind {entry.get('kind')!r}")
        if kind is Histogram:
            histogram = registry.histogram(name)
            histogram.count = entry["count"]
            histogram.total = entry["total"]
            histogram.min = entry["min"]
            histogram.max = entry["max"]
            histogram.buckets = {
                int(b): n for b, n in entry["buckets"].items()
            }
        elif kind is Counter:
            registry.counter(name).value = entry["value"]
        else:
            registry.gauge(name).value = entry["value"]
    return registry


def value_node_count(value: Any) -> int:
    """Deep node count of a nested object: every atom, tuple, and set
    node, pre-order — the space accounting unit for materialised
    complex objects.

    Duck-typed on the value layer's ``subobjects()`` iterator so this
    module stays dependency-free; plain tuples/frozensets (engine row
    containers) recurse structurally, and anything else counts as one
    node.
    """
    subobjects = getattr(value, "subobjects", None)
    if subobjects is not None:
        return sum(1 for _ in subobjects())
    if isinstance(value, (tuple, list, set, frozenset)):
        return 1 + sum(value_node_count(item) for item in value)
    return 1


class _PeakBytes:
    """Result holder for :func:`tracemalloc_peak` (filled on exit)."""

    __slots__ = ("bytes", "enabled")

    def __init__(self) -> None:
        self.bytes: int | None = None
        self.enabled = False


@contextmanager
def tracemalloc_peak() -> Iterator[_PeakBytes]:
    """Measure peak allocated bytes over the ``with`` body.

    Uses :mod:`tracemalloc` (stdlib).  If tracing was already started by
    an outer caller, the peak is reset and read without stopping it.
    The holder's ``bytes`` stays ``None`` until the block exits.
    """
    import tracemalloc

    holder = _PeakBytes()
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    holder.enabled = True
    try:
        yield holder
    finally:
        holder.bytes = tracemalloc.get_traced_memory()[1]
        if not already_tracing:
            tracemalloc.stop()
