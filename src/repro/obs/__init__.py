"""repro.obs — zero-dependency tracing, counters, and EXPLAIN profiling.

The observability layer for the evaluation stack: every engine
(calculus evaluator, IFP/PFP iteration, range-restricted safety
evaluation, Datalog, nested algebra) reports the paper's cost drivers —
materialised domain cardinalities, quantifier product sizes, fixpoint
stage counts and per-stage deltas, derived range sizes, dedup hits —
through the active tracer, which also carries typed metrics (monotonic
counters, gauges, log-bucketed histograms) for the space-accounting
series the benchmark observatory fits curves to.  The default tracer is
a no-op; install a live one with::

    from repro.obs import Tracer, use_tracer, render_tree, summary_table

    tracer = Tracer()
    with use_tracer(tracer):
        answer = evaluate(query, inst)
    print(render_tree(tracer))
    print(summary_table(tracer))

or use ``repro profile`` / ``repro query --trace`` / ``repro bench``
from the CLI.
"""

from .export import (
    ExportError,
    chrome_trace,
    collapsed_stacks,
    tracer_from_document,
)
from .memory import (
    MemoryAttributor,
    attribution_report,
    format_bytes,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    metrics_from_json,
    metrics_to_json,
    tracemalloc_peak,
    value_node_count,
)
from .ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    LedgerError,
    RunRecorder,
    aggregate_records,
    append_record,
    default_ledger_path,
    diff_records,
    find_record,
    headline_counters,
    instance_checksum,
    peak_rss_bytes,
    query_hash,
    read_ledger,
    rows_checksum,
)
from .render import (
    aggregate_table,
    align_table,
    history_table,
    memory_table,
    metrics_table,
    render_tree,
    sparkline,
    summary_table,
    titled_table,
    trace_from_json,
    trace_to_json,
)
from .stream import (
    STREAM_SCHEMA,
    StallError,
    StreamError,
    StreamWriter,
    Watchdog,
    read_segments,
    replay_stream,
)
from .trace import (
    NULL_TRACER,
    Event,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "align_table",
    "render_tree",
    "summary_table",
    "metrics_table",
    "memory_table",
    "sparkline",
    "titled_table",
    "trace_to_json",
    "trace_from_json",
    "ExportError",
    "chrome_trace",
    "collapsed_stacks",
    "tracer_from_document",
    "MemoryAttributor",
    "attribution_report",
    "format_bytes",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "metrics_to_json",
    "metrics_from_json",
    "value_node_count",
    "tracemalloc_peak",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "LedgerError",
    "RunRecorder",
    "aggregate_records",
    "aggregate_table",
    "append_record",
    "default_ledger_path",
    "diff_records",
    "find_record",
    "headline_counters",
    "history_table",
    "instance_checksum",
    "peak_rss_bytes",
    "query_hash",
    "read_ledger",
    "rows_checksum",
    "STREAM_SCHEMA",
    "StallError",
    "StreamError",
    "StreamWriter",
    "Watchdog",
    "read_segments",
    "replay_stream",
]
