"""Per-span memory attribution via tracemalloc boundary diffing.

The paper's tractability results are *space* theorems as much as time
theorems (Theorem 5.1's polynomial ranges, Theorem 4.1(3)'s
no-timestamps working set), but until now the tracer could only carry
space as engine counters at chokepoints.  :class:`MemoryAttributor`
attributes allocated bytes to the span tree itself: it snapshots
``tracemalloc.get_traced_memory()`` at every span open/close and diffs
the snapshots into three per-span figures (see
:class:`repro.obs.trace.Span`):

* ``alloc_bytes`` — net traced bytes retained across the span,
  children included (close-current minus open-current, may be
  negative when the span released more than it kept);
* ``self_alloc_bytes`` — ``alloc_bytes`` minus the children's
  ``alloc_bytes``: the span's own retained share.  By construction the
  ``self_alloc_bytes`` over any subtree sum exactly to the subtree
  root's ``alloc_bytes``;
* ``peak_bytes`` — the high-water mark above the span's opening level,
  using ``tracemalloc.reset_peak()`` at each boundary and propagating
  child peaks upward, so a parent's peak is never below a child's.

Attribution is exact for retained bytes and a high-water envelope for
transients.  The cost is tracemalloc's: roughly a 2x slowdown while
tracing (measured in EXPERIMENTS.md E29), which is why the tracer only
engages it behind ``Tracer(memory=True)`` / ``--memory``.

Two tracers with memory attribution must not be live at once — they
would fight over the process-global ``reset_peak`` — which the
one-tracer-per-extent discipline of :func:`repro.obs.use_tracer`
already gives.
"""

from __future__ import annotations

import tracemalloc
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .trace import Span, Tracer

__all__ = ["MemoryAttributor", "attribution_report", "format_bytes"]


class MemoryAttributor:
    """Tracks one frame per open span: the traced-current level at open,
    the running peak observed so far (own and propagated from closed
    children), and the children's summed net allocation."""

    __slots__ = ("_frames", "_started_here", "enabled")

    def __init__(self) -> None:
        #: One [open_current, running_peak, child_alloc] triple per open span.
        self._frames: list[list[int]] = []
        self._started_here = False
        self.enabled = False

    def start(self) -> None:
        """Begin tracing allocations (idempotent w.r.t. an outer
        tracemalloc session: only stops what it started)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        self.enabled = True

    def stop(self) -> None:
        if self._started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_here = False
        self.enabled = False

    def on_open(self, span: Span) -> None:
        if not self.enabled:
            return
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        self._frames.append([current, current, 0])

    def on_close(self, span: Span) -> None:
        if not self.enabled or not self._frames:
            return
        current, peak = tracemalloc.get_traced_memory()
        open_current, running_peak, child_alloc = self._frames.pop()
        absolute_peak = max(peak, running_peak, current)
        span.alloc_bytes = current - open_current
        span.self_alloc_bytes = span.alloc_bytes - child_alloc
        span.peak_bytes = max(absolute_peak - open_current, 0)
        if self._frames:
            parent = self._frames[-1]
            parent[1] = max(parent[1], absolute_peak)
            parent[2] += span.alloc_bytes
        tracemalloc.reset_peak()


def _explained_peak(span: Span) -> int:
    """Largest share of ``span``'s subtree peak demonstrably inside its
    (named) children at the moment the peak was hit.

    A child's ``peak_bytes`` covers *everything* above the child's open
    level — by definition all of it happened while the child span was
    open, so all of it is attributed.  Below the child's open level sit
    the net allocations its earlier siblings retained (attributed) plus
    whatever ``span``'s own windows contributed (unknown, conservatively
    counted as zero).  Taking the best child-path gives a lower bound on
    the peak attributable to named spans.
    """
    best = 0
    retained_before = 0
    for child in span.children:
        best = max(best, retained_before + (child.peak_bytes or 0))
        retained_before += max(child.alloc_bytes or 0, 0)
    return best


def attribution_report(tracer: Tracer) -> dict[str, Any]:
    """Summarise a memory-attributed trace: the traced peak, how much of
    it the named spans account for, and the heaviest spans.

    ``coverage`` is the fraction of the root's traced peak attributable
    to named (non-root) spans — the acceptance figure for "where do the
    bytes go".  It is the larger of two lower bounds: the sum of the
    spans' positive net ``self_alloc_bytes`` (retained memory), and the
    peak decomposition of :func:`_explained_peak` (which also credits
    memory allocated *and freed* inside a named span, invisible to the
    net figure).  The residue is allocation in the root span's own
    windows — code that ran between named spans.
    """
    tracer.close()
    root = tracer.root
    if root.peak_bytes is None:
        raise ValueError(
            "trace carries no memory attribution; run the tracer with "
            "memory=True (CLI: --memory)")
    spans = list(root.walk())
    attributed = sum(span.self_alloc_bytes or 0 for span in spans
                     if span is not root and (span.self_alloc_bytes or 0) > 0)
    peak = root.peak_bytes
    explained = min(max(attributed, _explained_peak(root)), peak)
    top = sorted(
        (span for span in spans if span is not root),
        key=lambda span: span.self_alloc_bytes or 0, reverse=True)
    return {
        "traced_peak_bytes": peak,
        "root_alloc_bytes": root.alloc_bytes,
        "attributed_self_bytes": attributed,
        "explained_peak_bytes": explained,
        "coverage": (explained / peak) if peak else 1.0,
        "spans": [
            {"name": span.name,
             "self_alloc_bytes": span.self_alloc_bytes,
             "alloc_bytes": span.alloc_bytes,
             "peak_bytes": span.peak_bytes}
            for span in top
        ],
    }


def format_bytes(n: int | float | None) -> str:
    """``12_345_678`` -> ``"11.8MiB"`` (signed; ``None`` -> ``"—"``)."""
    if n is None:
        return "—"
    sign = "-" if n < 0 else ""
    value = float(abs(n))
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{sign}{int(value)}B"
            return f"{sign}{value:.1f}{unit}"
        value /= 1024.0
    return f"{sign}{value:.1f}GiB"  # pragma: no cover - unreachable
