"""Live JSONL trace streaming, stream replay, and the stall watchdog.

The PR 1 tracer is post-hoc: the span tree lives in memory until an
exporter walks it, so a SIGKILLed or wedged process leaves *nothing* —
exactly the runs (runaway PFP iterations near the EXPTIME boundary,
hard-killed bench workers) whose telemetry matters most.  This module
makes tracing durable and live:

* :class:`StreamWriter` — incremental span-open / span-close / event /
  counter-snapshot JSONL, one flushed line per record, attached to a
  tracer via ``Tracer(stream=...)``.  Whatever reached the sink before
  the process died is replayable; only a torn final line can be lost.
* :func:`replay_stream` / :func:`read_segments` — reconstruct a
  :class:`repro.obs.Tracer` (span tree + flat counters) from stream
  lines, tolerating a truncated tail: spans with no close record are
  flushed ``status="aborted"``, mirroring :meth:`Tracer.close`.
* :class:`Watchdog` + :class:`StallError` — a daemon thread watching the
  tracer's heartbeat (fixpoint engines beat once per stage, the Datalog
  engine once per rule).  After ``stall_seconds`` without a beat it
  dumps the current counters to stderr; with ``abort=True`` it also
  raises a clean :class:`StallError` in the stalled thread, so a wedged
  evaluation unwinds instead of running forever.

Counter snapshots ride on events and span closes (not on every
``count()`` call), so streaming costs a handful of lines per fixpoint
stage — measured < 5% wall overhead on semi-naive chain TC at n=64
(EXPERIMENTS E32) — while a killed run still recovers per-stage-fresh
counters.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, TYPE_CHECKING, Any, Iterable

from .trace import Event, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trace import NullTracer

__all__ = [
    "STREAM_SCHEMA",
    "StallError",
    "StreamError",
    "StreamWriter",
    "Watchdog",
    "read_segments",
    "replay_stream",
]

#: Version stamp of the stream line layout (the ``begin`` record's
#: ``stream`` field); bump on incompatible changes.
STREAM_SCHEMA = 1


class StreamError(ValueError):
    """A stream file/line sequence is not a replayable trace stream."""


class StallError(RuntimeError):
    """Raised (under ``--stall-abort``) when no heartbeat arrived within
    the watchdog's window — the evaluation is considered wedged."""


class StreamWriter:
    """Emits trace activity as JSONL records, one flushed line each.

    Record types (all timestamps run-relative seconds):

    * ``{"stream": 1, "t": "begin"}`` — stream header;
    * ``{"t": "open", "id": N, "parent": M, "name": ..., "ts": ...,
      "attrs": {...}}`` — a span opened (root has no ``parent``);
    * ``{"t": "close", "id": N, "ts": ..., "status": "aborted",
      "attrs": {...}}`` — a span closed (``status``/``attrs``/alloc
      fields only when set; ``attrs`` carries the final attributes,
      since spans gain attributes after opening);
    * ``{"t": "event", "span": N, "name": ..., "ts": ..., "attrs": ...}``;
    * ``{"t": "counters", "values": {...}}`` — the flat counters that
      changed since the previous snapshot (emitted before events and
      span closes, so a torn stream still carries per-stage counters);
    * ``{"t": "end", "dropped": K}`` — orderly shutdown marker.

    A sink error (broken pipe, closed file) disables further emission
    instead of failing the traced run: streaming is telemetry, not a
    load-bearing output channel.
    """

    __slots__ = ("_sink", "_ids", "_next_id", "_origin", "_snapshot",
                 "_dead")

    def __init__(self, sink: IO[str]):
        self._sink = sink
        self._ids: dict[int, int] = {}
        self._next_id = 0
        self._origin = 0.0
        self._snapshot: dict[str, int | float] = {}
        self._dead = False

    # -- emission --------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        if self._dead:
            return
        try:
            self._sink.write(
                json.dumps(record, separators=(",", ":"), default=repr)
                + "\n")
            self._sink.flush()
        except (OSError, ValueError):
            self._dead = True

    def begin(self, tracer: Tracer) -> None:
        """Open the stream for ``tracer``: header + root-span record."""
        self._origin = tracer.root.start
        self._emit({"stream": STREAM_SCHEMA, "t": "begin"})
        self.span_opened(tracer.root)

    def span_opened(self, span: Span) -> None:
        sid = self._next_id
        self._next_id += 1
        self._ids[id(span)] = sid
        record: dict[str, Any] = {
            "t": "open", "id": sid, "name": span.name,
            "ts": round(span.start - self._origin, 9),
        }
        if span.parent is not None:
            record["parent"] = self._ids.get(id(span.parent))
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        self._emit(record)

    def span_closed(self, span: Span,
                    counters: dict[str, int | float]) -> None:
        self.snapshot(counters)
        record: dict[str, Any] = {
            "t": "close", "id": self._ids.get(id(span)),
            "ts": round((span.end or span.start) - self._origin, 9),
        }
        if span.status != "ok":
            record["status"] = span.status
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        for field in ("alloc_bytes", "self_alloc_bytes", "peak_bytes"):
            value = getattr(span, field)
            if value is not None:
                record[field] = value
        self._emit(record)

    def event_recorded(self, span: Span, event: Event,
                       counters: dict[str, int | float]) -> None:
        self.snapshot(counters)
        record: dict[str, Any] = {
            "t": "event", "span": self._ids.get(id(span)),
            "name": event.name,
            "ts": round(event.time - self._origin, 9),
        }
        if event.attrs:
            record["attrs"] = dict(event.attrs)
        self._emit(record)

    def snapshot(self, counters: dict[str, int | float]) -> None:
        """Emit the counters that changed since the last snapshot."""
        changed = {name: value for name, value in counters.items()
                   if self._snapshot.get(name) != value}
        if not changed:
            return
        self._snapshot.update(changed)
        self._emit({"t": "counters", "values": changed})

    def end(self, tracer: Tracer) -> None:
        """Final counter snapshot + orderly-shutdown marker."""
        self.snapshot(tracer.counters)
        record: dict[str, Any] = {"t": "end"}
        if tracer.dropped_events:
            record["dropped"] = tracer.dropped_events
        self._emit(record)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

def read_segments(lines: Iterable[str]) -> list[list[dict[str, Any]]]:
    """Split stream lines into segments (one per ``begin`` record).

    Sequential runs (e.g. serial bench points sharing one ``--stream``
    file) concatenate segments; each replays independently.  A torn
    final line — the signature of a killed writer — is dropped silently;
    any other unparseable or pre-``begin`` content raises
    :class:`StreamError`.
    """
    segments: list[list[dict[str, Any]]] = []
    parsed: list[tuple[int, dict[str, Any]]] = []
    raw = list(lines)
    for number, line in enumerate(raw, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            if number == len(raw):
                break  # torn tail of a killed writer
            raise StreamError(
                f"stream line {number} is not JSON: {text[:60]!r}"
            ) from None
        if not isinstance(record, dict) or "t" not in record:
            raise StreamError(
                f"stream line {number} is not a trace-stream record")
        parsed.append((number, record))
    for number, record in parsed:
        if record["t"] == "begin":
            schema = record.get("stream")
            if schema != STREAM_SCHEMA:
                raise StreamError(
                    f"unsupported stream schema {schema!r} "
                    f"(supported: {STREAM_SCHEMA})")
            segments.append([])
            continue
        if not segments:
            raise StreamError(
                f"stream line {number} precedes the begin record")
        segments[-1].append(record)
    if not segments:
        raise StreamError("no begin record: not a trace stream")
    return segments


def _replay_segment(records: list[dict[str, Any]]) -> Tracer:
    tracer = Tracer()
    spans: dict[int, Span] = {}
    counters: dict[str, int | float] = {}
    last_ts = 0.0
    complete = False
    dropped = 0
    for record in records:
        kind = record["t"]
        ts = float(record.get("ts", last_ts))
        last_ts = max(last_ts, ts)
        if kind == "open":
            parent = spans.get(record.get("parent", -1))
            span = Span(record["name"], dict(record.get("attrs") or {}),
                        ts, parent)
            if parent is not None:
                parent.children.append(span)
            spans[record["id"]] = span
        elif kind == "close":
            span = spans.get(record.get("id", -1))  # type: ignore[arg-type]
            if span is None:
                continue
            span.end = ts
            span.status = record.get("status", "ok")
            if record.get("attrs"):
                span.attrs.update(record["attrs"])
            for field in ("alloc_bytes", "self_alloc_bytes", "peak_bytes"):
                if field in record:
                    setattr(span, field, record[field])
        elif kind == "event":
            span = spans.get(record.get("span", -1))  # type: ignore[arg-type]
            if span is not None:
                span.events.append(
                    Event(record["name"], dict(record.get("attrs") or {}),
                          ts))
        elif kind == "counters":
            counters.update(record.get("values", {}))
        elif kind == "end":
            complete = True
            dropped = record.get("dropped", 0)
    root = spans.get(0)
    if root is None:
        raise StreamError("stream has no root span record")
    # Flush spans the dead writer never closed, as Tracer.close() would.
    for span in root.walk():
        if span.end is None:
            span.end = last_ts
            if complete is False:
                span.status = "aborted"
    tracer.root = root
    tracer._stack = [root]
    tracer.counters = counters
    tracer.dropped_events = dropped
    for name, value in counters.items():
        tracer.metrics.gauge(name).set(value)
    return tracer


def replay_stream(source: Iterable[str], segment: int = -1) -> Tracer:
    """Reconstruct a tracer from stream lines (an iterable of lines, an
    open text file, or ``text.splitlines()``).

    ``segment`` selects which ``begin``-delimited run to replay when the
    file holds several (default: the last).  The result is a normal
    :class:`Tracer` — render it, export it as Chrome trace or flame
    stacks, or diff its counters.
    """
    segments = read_segments(source)
    try:
        records = segments[segment]
    except IndexError:
        raise StreamError(
            f"stream has {len(segments)} segment(s); "
            f"segment {segment} does not exist") from None
    return _replay_segment(records)


# ---------------------------------------------------------------------------
# Stall watchdog
# ---------------------------------------------------------------------------

def _raise_in_thread(thread_id: int, exc_type: type) -> bool:
    """Deliver ``exc_type`` asynchronously to another thread (CPython
    only); returns False where the C API is unavailable."""
    try:
        import ctypes

        set_async = ctypes.pythonapi.PyThreadState_SetAsyncExc
    except (ImportError, AttributeError):  # pragma: no cover - non-CPython
        return False
    affected = set_async(ctypes.c_ulong(thread_id),
                         ctypes.py_object(exc_type))
    if affected > 1:  # pragma: no cover - invalid id, undo per C API docs
        set_async(ctypes.c_ulong(thread_id), None)
        return False
    return affected == 1


class Watchdog:
    """Watches a tracer's heartbeat from a daemon thread.

    The instrumented engines beat on every span, event, fixpoint stage,
    and Datalog rule (:meth:`repro.obs.Tracer.heartbeat`).  When
    ``stall_seconds`` pass without a beat the watchdog dumps the
    current counters to ``out`` (stderr by default) — once per stall;
    it re-arms when beats resume.  With ``abort=True`` it additionally
    raises :class:`StallError` in the watched thread, so a wedged stage
    function unwinds with a clean exception instead of hanging the
    process (``outcome="timeout"`` in the run ledger).
    """

    def __init__(self, tracer: Tracer, stall_seconds: float,
                 abort: bool = False, out: IO[str] | None = None,
                 poll_seconds: float | None = None):
        if stall_seconds <= 0:
            raise ValueError(f"stall_seconds must be > 0, got {stall_seconds}")
        self.tracer = tracer
        self.stall_seconds = stall_seconds
        self.abort = abort
        self.out = out
        self.fired = False
        self._poll = poll_seconds or max(0.02, stall_seconds / 4.0)
        self._watched_thread = threading.get_ident()
        self._stop = threading.Event()
        self._reported = False
        self._thread: threading.Thread | None = None

    def start(self) -> Watchdog:
        self._watched_thread = threading.get_ident()
        self._thread = threading.Thread(
            target=self._run, name="repro-stall-watchdog", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> Watchdog:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self._poll):
            idle = time.monotonic() - self.tracer.last_beat
            if idle < self.stall_seconds:
                self._reported = False
                continue
            if self._reported:
                continue
            self._reported = True
            self.fired = True
            self._dump(idle)
            if self.abort:
                _raise_in_thread(self._watched_thread, StallError)

    def _dump(self, idle: float) -> None:
        out = self.out if self.out is not None else sys.stderr
        lines = [f"stall: no heartbeat for {idle:.1f}s "
                 f"(threshold {self.stall_seconds:g}s); current counters:"]
        counters = dict(self.tracer.counters)
        if counters:
            width = max(len(name) for name in counters)
            lines.extend(f"  {name:<{width}} {counters[name]}"
                         for name in sorted(counters))
        else:
            lines.append("  (no counters recorded yet)")
        if self.abort:
            lines.append("stall: aborting the run (StallError)")
        try:
            out.write("\n".join(lines) + "\n")
            out.flush()
        except (OSError, ValueError):  # pragma: no cover - dead stderr
            pass
