"""The run ledger: one schema-versioned JSONL record per CLI invocation.

Every ``repro query/profile/bench/lint`` run appends a record to
``.repro/ledger.jsonl`` (override with ``--ledger PATH``, disable with
``--no-ledger`` or an empty ``REPRO_LEDGER`` environment variable)
carrying the run's natural primary key — the query hash and instance
checksum that ROADMAP item 3's result cache will be keyed by — plus the
strategy/intern flags, the lint complexity verdict when available, the
headline engine counters (``eval.*``, ``space.*``, rows, stages), wall
seconds, peak RSS, and the outcome (``ok`` / ``error`` / ``timeout`` /
``divergence``).  History accumulates across invocations, so
``repro obs history/aggregate/diff`` can answer "what did this query
cost last week" without re-running anything.

The checksum helpers here are the shared identity layer: the bench
registry's cross-strategy agreement checksums
(:func:`rows_checksum`, factored out of the bench machinery) and the
ledger's :func:`instance_checksum` are both order- and
process-independent (``hash`` is salted per process, CRCs over sorted
reprs are not).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
import zlib
from typing import TYPE_CHECKING, Any, Iterable

from .metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trace import Tracer

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "LedgerError",
    "RunRecorder",
    "aggregate_records",
    "append_record",
    "default_ledger_path",
    "diff_records",
    "find_record",
    "headline_counters",
    "instance_checksum",
    "peak_rss_bytes",
    "query_hash",
    "read_ledger",
    "rows_checksum",
]

#: Version stamp written into every record; bump on layout changes.
LEDGER_SCHEMA = 1

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_PATH = os.path.join(".repro", "ledger.jsonl")

#: Counter prefixes that make a record's "headline" set — the engine
#: quantities the paper's theorems are about, not machine noise.
HEADLINE_PREFIXES = ("eval.", "space.", "datalog.", "ifp.", "pfp.",
                     "algebra.", "sim.", "encoding.", "density.")

#: The outcomes a record may carry.
OUTCOMES = ("ok", "error", "timeout", "divergence")


class LedgerError(ValueError):
    """A ledger file is missing, malformed, or a run id does not resolve."""


# ---------------------------------------------------------------------------
# Identity: query hashes and order-independent checksums
# ---------------------------------------------------------------------------

def query_hash(text: str) -> str:
    """A stable 12-hex digest of a query's whitespace-normalised text —
    the first half of the (query, instance) cache key."""
    canonical = " ".join(text.split())
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def rows_checksum(rows: Iterable[Any]) -> int:
    """Order- and process-independent checksum of an answer relation
    (``hash`` is salted per process, so shards and ledgers cannot use
    it).  Shared with the bench registry's cross-strategy agreement
    checks — the same quantity a result cache would key on."""
    canonical = "\n".join(sorted(repr(row) for row in rows))
    return zlib.crc32(canonical.encode("utf-8"))


def instance_checksum(inst: Any) -> int:
    """Order-independent checksum of a whole database instance: the
    per-relation :func:`rows_checksum` rolled up over sorted relation
    names — the second half of the (query, instance) cache key."""
    parts = []
    for name in sorted(inst.schema.relation_names):
        parts.append(f"{name}:{rows_checksum(inst.relation(name))}")
    return zlib.crc32("\n".join(parts).encode("utf-8"))


def peak_rss_bytes() -> int | None:
    """This process's peak resident set size in bytes (None where
    ``resource`` is unavailable).  Shared with the sharded bench
    runner's per-point ``space.rss_peak`` telemetry."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    return ru_maxrss * scale


def headline_counters(
    counters: dict[str, int | float],
) -> dict[str, int | float]:
    """The subset of a tracer's flat counters worth persisting per run."""
    return {name: value for name, value in sorted(counters.items())
            if name.startswith(HEADLINE_PREFIXES)}


def default_ledger_path() -> str | None:
    """The ledger path for this invocation: ``REPRO_LEDGER`` when set
    (an empty value disables the ledger), else ``.repro/ledger.jsonl``."""
    override = os.environ.get("REPRO_LEDGER")
    if override is not None:
        return override or None
    return DEFAULT_LEDGER_PATH


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------

class RunRecorder:
    """Accumulates one invocation's ledger record.

    Command handlers :meth:`note` fields as they become known (query
    hash once parsed, instance checksum once loaded, row counts once
    evaluated) and :meth:`attach_tracer` the tracer whose counters the
    record should carry; :meth:`finish` stamps outcome, wall seconds,
    and peak RSS and returns the JSON-safe record.
    """

    def __init__(self, command: str):
        self.command = command
        self.started = time.perf_counter()
        self.fields: dict[str, Any] = {}
        self.tracer: Tracer | None = None
        self.outcome: str | None = None

    def note(self, **fields: Any) -> None:
        """Record known-when-available fields; None values are skipped
        (an ``outcome`` field overrides the one ``finish`` is given)."""
        outcome = fields.pop("outcome", None)
        if outcome is not None:
            self.outcome = outcome
        self.fields.update({name: value for name, value in fields.items()
                            if value is not None})

    def attach_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def finish(self, outcome: str, error: str | None = None) -> dict[str, Any]:
        outcome = self.outcome or outcome
        if outcome not in OUTCOMES:
            outcome = "error"
        wall = time.perf_counter() - self.started
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        run_id = hashlib.sha256(
            f"{time.time_ns()}:{os.getpid()}:{self.command}".encode()
        ).hexdigest()[:12]
        record: dict[str, Any] = {
            "schema": LEDGER_SCHEMA,
            "id": run_id,
            "ts": stamp,
            "command": self.command,
            "outcome": outcome,
            "wall_seconds": round(wall, 6),
        }
        rss = peak_rss_bytes()
        if rss is not None:
            record["rss_peak_bytes"] = rss
        if error:
            record["error"] = error
        record.update(self.fields)
        if self.tracer is not None:
            counters = headline_counters(self.tracer.counters)
            if counters:
                record["counters"] = counters
            stages = int(counters.get("ifp.stages", 0)
                         + counters.get("pfp.stages", 0))
            if stages and "stages" not in record:
                record["stages"] = stages
        return record


def append_record(record: dict[str, Any], path: str | None = None) -> str:
    """Append one record to the ledger (creating parent directories);
    returns the path written."""
    path = path or default_ledger_path() or DEFAULT_LEDGER_PATH
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_ledger(path: str) -> list[dict[str, Any]]:
    """All records of a ledger file, oldest first.

    A missing file, an unparseable interior line, or an unsupported
    schema raises :class:`LedgerError`; a torn final line (a writer
    killed mid-append) is dropped silently.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        raise LedgerError(f"cannot read ledger {path}: {error}") from None
    records: list[dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn tail of a killed writer
            raise LedgerError(
                f"{path}:{number}: not a JSON record: {text[:60]!r}"
            ) from None
        if not isinstance(record, dict) or "schema" not in record:
            raise LedgerError(f"{path}:{number}: not a ledger record")
        if record["schema"] != LEDGER_SCHEMA:
            raise LedgerError(
                f"{path}:{number}: unsupported ledger schema "
                f"{record['schema']!r} (supported: {LEDGER_SCHEMA})")
        records.append(record)
    return records


def find_record(records: list[dict[str, Any]], token: str) -> dict[str, Any]:
    """Resolve a run reference: an ``id`` prefix, or a negative index
    like ``-1`` (the most recent record)."""
    if token.startswith("-") and token[1:].isdigit():
        index = int(token)
        if -len(records) <= index < 0:
            return records[index]
        raise LedgerError(
            f"run index {token} out of range ({len(records)} record(s))")
    matches = [record for record in records
               if str(record.get("id", "")).startswith(token)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise LedgerError(f"unknown run id {token!r}")
    raise LedgerError(
        f"run id {token!r} is ambiguous ({len(matches)} matches); "
        "give more characters")


# ---------------------------------------------------------------------------
# Aggregation and diffing
# ---------------------------------------------------------------------------

def aggregate_records(
    records: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Per-query-hash aggregates: run/outcome counts, wall-time p50/p99
    (milliseconds, via the log-bucketed :class:`Histogram`), and counter
    drift — headline counters whose value changed across the group's
    runs (for deterministic engines, drift means the query, the
    instance, or the engine changed).

    Records without a ``query_hash`` (bench sweeps, lint batches) group
    under their command name.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        key = str(record.get("query_hash") or record.get("command", "?"))
        groups.setdefault(key, []).append(record)
    aggregates: list[dict[str, Any]] = []
    for key, members in sorted(groups.items()):
        wall = Histogram()
        outcomes: dict[str, int] = {}
        counter_ranges: dict[str, tuple[float, float]] = {}
        for record in members:
            seconds = record.get("wall_seconds")
            if isinstance(seconds, (int, float)):
                wall.record(seconds * 1000.0)
            outcome = str(record.get("outcome", "?"))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            for name, value in (record.get("counters") or {}).items():
                low, high = counter_ranges.get(name, (value, value))
                counter_ranges[name] = (min(low, value), max(high, value))
        drift = {name: {"min": low, "max": high}
                 for name, (low, high) in sorted(counter_ranges.items())
                 if low != high}
        aggregates.append({
            "key": key,
            "runs": len(members),
            "outcomes": dict(sorted(outcomes.items())),
            "wall_ms": wall.summary(),
            "drift": drift,
            "commands": sorted({str(record.get("command", "?"))
                                for record in members}),
        })
    return aggregates


def diff_records(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Field-by-field comparison of two runs: identity fields side by
    side, wall/RSS deltas, and every headline counter's change."""
    scalar_fields = ("command", "outcome", "query_hash", "instance_checksum",
                     "strategy", "mode", "intern", "verdict", "rows",
                     "stages")
    fields: dict[str, Any] = {}
    for name in scalar_fields:
        left, right = a.get(name), b.get(name)
        if left is None and right is None:
            continue
        fields[name] = {"a": left, "b": right, "equal": left == right}
    counters: dict[str, Any] = {}
    names = set(a.get("counters") or {}) | set(b.get("counters") or {})
    for name in sorted(names):
        left = (a.get("counters") or {}).get(name)
        right = (b.get("counters") or {}).get(name)
        entry: dict[str, Any] = {"a": left, "b": right}
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            entry["delta"] = right - left
        counters[name] = entry
    wall_a, wall_b = a.get("wall_seconds"), b.get("wall_seconds")
    diff: dict[str, Any] = {
        "a": {"id": a.get("id"), "ts": a.get("ts")},
        "b": {"id": b.get("id"), "ts": b.get("ts")},
        "fields": fields,
        "counters": counters,
    }
    if isinstance(wall_a, (int, float)) and isinstance(wall_b, (int, float)):
        diff["wall_seconds"] = {
            "a": wall_a, "b": wall_b, "delta": round(wall_b - wall_a, 6),
            "ratio": round(wall_b / wall_a, 3) if wall_a > 0 else None,
        }
    rss_a, rss_b = a.get("rss_peak_bytes"), b.get("rss_peak_bytes")
    if isinstance(rss_a, int) and isinstance(rss_b, int):
        diff["rss_peak_bytes"] = {"a": rss_a, "b": rss_b,
                                  "delta": rss_b - rss_a}
    return diff
