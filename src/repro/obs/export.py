"""Interchange exporters for span trees: Chrome Trace Event JSON and
collapsed-stack flamegraphs.

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``: each span becomes
  a complete event (``"ph": "X"``) with microsecond ``ts``/``dur``
  relative to the trace start, each trace event an instant event
  (``"ph": "i"``).  Span attributes, status, self time, and — when the
  tracer ran with ``memory=True`` — the per-span allocation figures ride
  in ``args``, so the byte attribution is inspectable in the timeline UI.
* :func:`collapsed_stacks` — Brendan Gregg's folded-stack text format
  (``root;child;leaf value`` per line), directly consumable by
  ``flamegraph.pl`` and speedscope.  The value is per-span *self* time
  in microseconds, or self-allocated bytes with ``metric="alloc"``.
* :func:`tracer_from_document` — rebuild a tracer from a saved
  ``repro profile --json`` document for re-export.  Only ``schema: 1``
  documents qualify: the retired unversioned form carries absolute
  ``perf_counter`` timestamps with no span-tree guarantees, so exporting
  it would produce garbage timelines — :class:`ExportError` says so
  instead.

Deterministic on purpose: ``pid``/``tid`` are fixed (one process, one
logical thread — evaluation is single-threaded), and events follow
preorder span traversal, so golden tests can pin everything except the
timestamps themselves.
"""

from __future__ import annotations

from typing import Any

from .render import TRACE_SCHEMA, trace_from_json
from .trace import Span, Tracer

__all__ = [
    "ExportError",
    "chrome_trace",
    "collapsed_stacks",
    "tracer_from_document",
]

#: Fixed ids: the evaluator is one single-threaded process.
_PID = 1
_TID = 1


class ExportError(Exception):
    """A trace document that cannot be exported in the requested format."""


def _span_args(span: Span) -> dict[str, Any]:
    args: dict[str, Any] = dict(span.attrs)
    if span.status != "ok":
        args["status"] = span.status
    args["self_us"] = round(span.self_seconds * 1e6, 3)
    if span.alloc_bytes is not None:
        args["alloc_bytes"] = span.alloc_bytes
        args["self_alloc_bytes"] = span.self_alloc_bytes
        args["peak_bytes"] = span.peak_bytes
    return args


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The trace as a Chrome Trace Event JSON object (load the dumped
    JSON straight into Perfetto or ``chrome://tracing``)."""
    tracer.close()
    origin = tracer.root.start

    def us(at: float) -> float:
        return round((at - origin) * 1e6, 3)

    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": _TID,
         "args": {"name": "repro"}},
        {"ph": "M", "name": "thread_name", "pid": _PID, "tid": _TID,
         "args": {"name": "evaluate"}},
    ]
    for span in tracer.root.walk():
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": us(span.start),
            "dur": round((end - span.start) * 1e6, 3),
            "pid": _PID,
            "tid": _TID,
            "args": _span_args(span),
        })
        for event in span.events:
            events.append({
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "ts": us(event.time),
                "pid": _PID,
                "tid": _TID,
                "s": "t",
                "args": dict(event.attrs),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(tracer.counters),
            "dropped_events": tracer.dropped_events,
        },
    }


def collapsed_stacks(tracer: Tracer, metric: str = "time") -> str:
    """The trace as collapsed-stack flamegraph lines.

    ``metric="time"`` weighs each frame by self wall time in integer
    microseconds; ``metric="alloc"`` by ``self_alloc_bytes`` (requires a
    memory-attributed trace).  Negative self values clamp to 0 — folded
    stacks have no notion of released bytes.
    """
    if metric not in ("time", "alloc"):
        raise ExportError(f"unknown flame metric {metric!r}; "
                          "use 'time' or 'alloc'")
    tracer.close()
    if metric == "alloc" and tracer.root.alloc_bytes is None:
        raise ExportError(
            "trace carries no memory attribution to weigh the flamegraph "
            "by; re-run with --memory")
    lines: list[str] = []

    def walk(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        if metric == "alloc":
            value = span.self_alloc_bytes or 0
        else:
            value = int(round(span.self_seconds * 1e6))
        lines.append(f"{path} {max(value, 0)}")
        for child in span.children:
            walk(child, path)

    walk(tracer.root, "")
    return "\n".join(lines)


def tracer_from_document(document: Any) -> Tracer:
    """Rebuild a tracer from a ``repro profile --json`` document so it
    can be re-exported (chrome-trace, flame, or re-rendered as text)."""
    if not isinstance(document, dict) or "trace" not in document:
        raise ExportError(
            "not a trace document: expected the JSON written by "
            "`repro profile --json` (an object with a 'trace' span tree)")
    if document.get("schema") != TRACE_SCHEMA:
        raise ExportError(
            "legacy unversioned trace documents cannot be exported: their "
            "timestamps are absolute perf_counter readings with no span-"
            "tree guarantees.  Regenerate the trace with a current "
            "`repro profile --json` run (schema 1, run-relative times) "
            "and export that instead")
    return trace_from_json(document)
