"""EXPLAIN-style rendering and JSON export of traces.

Turns a :class:`repro.obs.trace.Tracer` into

* an indented tree (:func:`render_tree`) — subformula → range → rows
  produced, one line per span/event, optionally with wall times;
* an aligned counter table (:func:`summary_table`) and a typed-metric
  table with histogram summaries (:func:`metrics_table`);
* a JSON document (:func:`trace_to_json`) that round-trips through
  :func:`trace_from_json` (machine consumption: benchmark harnesses,
  external plotting).

JSON documents carry ``"schema": 1`` and *run-relative* timestamps —
every span/event time is the offset in seconds from the root span's
start, so traces of the same workload are directly comparable across
runs and machines.  :func:`trace_from_json` also accepts the unversioned
pre-schema form (absolute ``perf_counter`` timestamps).
"""

from __future__ import annotations

from typing import Any

from .metrics import (
    Histogram,
    MetricsRegistry,
    metrics_from_json,
    metrics_to_json,
)
from .trace import Event, Span, Tracer

__all__ = [
    "align_table",
    "render_tree",
    "summary_table",
    "metrics_table",
    "trace_to_json",
    "trace_from_json",
]

#: Version of the JSON document layout produced by :func:`trace_to_json`.
TRACE_SCHEMA = 1


def _format_attrs(attrs: dict[str, Any]) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def _render_span(span: Span, depth: int, lines: list[str], times: bool) -> None:
    indent = "  " * depth
    parts = [f"{indent}{span.name}"]
    attrs = _format_attrs(span.attrs)
    if attrs:
        parts.append(f" {attrs}")
    if times and span.end is not None:
        parts.append(f"  [{span.duration * 1000:.2f} ms]")
    lines.append("".join(parts))
    # Children and events interleave chronologically; merge on timestamps.
    items: list[tuple[float, int, Span | Event]] = []
    for order, child in enumerate(span.children):
        items.append((child.start, order, child))
    for order, event in enumerate(span.events):
        items.append((event.time, len(span.children) + order, event))
    for _, _, item in sorted(items, key=lambda entry: (entry[0], entry[1])):
        if isinstance(item, Span):
            _render_span(item, depth + 1, lines, times)
        else:
            event_attrs = _format_attrs(item.attrs)
            suffix = f" {event_attrs}" if event_attrs else ""
            lines.append(f"{'  ' * (depth + 1)}• {item.name}{suffix}")


def render_tree(tracer: Tracer, times: bool = True) -> str:
    """The trace as an indented tree, one line per span (prefixed by
    depth) and per event (bulleted).  ``times=False`` yields
    deterministic output for golden tests and diffs."""
    tracer.close()
    lines: list[str] = []
    _render_span(tracer.root, 0, lines, times)
    if tracer.dropped_events:
        lines.append(f"({tracer.dropped_events} event(s) dropped beyond "
                     f"cap {tracer.max_events})")
    return "\n".join(lines)


def align_table(rows: list[tuple[str, ...]]) -> list[str]:
    """Left-align rows of string cells into columns (two-space gutter).

    The generic alignment behind :func:`summary_table`,
    :func:`metrics_table`, and the bench trend tables.  Rows may have
    differing lengths; each column is as wide as its widest cell, and
    trailing whitespace is stripped per line.
    """
    if not rows:
        return []
    columns = max(len(row) for row in rows)
    widths = [0] * columns
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return [
        "  ".join(cell.ljust(widths[i])
                  for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]


def summary_table(tracer: Tracer) -> str:
    """Counters and gauges as an aligned two-column table."""
    if not tracer.counters:
        return "(no counters recorded)"
    rows = [(name, str(tracer.counters[name]))
            for name in sorted(tracer.counters)]
    return "\n".join(align_table(rows))


def _format_number(value: int | float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def metrics_table(metrics: MetricsRegistry) -> str:
    """Histograms as aligned summary lines (count/min/mean/p50/p90/max).

    Counters and gauges already appear in :func:`summary_table` via the
    flat dict, so this table shows only what that one cannot: the
    distributions.
    """
    rows: list[tuple[str, str]] = []
    for name, metric in metrics.histograms():
        summary = metric.summary()
        rows.append((
            name,
            "count={count} min={min} mean={mean} p50={p50} p90={p90} "
            "max={max}".format(
                count=summary["count"],
                min=_format_number(summary["min"]),
                mean=_format_number(summary["mean"]),
                p50=_format_number(summary["p50"]),
                p90=_format_number(summary["p90"]),
                max=_format_number(summary["max"]),
            ),
        ))
    if not rows:
        return "(no histograms recorded)"
    return "\n".join(align_table(rows))


def _span_to_dict(span: Span, origin: float) -> dict[str, Any]:
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "start": span.start - origin,
        "end": None if span.end is None else span.end - origin,
        "events": [
            {"name": e.name, "attrs": dict(e.attrs), "time": e.time - origin}
            for e in span.events
        ],
        "children": [_span_to_dict(child, origin) for child in span.children],
    }


def _span_from_dict(doc: dict[str, Any]) -> Span:
    span = Span(doc["name"], dict(doc["attrs"]), doc["start"])
    span.end = doc["end"]
    span.events = [
        Event(e["name"], dict(e["attrs"]), e["time"]) for e in doc["events"]
    ]
    span.children = [_span_from_dict(child) for child in doc["children"]]
    return span


def trace_to_json(tracer: Tracer) -> dict[str, Any]:
    """A JSON-safe document: schema version, counters, typed metrics,
    drop accounting, and the span tree with run-relative timestamps
    (the root span starts at 0.0).  Attribute values must themselves be
    JSON-safe (the instrumentation only records strings, numbers, and
    lists thereof)."""
    tracer.close()
    origin = tracer.root.start
    return {
        "schema": TRACE_SCHEMA,
        "counters": dict(tracer.counters),
        "metrics": metrics_to_json(tracer.metrics)["metrics"],
        "dropped_events": tracer.dropped_events,
        "trace": _span_to_dict(tracer.root, origin),
    }


def trace_from_json(doc: dict[str, Any]) -> Tracer:
    """Rebuild a :class:`Tracer` from :func:`trace_to_json` output, such
    that re-exporting yields an equal document.

    Accepts both the current versioned form (``"schema": 1``,
    run-relative timestamps — stored as-is, so the rebuilt root starts
    at 0.0) and the unversioned pre-schema form (absolute timestamps,
    which re-export will normalise to run-relative).
    """
    tracer = Tracer()
    tracer.counters = dict(doc["counters"])
    tracer.metrics = metrics_from_json({"metrics": doc.get("metrics", {})})
    tracer.dropped_events = doc["dropped_events"]
    tracer.root = _span_from_dict(doc["trace"])
    tracer._stack = [tracer.root]
    return tracer
