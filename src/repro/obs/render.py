"""EXPLAIN-style rendering and JSON export of traces.

Turns a :class:`repro.obs.trace.Tracer` into

* an indented tree (:func:`render_tree`) — subformula → range → rows
  produced, one line per span/event, optionally with wall times;
* an aligned counter table (:func:`summary_table`) and a typed-metric
  table with histogram summaries (:func:`metrics_table`);
* a JSON document (:func:`trace_to_json`) that round-trips through
  :func:`trace_from_json` (machine consumption: benchmark harnesses,
  external plotting).

JSON documents carry ``"schema": 1`` and *run-relative* timestamps —
every span/event time is the offset in seconds from the root span's
start, so traces of the same workload are directly comparable across
runs and machines.  :func:`trace_from_json` also accepts the unversioned
pre-schema form (absolute ``perf_counter`` timestamps).
"""

from __future__ import annotations

from typing import Any

from .metrics import (
    Histogram,
    MetricsRegistry,
    metrics_from_json,
    metrics_to_json,
)
from .trace import Event, Span, Tracer

__all__ = [
    "aggregate_table",
    "align_table",
    "history_table",
    "render_tree",
    "summary_table",
    "metrics_table",
    "memory_table",
    "sparkline",
    "titled_table",
    "trace_to_json",
    "trace_from_json",
]

#: Version of the JSON document layout produced by :func:`trace_to_json`.
TRACE_SCHEMA = 1


def _format_attrs(attrs: dict[str, Any]) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def _render_span(span: Span, depth: int, lines: list[str], times: bool) -> None:
    from .memory import format_bytes

    indent = "  " * depth
    parts = [f"{indent}{span.name}"]
    attrs = _format_attrs(span.attrs)
    if attrs:
        parts.append(f" {attrs}")
    if span.status != "ok":
        parts.append(f" [{span.status}]")
    if times and span.end is not None:
        parts.append(f"  [{span.duration * 1000:.2f} ms"
                     f" | self {span.self_seconds * 1000:.2f} ms]")
    if span.alloc_bytes is not None:
        parts.append(f"  [self_alloc={format_bytes(span.self_alloc_bytes)}"
                     f" alloc={format_bytes(span.alloc_bytes)}"
                     f" peak={format_bytes(span.peak_bytes)}]")
    lines.append("".join(parts))
    # Children and events interleave chronologically; merge on timestamps.
    items: list[tuple[float, int, Span | Event]] = []
    for order, child in enumerate(span.children):
        items.append((child.start, order, child))
    for order, event in enumerate(span.events):
        items.append((event.time, len(span.children) + order, event))
    for _, _, item in sorted(items, key=lambda entry: (entry[0], entry[1])):
        if isinstance(item, Span):
            _render_span(item, depth + 1, lines, times)
        else:
            event_attrs = _format_attrs(item.attrs)
            suffix = f" {event_attrs}" if event_attrs else ""
            lines.append(f"{'  ' * (depth + 1)}• {item.name}{suffix}")


def render_tree(tracer: Tracer, times: bool = True) -> str:
    """The trace as an indented tree, one line per span (prefixed by
    depth) and per event (bulleted).  ``times=False`` yields
    deterministic output for golden tests and diffs."""
    tracer.close()
    lines: list[str] = []
    _render_span(tracer.root, 0, lines, times)
    if tracer.dropped_events:
        lines.append(f"({tracer.dropped_events} event(s) dropped beyond "
                     f"cap {tracer.max_events})")
    return "\n".join(lines)


def align_table(rows: list[tuple[str, ...]]) -> list[str]:
    """Left-align rows of string cells into columns (two-space gutter).

    The generic alignment behind :func:`summary_table`,
    :func:`metrics_table`, and the bench trend tables.  Rows may have
    differing lengths; each column is as wide as its widest cell, and
    trailing whitespace is stripped per line.
    """
    if not rows:
        return []
    columns = max(len(row) for row in rows)
    widths = [0] * columns
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return [
        "  ".join(cell.ljust(widths[i])
                  for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]


def titled_table(title: str, rows: list[tuple[str, ...]]) -> str:
    """A ``-- title --`` header over an :func:`align_table` body.

    The rendering behind the lint CLI's analysis tables (dependency
    graph, strata, adorned program, routing); an empty body renders as
    ``title: (empty)`` so callers need no special case.
    """
    body = align_table(rows)
    if not body:
        return f"-- {title} -- (empty)"
    return "\n".join([f"-- {title} --", *body])


def summary_table(tracer: Tracer) -> str:
    """Counters and gauges as an aligned two-column table."""
    if not tracer.counters:
        return "(no counters recorded)"
    rows = [(name, str(tracer.counters[name]))
            for name in sorted(tracer.counters)]
    return "\n".join(align_table(rows))


def _format_number(value: int | float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def metrics_table(metrics: MetricsRegistry) -> str:
    """Histograms as aligned summary lines (count/min/mean/p50/p90/max).

    Counters and gauges already appear in :func:`summary_table` via the
    flat dict, so this table shows only what that one cannot: the
    distributions.
    """
    rows: list[tuple[str, str]] = []
    for name, metric in metrics.histograms():
        summary = metric.summary()
        rows.append((
            name,
            "count={count} min={min} mean={mean} p50={p50} p90={p90} "
            "max={max}".format(
                count=summary["count"],
                min=_format_number(summary["min"]),
                mean=_format_number(summary["mean"]),
                p50=_format_number(summary["p50"]),
                p90=_format_number(summary["p90"]),
                max=_format_number(summary["max"]),
            ),
        ))
    if not rows:
        return "(no histograms recorded)"
    return "\n".join(align_table(rows))


def memory_table(tracer: Tracer) -> str:
    """Per-span allocation attribution as an aligned table (heaviest
    self-allocators first), headed by the traced peak and the coverage
    figure from :func:`repro.obs.memory.attribution_report`."""
    from .memory import attribution_report, format_bytes

    try:
        report = attribution_report(tracer)
    except ValueError as error:
        return f"({error})"
    rows: list[tuple[str, ...]] = [
        ("span", "self_alloc", "alloc", "peak")]
    for entry in report["spans"]:
        rows.append((
            entry["name"],
            format_bytes(entry["self_alloc_bytes"]),
            format_bytes(entry["alloc_bytes"]),
            format_bytes(entry["peak_bytes"]),
        ))
    lines = align_table(rows)
    lines.append(
        f"traced peak {format_bytes(report['traced_peak_bytes'])}; "
        f"{report['coverage']:.0%} attributed to named spans")
    return "\n".join(lines)


#: Eight-level bar alphabet used by :func:`sparkline`.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float | int | None]) -> str:
    """A unicode sparkline of a series; ``None`` holes render as ``·``.

    Scaling is min-max over the present values (a flat series renders
    mid-height bars), which is what the bench trend tables want: shape
    at a glance, numbers in the adjacent columns.
    """
    present = [float(v) for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    bars: list[str] = []
    for value in values:
        if value is None:
            bars.append("·")
        elif span == 0:
            bars.append(SPARK_LEVELS[3])
        else:
            index = int((float(value) - lo) / span * (len(SPARK_LEVELS) - 1))
            bars.append(SPARK_LEVELS[index])
    return "".join(bars)


def _format_wall(seconds: Any) -> str:
    if not isinstance(seconds, (int, float)):
        return "-"
    millis = seconds * 1000.0
    if millis >= 1000.0:
        return f"{seconds:.2f}s"
    return f"{millis:.1f}ms"


def history_table(records: list[dict[str, Any]]) -> str:
    """Ledger records as an aligned recent-runs table (oldest first,
    matching the file order, so ``tail`` semantics are obvious)."""
    rows: list[tuple[str, ...]] = [
        ("id", "ts", "command", "outcome", "query", "strategy", "rows",
         "wall")]
    for record in records:
        rows.append((
            str(record.get("id", "-")),
            str(record.get("ts", "-")),
            str(record.get("command", "-")),
            str(record.get("outcome", "-")),
            str(record.get("query_hash") or "-"),
            str(record.get("strategy") or record.get("mode") or "-"),
            "-" if record.get("rows") is None else str(record["rows"]),
            _format_wall(record.get("wall_seconds")),
        ))
    return "\n".join(align_table(rows))


def aggregate_table(aggregates: list[dict[str, Any]]) -> str:
    """Per-query-hash aggregates (from
    :func:`repro.obs.ledger.aggregate_records`) as an aligned table:
    run/ok counts, wall p50/p99 from the log-bucketed histogram, and
    which headline counters drifted across the group."""
    rows: list[tuple[str, ...]] = [
        ("key", "runs", "ok", "wall_p50", "wall_p99", "drift")]
    for entry in aggregates:
        wall = entry.get("wall_ms") or {}
        drift = entry.get("drift") or {}
        drifting = ",".join(sorted(drift)) if drift else "-"
        rows.append((
            str(entry.get("key", "-")),
            str(entry.get("runs", 0)),
            str((entry.get("outcomes") or {}).get("ok", 0)),
            f"{wall['p50']:.0f}ms" if wall.get("count") else "-",
            f"{wall['p99']:.0f}ms" if wall.get("count") else "-",
            drifting,
        ))
    return "\n".join(align_table(rows))


def _span_to_dict(span: Span, origin: float) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "name": span.name,
        "attrs": dict(span.attrs),
        "start": span.start - origin,
        "end": None if span.end is None else span.end - origin,
        "events": [
            {"name": e.name, "attrs": dict(e.attrs), "time": e.time - origin}
            for e in span.events
        ],
        "children": [_span_to_dict(child, origin) for child in span.children],
    }
    # New-in-this-schema-revision fields are emitted only when set, so
    # documents of plain traces keep their original byte-for-byte shape.
    if span.status != "ok":
        doc["status"] = span.status
    if span.alloc_bytes is not None:
        doc["alloc_bytes"] = span.alloc_bytes
        doc["self_alloc_bytes"] = span.self_alloc_bytes
        doc["peak_bytes"] = span.peak_bytes
    return doc


def _span_from_dict(doc: dict[str, Any], parent: Span | None = None) -> Span:
    span = Span(doc["name"], dict(doc["attrs"]), doc["start"], parent)
    span.end = doc["end"]
    span.status = doc.get("status", "ok")
    span.alloc_bytes = doc.get("alloc_bytes")
    span.self_alloc_bytes = doc.get("self_alloc_bytes")
    span.peak_bytes = doc.get("peak_bytes")
    span.events = [
        Event(e["name"], dict(e["attrs"]), e["time"]) for e in doc["events"]
    ]
    span.children = [_span_from_dict(child, span) for child in doc["children"]]
    return span


def trace_to_json(tracer: Tracer) -> dict[str, Any]:
    """A JSON-safe document: schema version, counters, typed metrics,
    drop accounting, and the span tree with run-relative timestamps
    (the root span starts at 0.0).  Attribute values must themselves be
    JSON-safe (the instrumentation only records strings, numbers, and
    lists thereof)."""
    tracer.close()
    origin = tracer.root.start
    return {
        "schema": TRACE_SCHEMA,
        "counters": dict(tracer.counters),
        "metrics": metrics_to_json(tracer.metrics)["metrics"],
        "dropped_events": tracer.dropped_events,
        "trace": _span_to_dict(tracer.root, origin),
    }


def trace_from_json(doc: dict[str, Any]) -> Tracer:
    """Rebuild a :class:`Tracer` from :func:`trace_to_json` output, such
    that re-exporting yields an equal document.

    Accepts both the current versioned form (``"schema": 1``,
    run-relative timestamps — stored as-is, so the rebuilt root starts
    at 0.0) and the unversioned pre-schema form (absolute timestamps,
    which re-export will normalise to run-relative).
    """
    tracer = Tracer()
    tracer.counters = dict(doc["counters"])
    tracer.metrics = metrics_from_json({"metrics": doc.get("metrics", {})})
    tracer.dropped_events = doc["dropped_events"]
    tracer.root = _span_from_dict(doc["trace"])
    tracer._stack = [tracer.root]
    return tracer
