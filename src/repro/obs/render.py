"""EXPLAIN-style rendering and JSON export of traces.

Turns a :class:`repro.obs.trace.Tracer` into

* an indented tree (:func:`render_tree`) — subformula → range → rows
  produced, one line per span/event, optionally with wall times;
* an aligned counter table (:func:`summary_table`);
* a JSON document (:func:`trace_to_json`) that round-trips through
  :func:`trace_from_json` (machine consumption: benchmark harnesses,
  external plotting).
"""

from __future__ import annotations

from typing import Any

from .trace import Event, Span, Tracer

__all__ = [
    "render_tree",
    "summary_table",
    "trace_to_json",
    "trace_from_json",
]


def _format_attrs(attrs: dict[str, Any]) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def _render_span(span: Span, depth: int, lines: list[str], times: bool) -> None:
    indent = "  " * depth
    parts = [f"{indent}{span.name}"]
    attrs = _format_attrs(span.attrs)
    if attrs:
        parts.append(f" {attrs}")
    if times and span.end is not None:
        parts.append(f"  [{span.duration * 1000:.2f} ms]")
    lines.append("".join(parts))
    # Children and events interleave chronologically; merge on timestamps.
    items: list[tuple[float, int, Span | Event]] = []
    for order, child in enumerate(span.children):
        items.append((child.start, order, child))
    for order, event in enumerate(span.events):
        items.append((event.time, len(span.children) + order, event))
    for _, _, item in sorted(items, key=lambda entry: (entry[0], entry[1])):
        if isinstance(item, Span):
            _render_span(item, depth + 1, lines, times)
        else:
            event_attrs = _format_attrs(item.attrs)
            suffix = f" {event_attrs}" if event_attrs else ""
            lines.append(f"{'  ' * (depth + 1)}• {item.name}{suffix}")


def render_tree(tracer: Tracer, times: bool = True) -> str:
    """The trace as an indented tree, one line per span (prefixed by
    depth) and per event (bulleted).  ``times=False`` yields
    deterministic output for golden tests and diffs."""
    tracer.close()
    lines: list[str] = []
    _render_span(tracer.root, 0, lines, times)
    if tracer.dropped_events:
        lines.append(f"({tracer.dropped_events} event(s) dropped beyond "
                     f"cap {tracer.max_events})")
    return "\n".join(lines)


def summary_table(tracer: Tracer) -> str:
    """Counters and gauges as an aligned two-column table."""
    if not tracer.counters:
        return "(no counters recorded)"
    names = sorted(tracer.counters)
    width = max(len(name) for name in names)
    lines = [f"{name.ljust(width)}  {tracer.counters[name]}"
             for name in names]
    return "\n".join(lines)


def _span_to_dict(span: Span) -> dict[str, Any]:
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "start": span.start,
        "end": span.end,
        "events": [
            {"name": e.name, "attrs": dict(e.attrs), "time": e.time}
            for e in span.events
        ],
        "children": [_span_to_dict(child) for child in span.children],
    }


def _span_from_dict(doc: dict[str, Any]) -> Span:
    span = Span(doc["name"], dict(doc["attrs"]), doc["start"])
    span.end = doc["end"]
    span.events = [
        Event(e["name"], dict(e["attrs"]), e["time"]) for e in doc["events"]
    ]
    span.children = [_span_from_dict(child) for child in doc["children"]]
    return span


def trace_to_json(tracer: Tracer) -> dict[str, Any]:
    """A JSON-safe document: counters, drop accounting, and the span
    tree.  Attribute values must themselves be JSON-safe (the
    instrumentation only records strings, numbers, and lists thereof)."""
    tracer.close()
    return {
        "counters": dict(tracer.counters),
        "dropped_events": tracer.dropped_events,
        "trace": _span_to_dict(tracer.root),
    }


def trace_from_json(doc: dict[str, Any]) -> Tracer:
    """Rebuild a :class:`Tracer` from :func:`trace_to_json` output, such
    that re-exporting yields an equal document."""
    tracer = Tracer()
    tracer.counters = dict(doc["counters"])
    tracer.dropped_events = doc["dropped_events"]
    tracer.root = _span_from_dict(doc["trace"])
    tracer._stack = [tracer.root]
    return tracer
