"""Ergonomic Python DSL for building CALC formulas.

The raw AST in :mod:`repro.core.syntax` is verbose; this module provides
the construction style used throughout the examples and tests::

    from repro.core.builder import V, rel, exists, forall, ifp, query

    x, y, z = V("x", "{U}"), V("y", "{U}"), V("z", "{U}")
    G = rel("G")
    phi = G(x, y) | exists(z, G(x, z) & rel("S")(z, y))
    tc = ifp("S", [x, y], phi)
    q = query([x, y], tc(x, y))

Overloaded operators on formulas: ``&`` (and), ``|`` (or), ``~`` (not),
plus ``.implies()`` and ``.iff()``.  Comparison helpers on variables
build atomic formulas: ``eq``, ``member``, ``subset``.
"""

from __future__ import annotations

from typing import Iterable

from ..objects.types import TypeLike
from .syntax import (
    IFP,
    PFP,
    Const,
    Equals,
    Exists,
    Fixpoint,
    Forall,
    Formula,
    In,
    Proj,
    Query,
    RelAtom,
    Subset,
    Var,
)

__all__ = [
    "V", "C", "rel", "eq", "member", "subset", "exists", "forall",
    "ifp", "pfp", "query", "proj",
]


def V(name: str, typ: TypeLike | None = None) -> Var:
    """A typed variable: ``V("x", "{U}")``."""
    return Var(name, typ)


def C(value: object, typ: TypeLike | None = None) -> Const:
    """A complex object constant from plain Python data: ``C({"a","b"})``."""
    return Const(value, typ)


def proj(var: Var, index: int) -> Proj:
    """Projection ``var.index`` (1-indexed)."""
    return Proj(var, index)


class _RelationBuilder:
    """Callable that builds relation atoms: ``rel("G")(x, y)``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, *args: object) -> RelAtom:
        return RelAtom(self.name, args)

    def __repr__(self) -> str:
        return f"rel({self.name!r})"


def rel(name: str) -> _RelationBuilder:
    """A relation-atom builder for relation ``name``."""
    return _RelationBuilder(name)


def eq(left: object, right: object) -> Equals:
    """``left = right``."""
    return Equals(left, right)


def member(element: object, container: object) -> In:
    """``element in container``."""
    return In(element, container)


def subset(left: object, right: object) -> Subset:
    """``left sub right``."""
    return Subset(left, right)


def exists(var: Var | Iterable[Var], body: Formula) -> Formula:
    """``exists x:T (...)``; accepts a single Var or an iterable of Vars
    (nested quantifiers, innermost last)."""
    variables = [var] if isinstance(var, Var) else list(var)
    result = body
    for v in reversed(variables):
        result = Exists(v, result)
    return result


def forall(var: Var | Iterable[Var], body: Formula) -> Formula:
    """``forall x:T (...)``; accepts a single Var or an iterable of Vars."""
    variables = [var] if isinstance(var, Var) else list(var)
    result = body
    for v in reversed(variables):
        result = Forall(v, result)
    return result


def _columns(columns: Iterable[Var | tuple[str, TypeLike]]) -> list[tuple[str, TypeLike]]:
    result: list[tuple[str, TypeLike]] = []
    for col in columns:
        if isinstance(col, Var):
            if col.typ is None:
                raise ValueError(f"fixpoint column {col.name!r} must be typed")
            result.append((col.name, col.typ))
        else:
            result.append(col)
    return result


def ifp(name: str, columns: Iterable[Var | tuple[str, TypeLike]],
        body: Formula) -> Fixpoint:
    """Inflationary fixpoint ``IFP(body(S), S)`` with declared columns."""
    return Fixpoint(IFP, name, _columns(columns), body)


def pfp(name: str, columns: Iterable[Var | tuple[str, TypeLike]],
        body: Formula) -> Fixpoint:
    """Partial fixpoint ``PFP(body(S), S)`` with declared columns."""
    return Fixpoint(PFP, name, _columns(columns), body)


def query(head: Iterable[Var | tuple[str, TypeLike]], body: Formula,
          output_name: str = "S") -> Query:
    """Build a query ``{[head] | body}`` from typed head variables."""
    return Query(_columns(head), body, output_name)
