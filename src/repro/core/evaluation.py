"""Evaluation of CALC / CALC+IFP / CALC+PFP queries.

Implements the paper's two interpretations:

* **active-domain semantics** (Section 3) — every variable of type T
  ranges over ``dom(T, D)`` where D is the set of atomic constants of the
  input instance and of the query's constants.  This is the reference
  semantics; its cost is hyperexponential in general, so all domain
  materialisation is guarded by ``max_domain_size``.
* **restricted-domain semantics** (Section 5) — each variable ranges over
  a supplied finite set of candidate values (a *range*).  The
  range-restriction analysis (:mod:`repro.core.range_restriction`)
  produces ranges under which restricted evaluation provably agrees with
  the active-domain answer for RR formulas, in polynomial time.

The evaluator handles IFP and PFP per Definition 3.1 (see
:mod:`repro.core.fixpoint`), including fixpoints used as *terms* and
fixpoints with outer parameters (Example 5.3's range-restricted nest).

Two evaluation strategies are offered (``Evaluator(strategy=...)``):

* ``"naive"`` — every fixpoint stage re-enumerates the full column
  product and re-checks every candidate row; every subformula is
  re-evaluated from scratch.  This is the reference oracle the
  differential tests compare against.
* ``"seminaive"`` (default) — delta-driven: inflationary stages skip
  candidate rows already in the fixpoint (their membership is settled —
  the union keeps them regardless), and ``_satisfy`` memoizes subformula
  results whose free variables are bound and whose referenced fixpoint
  relations are unchanged between stages.  Both refinements preserve the
  Definition 3.1 semantics exactly — stage sequences, answers, and
  :class:`PFPDivergenceError` period/stage all match the naive strategy.

Orthogonally to the strategy, ``Evaluator(intern=True)`` evaluates over
the interned kernel: the instance's values are interned once into a
:class:`repro.objects.intern.ValueStore` and every environment binds
dense integer ids instead of nested objects, so equality, membership
and relation probes compare machine ints.  Interning is a bijection on
the values in play, hence every truth value, stage sequence, stat
counter and divergence outcome is identical to the object evaluator's;
answers are decoded back to values at the API boundary.  The naive
object engines therefore stay the differential oracle for the interned
path too.
"""

from __future__ import annotations

import itertools
from typing import Collection, Iterable, Iterator, Mapping

from ..obs import NullTracer, Tracer, get_tracer
from ..obs.metrics import value_node_count
from ..objects.domains import DomainTooLarge, domain_cardinality, materialize_domain
from ..objects.instance import Instance
from ..objects.intern import ValueStore
from ..objects.schema import DatabaseSchema
from ..objects.types import Type
from ..objects.values import Atom, CSet, CTuple, Value
from .fixpoint import PFPDivergenceError, iterate_ifp, iterate_ifp_delta, iterate_pfp
from .syntax import (
    IFP,
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    Term,
    Var,
    constants_of,
)
from .typecheck import check_query

__all__ = [
    "EvalError",
    "PFPDivergenceError",
    "Evaluator",
    "STRATEGIES",
    "evaluate",
    "evaluate_formula",
    "active_atoms",
]

#: Default cap on any single materialised domain.
DEFAULT_MAX_DOMAIN = 1_000_000
#: Default cap on the size of a quantifier/head product enumeration.
DEFAULT_MAX_PRODUCT = 20_000_000
#: Cap on memoized subformula results per evaluation (bounds memory).
DEFAULT_MAX_MEMO = 250_000

#: Recognised evaluation strategies.
STRATEGIES = ("naive", "seminaive")


class EvalError(Exception):
    """Raised when evaluation cannot proceed (ill-typed input, caps...)."""


def active_atoms(inst: Instance, query_constants: Iterable[Value] = ()) -> tuple[Atom, ...]:
    """The active atomic domain: atoms of the instance plus atoms of the
    query's constants, in deterministic label order."""
    atoms = set(inst.atoms())
    for constant in query_constants:
        atoms |= constant.atoms()
    return tuple(sorted(atoms, key=lambda a: (type(a.label).__name__, str(a.label))))


class _DomainCache:
    """Materialised ``dom(T, D)`` per type, guarded by a size cap."""

    def __init__(self, atoms: tuple[Atom, ...], max_domain: int,
                 tracer: Tracer | NullTracer | None = None):
        self.atoms = atoms
        self.max_domain = max_domain
        self.tracer = tracer if tracer is not None else get_tracer()
        self._cache: dict[Type, list[Value]] = {}

    def domain(self, typ: Type) -> list[Value]:
        if typ not in self._cache:
            cardinality = domain_cardinality(typ, len(self.atoms))
            if cardinality > self.max_domain:
                raise DomainTooLarge(
                    f"active-domain evaluation needs |dom({typ!r})| = "
                    f"{cardinality} values (cap {self.max_domain}); use "
                    "range-restricted evaluation or raise max_domain_size"
                )
            self._cache[typ] = materialize_domain(typ, self.atoms, None)
            if self.tracer.enabled:
                self.tracer.event("domain", type=repr(typ),
                                  cardinality=len(self._cache[typ]))
                self.tracer.count("domains.materialized")
                self.tracer.gauge(f"domain[{typ!r}]", len(self._cache[typ]))
        return self._cache[typ]


def _referenced_relations(formula: Formula) -> frozenset[str]:
    """Relation names a formula's truth value can depend on.

    Collects every :class:`RelAtom` name reachable from the formula,
    descending into fixpoint bodies in both predicate and term position
    (a fixpoint body may read an *enclosing* fixpoint's relation through
    the evaluator's relation environment, so those names count as
    dependencies of the outer formula too).
    """
    names: set[str] = set()

    def visit_term(term: Term) -> None:
        for sub in term.walk_terms():
            if isinstance(sub, FixpointTerm):
                visit(sub.fixpoint.body)

    def visit(node: Formula) -> None:
        if isinstance(node, RelAtom):
            names.add(node.name)
        if isinstance(node, FixpointPred):
            visit(node.fixpoint.body)
        for child in node.children():
            visit(child)
        for term in node.terms():
            visit_term(term)

    visit(formula)
    return frozenset(names)


class _Context:
    """State threaded through a single evaluation."""

    def __init__(
        self,
        instance: Instance,
        atoms: tuple[Atom, ...],
        max_domain: int,
        max_product: int,
        variable_ranges: Mapping[str, Collection[Value]] | None,
        fixpoint_ranges: Mapping[str, Mapping[str, Collection[Value]]] | None,
        tracer: Tracer | NullTracer | None = None,
        strategy: str = "seminaive",
        max_memo: int = DEFAULT_MAX_MEMO,
        store: ValueStore | None = None,
    ):
        self.instance = instance
        self.tracer = tracer if tracer is not None else get_tracer()
        self.domains = _DomainCache(atoms, max_domain, self.tracer)
        self.max_product = max_product
        self.variable_ranges = dict(variable_ranges or {})
        self.fixpoint_ranges = {
            name: dict(ranges) for name, ranges in (fixpoint_ranges or {}).items()
        }
        self.strategy = strategy
        #: Relations bound by enclosing fixpoints: name -> frozenset of rows.
        self.rel_env: dict[str, frozenset[tuple[Value, ...]]] = {}
        #: Cache of fixpoint results keyed by (fixpoint, parameter values).
        self.fixpoint_cache: dict[tuple, frozenset[tuple[Value, ...]]] = {}
        #: Statistics (exposed for benchmarks).
        self.stats = {"atom_checks": 0, "formula_checks": 0,
                      "quantifier_iterations": 0, "fixpoint_stages": 0,
                      "delta_rows": 0, "stage_skips": 0,
                      "satisfy_memo_hits": 0}
        #: Enumeration shapes already reported to the tracer (dedup so a
        #: quantifier inside a hot loop traces once, not per outer env).
        self.traced_enumerations: set[tuple] = set()
        #: Memoized _satisfy results (seminaive strategy only), keyed by
        #: (formula, free-variable bindings); capped by ``max_memo``.
        self.memo_enabled = strategy == "seminaive"
        self.max_memo = max_memo
        self.satisfy_memo: dict[tuple, bool] = {}
        #: Interned kernel: when set, every env binds dense ids from this
        #: store and `candidates`/relation probes go through the encoded
        #: caches below.  ``None`` selects the plain object path.
        self.store = store
        self._encoded_domains: dict[tuple, list[int]] = {}
        self._instance_rows: dict[str, frozenset[tuple[int, ...]]] = {}
        #: Per-formula (free variables, referenced relations), computed once.
        #: Keyed by ``id(formula)``: AST nodes are immutable and outlive
        #: the context, and structural hashing of a subtree on every
        #: lookup is exactly the per-node cost memoization must avoid.
        self._profiles: dict[int, tuple[tuple[str, ...], frozenset[str]]] = {}

    def profile(self, formula: Formula) -> tuple[tuple[str, ...], frozenset[str]]:
        """Free-variable names (sorted) and referenced relation names."""
        cached = self._profiles.get(id(formula))
        if cached is None:
            cached = (tuple(sorted(formula.free_variables())),
                      _referenced_relations(formula))
            self._profiles[id(formula)] = cached
        return cached

    def candidates(self, var_name: str, typ: Type) -> Collection:
        """Values a variable ranges over: its range if given, else dom(T, D).

        Interned contexts return (and cache) the id-encoded candidate
        list; the enumeration order matches the object path's, so stats
        and short-circuiting behave identically."""
        if self.store is None:
            if var_name in self.variable_ranges:
                return self.variable_ranges[var_name]
            return self.domains.domain(typ)
        ranged = var_name in self.variable_ranges
        key = ("range", var_name) if ranged else ("domain", typ)
        cached = self._encoded_domains.get(key)
        if cached is None:
            source = (self.variable_ranges[var_name] if ranged
                      else self.domains.domain(typ))
            cached = [self.store.intern(value) for value in source]
            self._encoded_domains[key] = cached
        return cached

    def instance_rows(self, name: str) -> frozenset[tuple[int, ...]]:
        """Id-encoded rows of an instance relation (interned contexts)."""
        rows = self._instance_rows.get(name)
        if rows is None:
            assert self.store is not None
            rows = frozenset(
                self.store.intern_row(row.items)
                for row in self.instance.relation(name).tuples
            )
            self._instance_rows[name] = rows
        return rows


class Evaluator:
    """Evaluates CALC(+IFP/PFP) queries over complex object instances.

    Parameters:
        schema: input database schema (used for type checking).
        max_domain_size: cap on any materialised ``dom(T, D)``.
        max_product: cap on enumerated variable-product sizes.
        max_fixpoint_stages: guard on fixpoint iteration counts.
        variable_ranges: optional restricted-domain ranges, variable name
            to a collection of candidate values (restricted semantics).
        strategy: ``"seminaive"`` (delta-driven, the default) or
            ``"naive"`` (the reference oracle; see the module docstring).
        intern: evaluate over dense value ids from a per-evaluation
            :class:`ValueStore` instead of nested objects (orthogonal to
            ``strategy``; answers and counters are identical).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        max_domain_size: int = DEFAULT_MAX_DOMAIN,
        max_product: int = DEFAULT_MAX_PRODUCT,
        max_fixpoint_stages: int | None = 100_000,
        variable_ranges: Mapping[str, Collection[Value]] | None = None,
        tracer: Tracer | NullTracer | None = None,
        strategy: str = "seminaive",
        intern: bool = False,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown evaluation strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        self.schema = schema
        self.max_domain_size = max_domain_size
        self.max_product = max_product
        self.max_fixpoint_stages = max_fixpoint_stages
        self.variable_ranges = variable_ranges
        self.strategy = strategy
        self.intern = intern
        #: Explicit tracer; None resolves the active one per evaluation,
        #: so ``with use_tracer(...)`` works without rebuilding Evaluators.
        self.tracer = tracer
        self.last_stats: dict[str, int] | None = None

    # -- public API ------------------------------------------------------

    def evaluate(self, query: Query, inst: Instance) -> frozenset[CTuple]:
        """Compute ``Q(I)``: the set of head tuples satisfying the body."""
        report = check_query(query, self.schema)
        ctx = self._context(query.body, inst)
        head_vars = [Var(n, t) for n, t in query.head]
        results: set[CTuple] = set()
        with ctx.tracer.span("query",
                             head=[name for name, _ in query.head]) as span:
            for env in self._bindings(head_vars, ctx, {}):
                if self._satisfy(query.body, env, ctx):
                    if ctx.store is not None:
                        results.add(CTuple(ctx.store.value(env[v.name])
                                           for v in head_vars))
                    else:
                        results.add(CTuple(env[v.name] for v in head_vars))
            span.set(rows=len(results))
            if ctx.tracer.enabled:
                ctx.tracer.count(
                    "space.answer_nodes",
                    sum(value_node_count(row) for row in results),
                )
        self._finish(ctx)
        return frozenset(results)

    def evaluate_formula(
        self,
        formula: Formula,
        inst: Instance,
        env: Mapping[str, Value] | None = None,
        free_variable_types: Mapping[str, Type] | None = None,
    ) -> bool:
        """Evaluate a (possibly open) formula under a variable binding."""
        from .typecheck import check_formula

        check_formula(formula, self.schema,
                      dict(free_variable_types or {}) or None)
        ctx = self._context(formula, inst)
        bound = dict(env or {})
        if ctx.store is not None:
            bound = {name: ctx.store.intern(value)
                     for name, value in bound.items()}
        result = self._satisfy(formula, bound, ctx)
        self._finish(ctx)
        return result

    def evaluate_fixpoint(
        self,
        fixpoint: Fixpoint,
        inst: Instance,
        env: Mapping[str, Value] | None = None,
    ) -> frozenset[tuple[Value, ...]]:
        """Compute a fixpoint relation directly (rows as value tuples)."""
        from .typecheck import check_formula

        param_types = {
            v.name: v.typ for v in fixpoint.parameters() if v.typ is not None
        }
        check_formula(FixpointPred(fixpoint,
                                   [Var(n, t) for n, t in fixpoint.columns]),
                      self.schema, param_types or None)
        ctx = self._context(fixpoint.body, inst)
        bound = dict(env or {})
        if ctx.store is not None:
            bound = {name: ctx.store.intern(value)
                     for name, value in bound.items()}
        result = self._fixpoint_rows(fixpoint, bound, ctx)
        if ctx.store is not None:
            result = frozenset(ctx.store.unintern_row(row) for row in result)
        self._finish(ctx)
        return result

    # -- machinery ---------------------------------------------------------

    def _context(self, formula: Formula, inst: Instance) -> _Context:
        atoms = active_atoms(inst, constants_of(formula))
        fixpoint_ranges: dict[str, dict[str, Collection[Value]]] = {}
        tracer = self.tracer if self.tracer is not None else get_tracer()
        store = ValueStore.from_instance(inst) if self.intern else None
        return _Context(
            inst, atoms, self.max_domain_size, self.max_product,
            self.variable_ranges, fixpoint_ranges, tracer,
            strategy=self.strategy, store=store,
        )

    def _finish(self, ctx: _Context) -> None:
        """Publish per-evaluation stats (kept on ``last_stats`` for
        backwards compatibility, mirrored into the tracer's counters).
        Zero-valued stats are not mirrored, keeping EXPLAIN output free
        of counters the evaluation never touched."""
        self.last_stats = ctx.stats
        if ctx.tracer.enabled:
            for name, value in ctx.stats.items():
                if value:
                    ctx.tracer.count(f"eval.{name}", value)
            if ctx.store is not None:
                ctx.tracer.gauge("space.interned_values", len(ctx.store))

    def _bindings(
        self,
        variables: list[Var],
        ctx: _Context,
        base_env: dict[str, Value],
    ) -> Iterator[dict[str, Value]]:
        """Enumerate environments extending base_env over the variables."""
        domains = []
        total = 1
        for var in variables:
            assert var.typ is not None
            candidates = ctx.candidates(var.name, var.typ)
            domains.append(list(candidates))
            total *= len(domains[-1])
            if total > ctx.max_product:
                raise EvalError(
                    f"enumeration of {total}+ bindings exceeds cap "
                    f"{ctx.max_product}"
                )
        if ctx.tracer.enabled and variables:
            shape = tuple((v.name, len(d)) for v, d in zip(variables, domains))
            if shape not in ctx.traced_enumerations:
                ctx.traced_enumerations.add(shape)
                ctx.tracer.event(
                    "enumerate",
                    vars=[v.name for v in variables],
                    sizes=[len(d) for d in domains],
                    product=total,
                )
            ctx.tracer.count("eval.enumerations")
        for combo in itertools.product(*domains):
            env = dict(base_env)
            for var, value in zip(variables, combo):
                env[var.name] = value
            ctx.stats["quantifier_iterations"] += 1
            yield env

    def _eval_term(self, term: Term, env: dict, ctx: _Context):
        """Value of a term (a nested object, or a dense id when interned)."""
        if isinstance(term, Const):
            if ctx.store is not None:
                return ctx.store.intern(term.value)
            return term.value
        if isinstance(term, Var):
            try:
                return env[term.name]
            except KeyError:
                raise EvalError(f"unbound variable {term.name!r}") from None
        if isinstance(term, Proj):
            base = self._eval_term(term.base, env, ctx)
            if ctx.store is not None:
                items = ctx.store.tuple_items(base)
                if items is None:
                    raise EvalError(
                        f"projection on non-tuple value "
                        f"{ctx.store.value(base)!r}")
                if not 1 <= term.index <= len(items):
                    raise EvalError(
                        f"projection index {term.index} out of range for "
                        f"a {len(items)}-tuple")
                return items[term.index - 1]
            if not isinstance(base, CTuple):
                raise EvalError(f"projection on non-tuple value {base!r}")
            return base.component(term.index)
        if isinstance(term, FixpointTerm):
            rows = self._fixpoint_rows(term.fixpoint, env, ctx)
            if ctx.store is not None:
                if term.fixpoint.arity == 1:
                    return ctx.store.intern_set(row[0] for row in rows)
                return ctx.store.intern_set(
                    ctx.store.intern_tuple(row) for row in rows)
            if term.fixpoint.arity == 1:
                return CSet(row[0] for row in rows)
            return CSet(CTuple(row) for row in rows)
        raise EvalError(f"unknown term {term!r}")

    def _satisfy(self, formula: Formula, env: dict[str, Value], ctx: _Context) -> bool:
        """Truth of ``formula`` under ``env``.

        ``formula_checks`` counts every node visited; ``atom_checks``
        counts atomic formulas only.  Quantifier and fixpoint nodes — the
        only ones whose evaluation loops — detour through
        :meth:`_satisfy_memoized`; everything else is dispatched inline
        so the per-node cost stays what it was before memoization existed.
        """
        stats = ctx.stats
        stats["formula_checks"] += 1
        if isinstance(formula, Equals):
            stats["atom_checks"] += 1
            return (self._eval_term(formula.left, env, ctx)
                    == self._eval_term(formula.right, env, ctx))
        if isinstance(formula, In):
            stats["atom_checks"] += 1
            container = self._eval_term(formula.container, env, ctx)
            if ctx.store is not None:
                members = ctx.store.set_members(container)
                if members is None:
                    raise EvalError(f"'in' on non-set value "
                                    f"{ctx.store.value(container)!r}")
                return self._eval_term(formula.element, env, ctx) in members
            if not isinstance(container, CSet):
                raise EvalError(f"'in' on non-set value {container!r}")
            return self._eval_term(formula.element, env, ctx) in container
        if isinstance(formula, Subset):
            stats["atom_checks"] += 1
            left = self._eval_term(formula.left, env, ctx)
            right = self._eval_term(formula.right, env, ctx)
            if ctx.store is not None:
                left_members = ctx.store.set_members(left)
                right_members = ctx.store.set_members(right)
                if left_members is None or right_members is None:
                    raise EvalError("'sub' on non-set values")
                return left_members <= right_members
            if not isinstance(left, CSet) or not isinstance(right, CSet):
                raise EvalError("'sub' on non-set values")
            return left.issubset(right)
        if isinstance(formula, RelAtom):
            stats["atom_checks"] += 1
            row = tuple(self._eval_term(a, env, ctx) for a in formula.args)
            if formula.name in ctx.rel_env:
                return row in ctx.rel_env[formula.name]
            if ctx.store is not None:
                return row in ctx.instance_rows(formula.name)
            return CTuple(row) in ctx.instance.relation(formula.name).tuples
        if isinstance(formula, FixpointPred):
            stats["atom_checks"] += 1
            return self._satisfy_memoized(formula, env, ctx)
        if isinstance(formula, Not):
            return not self._satisfy(formula.operand, env, ctx)
        if isinstance(formula, And):
            return all(self._satisfy(op, env, ctx) for op in formula.operands)
        if isinstance(formula, Or):
            return any(self._satisfy(op, env, ctx) for op in formula.operands)
        if isinstance(formula, Implies):
            return (not self._satisfy(formula.antecedent, env, ctx)
                    or self._satisfy(formula.consequent, env, ctx))
        if isinstance(formula, Iff):
            return (self._satisfy(formula.left, env, ctx)
                    == self._satisfy(formula.right, env, ctx))
        if isinstance(formula, (Exists, Forall)):
            return self._satisfy_memoized(formula, env, ctx)
        raise EvalError(f"unknown formula {formula!r}")

    def _satisfy_memoized(self, formula: Formula, env: dict[str, Value],
                          ctx: _Context) -> bool:
        """Quantifier/fixpoint nodes, memoized under the seminaive
        strategy.

        Subformulas whose referenced relations are not bound by an
        enclosing fixpoint are cached on their free-variable bindings:
        their truth then depends only on the (constant) instance, so the
        cached result stays valid across fixpoint stages and across
        sibling candidate rows.
        """
        memo_key = None
        if ctx.memo_enabled:
            free_names, rel_names = ctx.profile(formula)
            if not any(name in ctx.rel_env for name in rel_names):
                try:
                    memo_key = (id(formula),
                                tuple(env[name] for name in free_names))
                except KeyError:
                    memo_key = None  # unbound free variable: don't memoize
                if memo_key is not None:
                    cached = ctx.satisfy_memo.get(memo_key)
                    if cached is not None:
                        ctx.stats["satisfy_memo_hits"] += 1
                        return cached
        result = self._satisfy_quantified(formula, env, ctx)
        if memo_key is not None and len(ctx.satisfy_memo) < ctx.max_memo:
            ctx.satisfy_memo[memo_key] = result
        return result

    def _satisfy_quantified(self, formula: Formula, env: dict[str, Value],
                            ctx: _Context) -> bool:
        if isinstance(formula, FixpointPred):
            rows = self._fixpoint_rows(formula.fixpoint, env, ctx)
            row = tuple(self._eval_term(a, env, ctx) for a in formula.args)
            return row in rows
        if isinstance(formula, Exists):
            for extended in self._bindings([formula.var], ctx, env):
                if self._satisfy(formula.body, extended, ctx):
                    return True
            return False
        if isinstance(formula, Forall):
            for extended in self._bindings([formula.var], ctx, env):
                if not self._satisfy(formula.body, extended, ctx):
                    return False
            return True
        raise EvalError(f"unknown formula {formula!r}")

    def _fixpoint_rows(
        self, fixpoint: Fixpoint, env: dict[str, Value], ctx: _Context
    ) -> frozenset[tuple[Value, ...]]:
        # Cache on the fixpoint identity plus the values of its parameters
        # and the state of any enclosing fixpoint relations it references.
        param_values = tuple(
            (v.name, env.get(v.name)) for v in fixpoint.parameters()
        )
        outer_rels = tuple(sorted(
            (name, rows) for name, rows in ctx.rel_env.items()
        ))
        key = (fixpoint, param_values, outer_rels)
        if key in ctx.fixpoint_cache:
            ctx.tracer.count("eval.fixpoint_cache_hits")
            return ctx.fixpoint_cache[key]

        column_vars = [Var(n, t) for n, t in fixpoint.columns]

        def body_rows(current: frozenset[tuple[Value, ...]],
                      skip_known: bool) -> frozenset[tuple[Value, ...]]:
            """One application of phi against ``current``.

            With ``skip_known`` (seminaive IFP), candidate rows already
            in ``current`` are not re-checked: the inflationary union
            keeps them regardless of whether phi still derives them.
            """
            ctx.stats["fixpoint_stages"] += 1
            previous = ctx.rel_env.get(fixpoint.name)
            ctx.rel_env[fixpoint.name] = current
            try:
                rows = set()
                for extended in self._bindings(column_vars, ctx, env):
                    row = tuple(extended[v.name] for v in column_vars)
                    if skip_known and row in current:
                        ctx.stats["stage_skips"] += 1
                        continue
                    if self._satisfy(fixpoint.body, extended, ctx):
                        rows.add(row)
                return frozenset(rows)
            finally:
                if previous is None:
                    del ctx.rel_env[fixpoint.name]
                else:
                    ctx.rel_env[fixpoint.name] = previous

        def naive_stage(current: frozenset[tuple[Value, ...]]) -> frozenset[tuple[Value, ...]]:
            return body_rows(current, False)

        def delta_stage(current: frozenset[tuple[Value, ...]],
                        delta: frozenset[tuple[Value, ...]]) -> frozenset[tuple[Value, ...]]:
            rows = body_rows(current, True)
            ctx.stats["delta_rows"] += len(rows)
            return rows

        kind = "ifp" if fixpoint.kind == IFP else "pfp"
        with ctx.tracer.span("fixpoint", name=fixpoint.name,
                             kind=kind, strategy=ctx.strategy) as span:
            if fixpoint.kind == IFP:
                if ctx.strategy == "seminaive":
                    result = iterate_ifp_delta(
                        delta_stage, self.max_fixpoint_stages, ctx.tracer)
                else:
                    result = iterate_ifp(naive_stage,
                                         self.max_fixpoint_stages,
                                         ctx.tracer)
            else:
                # PFP stages *replace* the relation, so no candidate can
                # be skipped; the seminaive strategy still benefits from
                # _satisfy memoization of stage-invariant subformulas.
                result = iterate_pfp(naive_stage, self.max_fixpoint_stages,
                                     ctx.tracer)
            span.set(rows=len(result))
            if ctx.tracer.enabled:
                ctx.tracer.observe("space.fixpoint_rows", len(result))
        ctx.fixpoint_cache[key] = result
        return result


def evaluate(
    query: Query,
    inst: Instance,
    schema: DatabaseSchema | None = None,
    **evaluator_options,
) -> frozenset[CTuple]:
    """One-shot convenience: evaluate a query on an instance.

    ``schema`` defaults to the instance's schema.
    """
    evaluator = Evaluator(schema or inst.schema, **evaluator_options)
    return evaluator.evaluate(query, inst)


def evaluate_formula(
    formula: Formula,
    inst: Instance,
    env: Mapping[str, Value] | None = None,
    free_variable_types: Mapping[str, Type] | None = None,
    schema: DatabaseSchema | None = None,
    **evaluator_options,
) -> bool:
    """One-shot convenience: evaluate a sentence (or open formula + env)."""
    evaluator = Evaluator(schema or inst.schema, **evaluator_options)
    return evaluator.evaluate_formula(formula, inst, env, free_variable_types)
