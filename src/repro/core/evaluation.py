"""Evaluation of CALC / CALC+IFP / CALC+PFP queries.

Implements the paper's two interpretations:

* **active-domain semantics** (Section 3) — every variable of type T
  ranges over ``dom(T, D)`` where D is the set of atomic constants of the
  input instance and of the query's constants.  This is the reference
  semantics; its cost is hyperexponential in general, so all domain
  materialisation is guarded by ``max_domain_size``.
* **restricted-domain semantics** (Section 5) — each variable ranges over
  a supplied finite set of candidate values (a *range*).  The
  range-restriction analysis (:mod:`repro.core.range_restriction`)
  produces ranges under which restricted evaluation provably agrees with
  the active-domain answer for RR formulas, in polynomial time.

The evaluator handles IFP and PFP per Definition 3.1 (see
:mod:`repro.core.fixpoint`), including fixpoints used as *terms* and
fixpoints with outer parameters (Example 5.3's range-restricted nest).
"""

from __future__ import annotations

import itertools
from typing import Collection, Iterable, Iterator, Mapping

from ..obs import NullTracer, Tracer, get_tracer
from ..objects.domains import DomainTooLarge, domain_cardinality, materialize_domain
from ..objects.instance import Instance
from ..objects.schema import DatabaseSchema
from ..objects.types import Type
from ..objects.values import Atom, CSet, CTuple, Value
from .fixpoint import PFPDivergenceError, iterate_ifp, iterate_pfp
from .syntax import (
    IFP,
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    Term,
    Var,
    constants_of,
)
from .typecheck import check_query

__all__ = [
    "EvalError",
    "PFPDivergenceError",
    "Evaluator",
    "evaluate",
    "evaluate_formula",
    "active_atoms",
]

#: Default cap on any single materialised domain.
DEFAULT_MAX_DOMAIN = 1_000_000
#: Default cap on the size of a quantifier/head product enumeration.
DEFAULT_MAX_PRODUCT = 20_000_000


class EvalError(Exception):
    """Raised when evaluation cannot proceed (ill-typed input, caps...)."""


def active_atoms(inst: Instance, query_constants: Iterable[Value] = ()) -> tuple[Atom, ...]:
    """The active atomic domain: atoms of the instance plus atoms of the
    query's constants, in deterministic label order."""
    atoms = set(inst.atoms())
    for constant in query_constants:
        atoms |= constant.atoms()
    return tuple(sorted(atoms, key=lambda a: (type(a.label).__name__, str(a.label))))


class _DomainCache:
    """Materialised ``dom(T, D)`` per type, guarded by a size cap."""

    def __init__(self, atoms: tuple[Atom, ...], max_domain: int,
                 tracer: Tracer | NullTracer | None = None):
        self.atoms = atoms
        self.max_domain = max_domain
        self.tracer = tracer if tracer is not None else get_tracer()
        self._cache: dict[Type, list[Value]] = {}

    def domain(self, typ: Type) -> list[Value]:
        if typ not in self._cache:
            cardinality = domain_cardinality(typ, len(self.atoms))
            if cardinality > self.max_domain:
                raise DomainTooLarge(
                    f"active-domain evaluation needs |dom({typ!r})| = "
                    f"{cardinality} values (cap {self.max_domain}); use "
                    "range-restricted evaluation or raise max_domain_size"
                )
            self._cache[typ] = materialize_domain(typ, self.atoms, None)
            if self.tracer.enabled:
                self.tracer.event("domain", type=repr(typ),
                                  cardinality=len(self._cache[typ]))
                self.tracer.count("domains.materialized")
                self.tracer.gauge(f"domain[{typ!r}]", len(self._cache[typ]))
        return self._cache[typ]


class _Context:
    """State threaded through a single evaluation."""

    def __init__(
        self,
        instance: Instance,
        atoms: tuple[Atom, ...],
        max_domain: int,
        max_product: int,
        variable_ranges: Mapping[str, Collection[Value]] | None,
        fixpoint_ranges: Mapping[str, Mapping[str, Collection[Value]]] | None,
        tracer: Tracer | NullTracer | None = None,
    ):
        self.instance = instance
        self.tracer = tracer if tracer is not None else get_tracer()
        self.domains = _DomainCache(atoms, max_domain, self.tracer)
        self.max_product = max_product
        self.variable_ranges = dict(variable_ranges or {})
        self.fixpoint_ranges = {
            name: dict(ranges) for name, ranges in (fixpoint_ranges or {}).items()
        }
        #: Relations bound by enclosing fixpoints: name -> frozenset of rows.
        self.rel_env: dict[str, frozenset[tuple[Value, ...]]] = {}
        #: Cache of fixpoint results keyed by (fixpoint, parameter values).
        self.fixpoint_cache: dict[tuple, frozenset[tuple[Value, ...]]] = {}
        #: Statistics (exposed for benchmarks).
        self.stats = {"atom_checks": 0, "quantifier_iterations": 0,
                      "fixpoint_stages": 0}
        #: Enumeration shapes already reported to the tracer (dedup so a
        #: quantifier inside a hot loop traces once, not per outer env).
        self.traced_enumerations: set[tuple] = set()

    def candidates(self, var_name: str, typ: Type) -> Collection[Value]:
        """Values a variable ranges over: its range if given, else dom(T, D)."""
        if var_name in self.variable_ranges:
            return self.variable_ranges[var_name]
        return self.domains.domain(typ)


class Evaluator:
    """Evaluates CALC(+IFP/PFP) queries over complex object instances.

    Parameters:
        schema: input database schema (used for type checking).
        max_domain_size: cap on any materialised ``dom(T, D)``.
        max_product: cap on enumerated variable-product sizes.
        max_fixpoint_stages: guard on fixpoint iteration counts.
        variable_ranges: optional restricted-domain ranges, variable name
            to a collection of candidate values (restricted semantics).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        max_domain_size: int = DEFAULT_MAX_DOMAIN,
        max_product: int = DEFAULT_MAX_PRODUCT,
        max_fixpoint_stages: int | None = 100_000,
        variable_ranges: Mapping[str, Collection[Value]] | None = None,
        tracer: Tracer | NullTracer | None = None,
    ):
        self.schema = schema
        self.max_domain_size = max_domain_size
        self.max_product = max_product
        self.max_fixpoint_stages = max_fixpoint_stages
        self.variable_ranges = variable_ranges
        #: Explicit tracer; None resolves the active one per evaluation,
        #: so ``with use_tracer(...)`` works without rebuilding Evaluators.
        self.tracer = tracer
        self.last_stats: dict[str, int] | None = None

    # -- public API ------------------------------------------------------

    def evaluate(self, query: Query, inst: Instance) -> frozenset[CTuple]:
        """Compute ``Q(I)``: the set of head tuples satisfying the body."""
        report = check_query(query, self.schema)
        ctx = self._context(query.body, inst)
        head_vars = [Var(n, t) for n, t in query.head]
        results: set[CTuple] = set()
        with ctx.tracer.span("query",
                             head=[name for name, _ in query.head]) as span:
            for env in self._bindings(head_vars, ctx, {}):
                if self._satisfy(query.body, env, ctx):
                    results.add(CTuple(env[v.name] for v in head_vars))
            span.set(rows=len(results))
        self._finish(ctx)
        return frozenset(results)

    def evaluate_formula(
        self,
        formula: Formula,
        inst: Instance,
        env: Mapping[str, Value] | None = None,
        free_variable_types: Mapping[str, Type] | None = None,
    ) -> bool:
        """Evaluate a (possibly open) formula under a variable binding."""
        from .typecheck import check_formula

        check_formula(formula, self.schema,
                      dict(free_variable_types or {}) or None)
        ctx = self._context(formula, inst)
        result = self._satisfy(formula, dict(env or {}), ctx)
        self._finish(ctx)
        return result

    def evaluate_fixpoint(
        self,
        fixpoint: Fixpoint,
        inst: Instance,
        env: Mapping[str, Value] | None = None,
    ) -> frozenset[tuple[Value, ...]]:
        """Compute a fixpoint relation directly (rows as value tuples)."""
        from .typecheck import check_formula

        param_types = {
            v.name: v.typ for v in fixpoint.parameters() if v.typ is not None
        }
        check_formula(FixpointPred(fixpoint,
                                   [Var(n, t) for n, t in fixpoint.columns]),
                      self.schema, param_types or None)
        ctx = self._context(fixpoint.body, inst)
        result = self._fixpoint_rows(fixpoint, dict(env or {}), ctx)
        self._finish(ctx)
        return result

    # -- machinery ---------------------------------------------------------

    def _context(self, formula: Formula, inst: Instance) -> _Context:
        atoms = active_atoms(inst, constants_of(formula))
        fixpoint_ranges: dict[str, dict[str, Collection[Value]]] = {}
        tracer = self.tracer if self.tracer is not None else get_tracer()
        return _Context(
            inst, atoms, self.max_domain_size, self.max_product,
            self.variable_ranges, fixpoint_ranges, tracer,
        )

    def _finish(self, ctx: _Context) -> None:
        """Publish per-evaluation stats (kept on ``last_stats`` for
        backwards compatibility, mirrored into the tracer's counters)."""
        self.last_stats = ctx.stats
        if ctx.tracer.enabled:
            for name, value in ctx.stats.items():
                ctx.tracer.count(f"eval.{name}", value)

    def _bindings(
        self,
        variables: list[Var],
        ctx: _Context,
        base_env: dict[str, Value],
    ) -> Iterator[dict[str, Value]]:
        """Enumerate environments extending base_env over the variables."""
        domains = []
        total = 1
        for var in variables:
            assert var.typ is not None
            candidates = ctx.candidates(var.name, var.typ)
            domains.append(list(candidates))
            total *= len(domains[-1])
            if total > ctx.max_product:
                raise EvalError(
                    f"enumeration of {total}+ bindings exceeds cap "
                    f"{ctx.max_product}"
                )
        if ctx.tracer.enabled and variables:
            shape = tuple((v.name, len(d)) for v, d in zip(variables, domains))
            if shape not in ctx.traced_enumerations:
                ctx.traced_enumerations.add(shape)
                ctx.tracer.event(
                    "enumerate",
                    vars=[v.name for v in variables],
                    sizes=[len(d) for d in domains],
                    product=total,
                )
            ctx.tracer.count("eval.enumerations")
        for combo in itertools.product(*domains):
            env = dict(base_env)
            for var, value in zip(variables, combo):
                env[var.name] = value
            ctx.stats["quantifier_iterations"] += 1
            yield env

    def _eval_term(self, term: Term, env: dict[str, Value], ctx: _Context) -> Value:
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            try:
                return env[term.name]
            except KeyError:
                raise EvalError(f"unbound variable {term.name!r}") from None
        if isinstance(term, Proj):
            base = self._eval_term(term.base, env, ctx)
            if not isinstance(base, CTuple):
                raise EvalError(f"projection on non-tuple value {base!r}")
            return base.component(term.index)
        if isinstance(term, FixpointTerm):
            rows = self._fixpoint_rows(term.fixpoint, env, ctx)
            if term.fixpoint.arity == 1:
                return CSet(row[0] for row in rows)
            return CSet(CTuple(row) for row in rows)
        raise EvalError(f"unknown term {term!r}")

    def _satisfy(self, formula: Formula, env: dict[str, Value], ctx: _Context) -> bool:
        ctx.stats["atom_checks"] += 1
        if isinstance(formula, Equals):
            return (self._eval_term(formula.left, env, ctx)
                    == self._eval_term(formula.right, env, ctx))
        if isinstance(formula, In):
            container = self._eval_term(formula.container, env, ctx)
            if not isinstance(container, CSet):
                raise EvalError(f"'in' on non-set value {container!r}")
            return self._eval_term(formula.element, env, ctx) in container
        if isinstance(formula, Subset):
            left = self._eval_term(formula.left, env, ctx)
            right = self._eval_term(formula.right, env, ctx)
            if not isinstance(left, CSet) or not isinstance(right, CSet):
                raise EvalError("'sub' on non-set values")
            return left.issubset(right)
        if isinstance(formula, RelAtom):
            row = tuple(self._eval_term(a, env, ctx) for a in formula.args)
            if formula.name in ctx.rel_env:
                return row in ctx.rel_env[formula.name]
            return CTuple(row) in ctx.instance.relation(formula.name).tuples
        if isinstance(formula, FixpointPred):
            rows = self._fixpoint_rows(formula.fixpoint, env, ctx)
            row = tuple(self._eval_term(a, env, ctx) for a in formula.args)
            return row in rows
        if isinstance(formula, Not):
            return not self._satisfy(formula.operand, env, ctx)
        if isinstance(formula, And):
            return all(self._satisfy(op, env, ctx) for op in formula.operands)
        if isinstance(formula, Or):
            return any(self._satisfy(op, env, ctx) for op in formula.operands)
        if isinstance(formula, Implies):
            return (not self._satisfy(formula.antecedent, env, ctx)
                    or self._satisfy(formula.consequent, env, ctx))
        if isinstance(formula, Iff):
            return (self._satisfy(formula.left, env, ctx)
                    == self._satisfy(formula.right, env, ctx))
        if isinstance(formula, Exists):
            for extended in self._bindings([formula.var], ctx, env):
                if self._satisfy(formula.body, extended, ctx):
                    return True
            return False
        if isinstance(formula, Forall):
            for extended in self._bindings([formula.var], ctx, env):
                if not self._satisfy(formula.body, extended, ctx):
                    return False
            return True
        raise EvalError(f"unknown formula {formula!r}")

    def _fixpoint_rows(
        self, fixpoint: Fixpoint, env: dict[str, Value], ctx: _Context
    ) -> frozenset[tuple[Value, ...]]:
        # Cache on the fixpoint identity plus the values of its parameters
        # and the state of any enclosing fixpoint relations it references.
        param_values = tuple(
            (v.name, env.get(v.name)) for v in fixpoint.parameters()
        )
        outer_rels = tuple(sorted(
            (name, rows) for name, rows in ctx.rel_env.items()
        ))
        key = (fixpoint, param_values, outer_rels)
        if key in ctx.fixpoint_cache:
            ctx.tracer.count("eval.fixpoint_cache_hits")
            return ctx.fixpoint_cache[key]

        column_vars = [Var(n, t) for n, t in fixpoint.columns]

        def stage(current: frozenset[tuple[Value, ...]]) -> frozenset[tuple[Value, ...]]:
            ctx.stats["fixpoint_stages"] += 1
            previous = ctx.rel_env.get(fixpoint.name)
            ctx.rel_env[fixpoint.name] = current
            try:
                rows = set()
                for extended in self._bindings(column_vars, ctx, env):
                    if self._satisfy(fixpoint.body, extended, ctx):
                        rows.add(tuple(extended[v.name] for v in column_vars))
                return frozenset(rows)
            finally:
                if previous is None:
                    del ctx.rel_env[fixpoint.name]
                else:
                    ctx.rel_env[fixpoint.name] = previous

        kind = "ifp" if fixpoint.kind == IFP else "pfp"
        with ctx.tracer.span("fixpoint", name=fixpoint.name,
                             kind=kind) as span:
            if fixpoint.kind == IFP:
                result = iterate_ifp(stage, self.max_fixpoint_stages,
                                     ctx.tracer)
            else:
                result = iterate_pfp(stage, self.max_fixpoint_stages,
                                     ctx.tracer)
            span.set(rows=len(result))
        ctx.fixpoint_cache[key] = result
        return result


def evaluate(
    query: Query,
    inst: Instance,
    schema: DatabaseSchema | None = None,
    **evaluator_options,
) -> frozenset[CTuple]:
    """One-shot convenience: evaluate a query on an instance.

    ``schema`` defaults to the instance's schema.
    """
    evaluator = Evaluator(schema or inst.schema, **evaluator_options)
    return evaluator.evaluate(query, inst)


def evaluate_formula(
    formula: Formula,
    inst: Instance,
    env: Mapping[str, Value] | None = None,
    free_variable_types: Mapping[str, Type] | None = None,
    schema: DatabaseSchema | None = None,
    **evaluator_options,
) -> bool:
    """One-shot convenience: evaluate a sentence (or open formula + env)."""
    evaluator = Evaluator(schema or inst.schema, **evaluator_options)
    return evaluator.evaluate_formula(formula, inst, env, free_variable_types)
