"""Type checking and type inference for CALC formulas and queries.

The calculus is strongly typed: every term has a type, and atomic
formulas impose the obvious compatibility constraints (``=`` and ``sub``
relate same-typed terms, ``in`` relates ``T`` with ``{T}``, relation atoms
match their schema's column types).

Following the paper's footnote 6, we assume — and this checker enforces —
that *no variable symbol occurs both free and bound, or is bound by more
than one quantifier* (fixpoint columns count as binders).  This keeps the
variable-to-type assignment a flat map, which the evaluator and the
range-restriction analysis both rely on.

:func:`check_query` / :func:`check_formula` return a :class:`TypeReport`
with the resolved variable types, the set of types occurring in the
formula (the paper's "types of a formula"), and its ``<i,k>``-level —
the minimal ``i`` (set height) and ``k`` (tuple width) such that the
formula is in ``CALC_i^k``.

Error reporting
---------------

By default every violation raises :class:`TypeCheckError` immediately
(first-error abort).  Passing a list as ``collect`` switches the checker
into *collecting* mode: violations are appended as
:class:`TypeIssue` records, checking continues with best-effort
recovery (ill-typed terms get the :data:`UNKNOWN_TYPE` sentinel, which
suppresses cascade errors), and the partially resolved report is still
returned.  The ``repro.lint`` analyzer uses this to surface every type
error of a query in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from ..objects.schema import DatabaseSchema
from ..objects.types import SetType, TupleType, Type
from .syntax import (
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    Term,
    Var,
)


class TypeCheckError(Exception):
    """Raised when a formula or query is ill-typed."""


class _UnknownType(Type):
    """Sentinel for the type of an ill-typed term (collecting mode only).

    Unequal to every other type (including other references obtained via
    copying); never recorded in :attr:`TypeReport.types`, and every
    compatibility check involving it is skipped so that one error does
    not cascade into spurious follow-ups.
    """

    __slots__ = ()

    @property
    def set_height(self) -> int:
        return 0

    @property
    def tuple_width(self) -> int:
        return 0

    def subtypes(self):
        yield self

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash(_UnknownType)

    def __repr__(self) -> str:
        return "?"


#: The singleton unknown-type sentinel (see :class:`_UnknownType`).
UNKNOWN_TYPE: Type = _UnknownType()


class TypeIssue(NamedTuple):
    """One collected type violation.

    ``code`` is a stable diagnostic code (``TYP001``...); ``node`` is the
    offending AST node (term or formula) for source-span lookup.
    """

    code: str
    message: str
    node: object | None


@dataclass
class TypeReport:
    """Result of type checking.

    Attributes:
        variable_types: resolved type of every variable (free and bound).
        types: every type occurring in the formula (types of all terms,
            quantifier annotations and fixpoint columns).
        set_height: maximal set height among those types.
        tuple_width: maximal tuple width among those types.
        fixpoints: every fixpoint operator occurring in the formula.
    """

    variable_types: dict[str, Type] = field(default_factory=dict)
    types: set[Type] = field(default_factory=set)
    fixpoints: list[Fixpoint] = field(default_factory=list)

    @property
    def set_height(self) -> int:
        return max((t.set_height for t in self.types), default=0)

    @property
    def tuple_width(self) -> int:
        return max((t.tuple_width for t in self.types), default=0)

    def is_calc_ik(self, i: int, k: int) -> bool:
        """True iff every type of the formula is an ``<i,k>``-type."""
        return all(t.is_ik_type(i, k) for t in self.types)

    @property
    def level(self) -> tuple[int, int]:
        """The minimal ``(i, k)`` with the formula in ``CALC_i^k``."""
        return (self.set_height, self.tuple_width)


class _Checker:
    """Walks the formula with a binding environment.

    With ``collect=None`` (the default) the first violation raises
    :class:`TypeCheckError`; with a list, violations are appended as
    :class:`TypeIssue` records and checking continues.
    """

    def __init__(self, schema: DatabaseSchema | None,
                 collect: list[TypeIssue] | None = None):
        self.schema = schema
        self.collect = collect
        self.report = TypeReport()
        #: Relations bound by enclosing fixpoint operators: name -> column types.
        self.bound_relations: dict[str, tuple[Type, ...]] = {}
        #: Names bound (at least once) as fixpoint columns.
        self._column_bound: set[str] = set()
        #: Fixpoints already fully checked (dedupes repeated applications).
        self._checked_fixpoints: set = set()

    def _report(self, code: str, message: str, node: object = None) -> None:
        """Raise (default) or record (collecting mode) one violation."""
        if self.collect is None:
            raise TypeCheckError(message)
        self.collect.append(TypeIssue(code, message, node))

    # -- variables ---------------------------------------------------------
    #
    # Footnote 6 assumes no variable symbol is bound twice — with one
    # exception baked into the paper's own notation: the column variables
    # of a fixpoint are the free variables of its body, so expressions
    # like ``IFP(phi(S), S)(x, y)`` reuse the outer x, y.  We therefore
    # allow a fixpoint column to coincide with an already-bound variable
    # of the *same type* (semantically, the column is a fresh variable
    # shadowing it), and reject every other form of rebinding.

    def bind(self, name: str, typ: Type, *, binder: str,
             node: object = None) -> None:
        existing = self.report.variable_types.get(name)
        if existing is not None:
            is_column = binder.startswith("fixpoint")
            previous_was_column = name in self._column_bound
            if (is_column or previous_was_column) and existing == typ:
                if is_column:
                    self._column_bound.add(name)
                return
            # Recovery: keep the first binding (further uses check
            # against it rather than compounding the confusion).
            self._report(
                "TYP005",
                f"variable {name!r} bound more than once (by {binder}); "
                "rename apart (paper footnote 6)",
                node,
            )
            return
        if binder.startswith("fixpoint"):
            self._column_bound.add(name)
        self.report.variable_types[name] = typ
        self._note_type(typ)

    def lookup(self, var: Var) -> Type:
        typ = self.report.variable_types.get(var.name)
        if typ is None:
            self._report(
                "TYP004",
                f"cannot infer type of variable {var.name!r}: annotate it "
                "or bind it with a typed quantifier/head",
                var,
            )
            return UNKNOWN_TYPE
        if var.typ is not None and var.typ != typ:
            self._report(
                "TYP005",
                f"variable {var.name!r} annotated {var.typ!r} but bound as {typ!r}",
                var,
            )
            return UNKNOWN_TYPE
        return typ

    def _note_type(self, typ: Type) -> None:
        if typ is not UNKNOWN_TYPE:
            self.report.types.add(typ)

    # -- terms ---------------------------------------------------------------

    def term_type(self, term: Term) -> Type:
        if isinstance(term, Const):
            self._note_type(term.typ)
            return term.typ
        if isinstance(term, Var):
            if self.report.variable_types.get(term.name) is not None:
                return self.lookup(term)
            # Unbound variable with an annotation: treat as free, self-typed.
            if term.typ is not None:
                self.bind(term.name, term.typ, binder="annotation", node=term)
                return term.typ
            self._report("TYP004", f"untyped free variable {term.name!r}",
                         term)
            return UNKNOWN_TYPE
        if isinstance(term, Proj):
            base = self.term_type(term.base)
            if base is UNKNOWN_TYPE:
                return UNKNOWN_TYPE
            if not isinstance(base, TupleType):
                self._report(
                    "TYP007",
                    f"projection {term!r} applied to non-tuple type {base!r}",
                    term,
                )
                return UNKNOWN_TYPE
            if term.index > base.arity:
                self._report(
                    "TYP007",
                    f"projection index {term.index} exceeds arity {base.arity} "
                    f"of {term.base.name!r}",
                    term,
                )
                return UNKNOWN_TYPE
            result = base.component(term.index)
            self._note_type(result)
            return result
        if isinstance(term, FixpointTerm):
            self.check_fixpoint(term.fixpoint)
            self._note_type(term.typ)
            return term.typ
        raise TypeCheckError(f"unknown term {term!r}")

    # -- formulas --------------------------------------------------------------

    def check(self, formula: Formula) -> None:
        if isinstance(formula, Equals):
            left = self.term_type(formula.left)
            right = self.term_type(formula.right)
            if UNKNOWN_TYPE in (left, right):
                return
            if left != right:
                self._report(
                    "TYP006",
                    f"'=' relates distinct types {left!r} and {right!r} "
                    f"in {formula!r}",
                    formula,
                )
            return
        if isinstance(formula, Subset):
            left = self.term_type(formula.left)
            right = self.term_type(formula.right)
            if UNKNOWN_TYPE in (left, right):
                return
            if left != right or not isinstance(left, SetType):
                self._report(
                    "TYP006",
                    f"'sub' needs two equal set types, got {left!r} / {right!r}",
                    formula,
                )
            return
        if isinstance(formula, In):
            element = self.term_type(formula.element)
            container = self.term_type(formula.container)
            if UNKNOWN_TYPE in (element, container):
                return
            if not isinstance(container, SetType) or container.element != element:
                self._report(
                    "TYP006",
                    f"'in' needs element type {element!r} against container "
                    f"{{{element!r}}}, got {container!r}",
                    formula,
                )
            return
        if isinstance(formula, RelAtom):
            column_types = self._relation_columns(formula.name, formula)
            if column_types is None:
                # Unknown relation: still type the arguments so later
                # occurrences of their variables resolve.
                for arg in formula.args:
                    self.term_type(arg)
                return
            if len(formula.args) != len(column_types):
                self._report(
                    "TYP002",
                    f"relation {formula.name!r} has arity {len(column_types)}, "
                    f"got {len(formula.args)} arguments",
                    formula,
                )
            for arg, expected in zip(formula.args, column_types):
                actual = self.term_type(arg)
                if actual is UNKNOWN_TYPE:
                    continue
                if actual != expected:
                    self._report(
                        "TYP003",
                        f"argument {arg!r} of {formula.name!r} has type "
                        f"{actual!r}, expected {expected!r}",
                        formula,
                    )
            return
        if isinstance(formula, FixpointPred):
            self.check_fixpoint(formula.fixpoint)
            for arg, expected in zip(formula.args, formula.fixpoint.column_types):
                actual = self.term_type(arg)
                if actual is UNKNOWN_TYPE:
                    continue
                if actual != expected:
                    self._report(
                        "TYP009",
                        f"fixpoint argument {arg!r} has type {actual!r}, "
                        f"expected {expected!r}",
                        formula,
                    )
            return
        if isinstance(formula, Not):
            self.check(formula.operand)
            return
        if isinstance(formula, (And, Or)):
            for operand in formula.operands:
                self.check(operand)
            return
        if isinstance(formula, Implies):
            self.check(formula.antecedent)
            self.check(formula.consequent)
            return
        if isinstance(formula, Iff):
            self.check(formula.left)
            self.check(formula.right)
            return
        if isinstance(formula, (Exists, Forall)):
            assert formula.var.typ is not None
            self.bind(formula.var.name, formula.var.typ, binder="quantifier",
                      node=formula)
            self.check(formula.body)
            return
        raise TypeCheckError(f"unknown formula {formula!r}")

    def _relation_columns(
        self, name: str, context: Formula
    ) -> tuple[Type, ...] | None:
        if name in self.bound_relations:
            return self.bound_relations[name]
        if self.schema is not None and name in self.schema:
            return self.schema[name].column_types
        self._report(
            "TYP001",
            f"relation {name!r} in {context!r} is neither a database relation "
            "nor bound by an enclosing fixpoint",
            context,
        )
        return None

    def check_fixpoint(self, fixpoint: Fixpoint) -> None:
        if fixpoint in self._checked_fixpoints:
            # The same fixpoint expression may be applied several times
            # in one formula (e.g. square(x, y) and square(z, y));
            # re-checking would spuriously flag its bound variables.
            return
        if fixpoint.name in self.bound_relations:
            self._report(
                "TYP008",
                f"fixpoint relation {fixpoint.name!r} shadows an enclosing "
                "fixpoint relation; rename apart",
                fixpoint,
            )
        if self.schema is not None and fixpoint.name in self.schema:
            self._report(
                "TYP008",
                f"fixpoint relation {fixpoint.name!r} clashes with a database "
                "relation (Definition 3.1 requires S not in the schema)",
                fixpoint,
            )
        self.report.fixpoints.append(fixpoint)
        self._checked_fixpoints.add(fixpoint)
        for name, typ in fixpoint.columns:
            self.bind(name, typ, binder=f"fixpoint {fixpoint.name!r}",
                      node=fixpoint)
        previous = self.bound_relations.get(fixpoint.name)
        self.bound_relations[fixpoint.name] = fixpoint.column_types
        try:
            self.check(fixpoint.body)
        finally:
            if previous is None:
                del self.bound_relations[fixpoint.name]
            else:
                self.bound_relations[fixpoint.name] = previous


def check_formula(
    formula: Formula,
    schema: DatabaseSchema | None = None,
    free_variable_types: dict[str, Type] | None = None,
    collect: list[TypeIssue] | None = None,
) -> TypeReport:
    """Type check a formula against a database schema.

    ``free_variable_types`` supplies types for free variables (e.g. the
    head of a query).  Returns a :class:`TypeReport`; raises
    :class:`TypeCheckError` on any violation unless ``collect`` is a
    list, in which case every violation is appended to it instead and
    checking continues with best-effort recovery.
    """
    checker = _Checker(schema, collect=collect)
    for name, typ in (free_variable_types or {}).items():
        checker.bind(name, typ, binder="free-variable declaration")
    checker.check(formula)
    return checker.report


def check_query(
    query: Query,
    schema: DatabaseSchema | None = None,
    collect: list[TypeIssue] | None = None,
) -> TypeReport:
    """Type check a query: head types feed the body's free variables."""
    if not isinstance(query, Query):
        raise TypeCheckError(f"expected Query, got {query!r}")
    return check_formula(
        query.body, schema, free_variable_types=dict(query.head),
        collect=collect,
    )


def formula_level(
    formula: Formula,
    schema: DatabaseSchema | None = None,
    free_variable_types: dict[str, Type] | None = None,
) -> tuple[int, int]:
    """The minimal ``(i, k)`` with the formula in ``CALC_i^k``."""
    return check_formula(formula, schema, free_variable_types).level


def query_level(query: Query, schema: DatabaseSchema | None = None) -> tuple[int, int]:
    """The minimal ``(i, k)`` with the query in ``CALC_i^k``."""
    return check_query(query, schema).level


def assert_calc_ik(
    query: Query, schema: DatabaseSchema, i: int, k: int
) -> TypeReport:
    """Check that a query is a ``CALC_i^k`` query over the given schema.

    Per Section 3, this also requires the input schema itself to be an
    ``<i,k>``-database schema.
    """
    if not schema.is_ik_schema(i, k):
        raise TypeCheckError(f"schema is not an <{i},{k}>-database schema")
    report = check_query(query, schema)
    if not report.is_calc_ik(i, k):
        offending = sorted(
            repr(t) for t in report.types if not t.is_ik_type(i, k)
        )
        raise TypeCheckError(
            f"query uses types beyond <{i},{k}>: {offending}"
        )
    return report
