"""Safe evaluation via range functions (Section 5).

Definition 5.1: a query is *C-safe* if some range function computable in
C restricts every variable without changing the answer.  Theorem 5.1
shows that range-restricted queries are LOGSPACE/PTIME/PSPACE-safe for
CALC / CALC+IFP / CALC+PFP respectively, by constructing the range
functions from the range-restriction derivation.

:func:`evaluate_range_restricted` is that construction end-to-end: it
derives the ranges (:func:`repro.core.range_restriction.compute_ranges`)
and evaluates the query under the restricted-domain semantics, which for
RR queries equals the active-domain answer — in time polynomial in the
instance rather than in the (hyperexponential) domains.

:func:`verify_safety` witnesses Definition 5.1 empirically: it runs both
interpretations on a (small) instance and checks they agree; the test
suite uses it across the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import get_tracer
from ..objects.instance import Instance
from ..objects.schema import DatabaseSchema
from ..objects.values import CTuple, Value
from .evaluation import Evaluator
from .range_restriction import analyze_query, compute_ranges
from .syntax import Query

__all__ = [
    "SafeEvaluationReport",
    "evaluate_range_restricted",
    "verify_safety",
]


@dataclass
class SafeEvaluationReport:
    """Outcome of a range-restricted evaluation.

    Attributes:
        answer: the query answer (set of head tuples).
        ranges: the derived range per variable (the range function's value
            on this instance).
        range_sizes: per-variable range cardinalities (a PTIME witness:
            each is polynomial in the instance).
    """

    answer: frozenset[CTuple]
    ranges: dict[str, set[Value]]

    @property
    def range_sizes(self) -> dict[str, int]:
        return {name: len(values) for name, values in self.ranges.items()}


def evaluate_range_restricted(
    query: Query,
    inst: Instance,
    schema: DatabaseSchema | None = None,
    exempt_types=frozenset(),
    *,
    intern: bool = False,
    **evaluator_options,
) -> SafeEvaluationReport:
    """Evaluate a range-restricted query via derived range functions.

    ``exempt_types`` enables Theorem 5.3's mixed discipline: variables of
    those (dense, non-trivial) types are exempt from range restriction
    and range over their full domains instead.

    ``intern=True`` runs the restricted evaluation over the interned
    kernel (:class:`repro.core.evaluation.Evaluator` with ``intern``):
    the derived ranges are computed over plain values as always and
    id-encoded inside the evaluator, so the report's ``ranges`` keep
    their object form while the hot evaluation compares dense ids.

    Raises :class:`RangeComputationError` if the query fails the
    Definition 5.2/5.3 analysis.
    """
    schema = schema or inst.schema
    tracer = get_tracer()
    with tracer.span("range_restricted", intern=intern) as span:
        ranges = compute_ranges(query, inst, schema,
                                exempt_types=exempt_types)
        if tracer.enabled:
            for name in sorted(ranges):
                size = len(ranges[name])
                tracer.event("range", var=name, size=size)
                tracer.gauge(f"range[{name}]", size)
                tracer.observe("space.range_size", size)
                tracer.gauge_max("space.peak_range", size)
            tracer.count("space.range_values",
                         sum(len(values) for values in ranges.values()))
            tracer.count("rr.evaluations")
        evaluator = Evaluator(schema, variable_ranges=ranges,
                              intern=intern, **evaluator_options)
        answer = evaluator.evaluate(query, inst)
        span.set(rows=len(answer))
    return SafeEvaluationReport(answer=answer, ranges=ranges)


def verify_safety(
    query: Query,
    inst: Instance,
    schema: DatabaseSchema | None = None,
    max_domain_size: int = 100_000,
) -> bool:
    """Check Definition 5.1 empirically on one instance.

    Evaluates the query under both the derived-range restricted semantics
    and the active-domain semantics and compares.  Only feasible when the
    active domains are small enough to materialise (``max_domain_size``).
    """
    schema = schema or inst.schema
    restricted = evaluate_range_restricted(query, inst, schema).answer
    active = Evaluator(schema, max_domain_size=max_domain_size).evaluate(
        query, inst
    )
    return restricted == active


def safety_diagnostics(query: Query, schema: DatabaseSchema) -> list[str]:
    """Human-readable reasons a query fails the RR analysis (empty if RR)."""
    return list(analyze_query(query, schema).violations)
