"""Fixpoint iteration engines (Definition 3.1).

The two operators differ only in how the stage formula is iterated:

* **IFP** (inflationary): ``J_0 = {}``, ``J_i = phi(J_{i-1}) ∪ J_{i-1}``.
  The sequence is increasing over a finite space, so it always converges;
  the limit is reached after at most ``|space|`` stages.
* **PFP** (partial): ``J_0 = {}``, ``J_i = phi(J_{i-1})``.  The sequence
  converges iff it reaches an actual fixed point; otherwise it enters a
  cycle of period > 1 and the fixpoint is *undefined* — signalled here by
  :class:`PFPDivergenceError`.

These engines are generic over the stage function (a callable from a
frozenset of rows to a frozenset of rows); the calculus evaluator, the
Datalog engine and the TM simulation all drive them.

Two stage protocols are supported:

* the **naive** protocol — ``stage(current)`` recomputes ``phi(current)``
  from scratch (:func:`iterate_ifp`, :func:`iterate_pfp`);
* the **delta** protocol — ``stage(current, delta)`` additionally
  receives the rows derived for the first time at the previous stage
  (:func:`iterate_ifp_delta`), so a semi-naive stage function can
  restrict its work to derivations a fresh row can enable.  The engine
  unions the returned rows into ``current`` itself and stops when a
  stage contributes nothing new; the sequence of states ``J_i`` (and
  hence the stage count) is identical to the naive engine's.

Both engines report per-stage progress to the active
:mod:`repro.obs` tracer: IFP stages carry the stage number, the current
size and the delta vs the previous stage; PFP stages additionally carry
the size of the state history kept for cycle detection.  ``max_stages``
bounds the number of *stage-function applications*: with
``max_stages=n`` at most ``n`` applications run before
:class:`FixpointError` is raised.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, Sequence, Tuple

from ..obs import NullTracer, Tracer, get_tracer

Row = Tuple  # a tuple of values
Rows = FrozenSet[Row]
StageFn = Callable[[Rows], Rows]
#: Delta protocol: ``stage(current, delta)`` returns the rows derived at
#: this stage (the engine unions them into ``current``).
DeltaStageFn = Callable[[Rows, Rows], Rows]


class FixpointError(Exception):
    """Raised when a fixpoint iteration cannot complete."""


class PFPDivergenceError(FixpointError):
    """Raised when a PFP iteration cycles without reaching a fixed point.

    Carries the cycle's period and the stage at which the repetition was
    detected, for diagnostics.
    """

    def __init__(self, period: int, stage: int):
        super().__init__(
            f"PFP iteration entered a cycle of period {period} at stage {stage}; "
            "the partial fixpoint is undefined"
        )
        self.period = period
        self.stage = stage


def iterate_ifp(
    stage: StageFn,
    max_stages: int | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> Rows:
    """Run an inflationary fixpoint to convergence.

    ``stage(J)`` computes ``phi(J)``; the engine adds the union with J.
    ``max_stages`` guards against runaway stage functions (the theory
    guarantees convergence, but a buggy stage function might not shrink):
    at most ``max_stages`` stage applications run before
    :class:`FixpointError`.
    """
    if tracer is None:
        tracer = get_tracer()
    current: Rows = frozenset()
    count = 0
    while True:
        tracer.heartbeat()
        new = frozenset(stage(current)) | current
        count += 1
        if tracer.enabled:
            tracer.event("ifp.stage", stage=count, size=len(new),
                         delta=len(new) - len(current))
            tracer.count("ifp.stages")
            tracer.observe("space.ifp.stage_rows", len(new))
            tracer.gauge_max("space.peak_fixpoint_rows", len(new))
        if new == current:
            return current
        current = new
        if max_stages is not None and count >= max_stages:
            raise FixpointError(
                f"IFP did not converge within {max_stages} stages"
            )


def iterate_ifp_delta(
    stage: DeltaStageFn,
    max_stages: int | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> Rows:
    """Run an inflationary fixpoint with the delta stage protocol.

    ``stage(current, delta)`` computes the rows derived at this stage,
    where ``delta`` holds the rows that entered the fixpoint at the
    previous stage (empty on the first call, when ``current`` is empty
    too).  The engine unions the result into ``current`` and stops at
    the first stage that contributes no new row.

    The state sequence ``J_0 = {}``, ``J_i = stage(J_{i-1}, Δ_{i-1}) ∪
    J_{i-1}`` equals the naive engine's whenever the stage function is a
    semi-naive rewriting of a naive ``phi`` (i.e. returns at least every
    row of ``phi(J_{i-1})`` not already in ``J_{i-1}``), so stage counts
    and results are directly comparable between the two protocols.
    """
    if tracer is None:
        tracer = get_tracer()
    current: Rows = frozenset()
    delta: Rows = frozenset()
    count = 0
    while True:
        tracer.heartbeat()
        derived = frozenset(stage(current, delta))
        count += 1
        fresh = derived - current
        if tracer.enabled:
            tracer.event("ifp.stage", stage=count,
                         size=len(current) + len(fresh), delta=len(fresh))
            tracer.count("ifp.stages")
            tracer.observe("space.ifp.stage_rows", len(current) + len(fresh))
            tracer.gauge_max("space.peak_fixpoint_rows",
                             len(current) + len(fresh))
        if not fresh:
            return current
        current = current | fresh
        delta = fresh
        if max_stages is not None and count >= max_stages:
            raise FixpointError(
                f"IFP did not converge within {max_stages} stages"
            )


def iterate_pfp(
    stage: StageFn,
    max_stages: int | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> Rows:
    """Run a partial fixpoint; raise :class:`PFPDivergenceError` on cycles.

    The space of states is finite, so the sequence eventually repeats;
    we record every state seen and report the period when a repeat that
    is not a fixed point occurs.
    """
    if tracer is None:
        tracer = get_tracer()
    current: Rows = frozenset()
    seen: dict[Rows, int] = {current: 0}
    count = 0
    history_rows = 0
    while True:
        tracer.heartbeat()
        new = frozenset(stage(current))
        count += 1
        history_rows += len(new)
        if tracer.enabled:
            tracer.event("pfp.stage", stage=count, size=len(new),
                         history=len(seen))
            tracer.count("pfp.stages")
            tracer.observe("space.pfp.stage_rows", len(new))
            tracer.gauge_max("space.peak_fixpoint_rows", len(new))
            tracer.gauge_max("space.pfp.history_rows", history_rows)
        if new == current:
            return current
        if new in seen:
            raise PFPDivergenceError(period=count - seen[new], stage=count)
        seen[new] = count
        current = new
        if max_stages is not None and count >= max_stages:
            raise FixpointError(
                f"PFP did not converge within {max_stages} stages"
            )


class IndexPool:
    """Lazy hash indexes over row sets, keyed on bound positions.

    ``probe(source_key, rows, positions, key)`` returns the rows whose
    projection onto ``positions`` equals ``key``, building the index
    ``{projection: [rows]}`` for ``(source_key, positions)`` on first
    use.  The interned engines keep one *persistent* pool for the
    immutable EDB tables and a *fresh* pool per delta stage for the
    mutating IDB/delta views — constructing a new pool is how an index
    over a changed row set is invalidated, so a pool must never outlive
    the row sets its ``source_key``s name.

    Every build bumps the ``eval.index_builds`` counter and every lookup
    ``eval.index_probes``, making the scan-vs-probe tradeoff visible to
    the bench observatory.
    """

    __slots__ = ("_indexes", "_tracer")

    _EMPTY: Tuple = ()

    def __init__(self, tracer: Tracer | NullTracer | None = None):
        self._indexes: dict[tuple, dict] = {}
        self._tracer = get_tracer() if tracer is None else tracer

    def probe(
        self,
        source_key: str,
        rows: Iterable[Row],
        positions: Tuple[int, ...],
        key: Tuple,
    ) -> Sequence[Row]:
        """Rows of ``rows`` matching ``key`` on ``positions``.

        ``rows`` must be the same collection on every probe for a given
        ``source_key`` (the index is built from the first one seen).
        """
        index_key = (source_key, positions)
        index = self._indexes.get(index_key)
        if index is None:
            index = {}
            for row in rows:
                projection = tuple(row[p] for p in positions)
                bucket = index.get(projection)
                if bucket is None:
                    index[projection] = [row]
                else:
                    bucket.append(row)
            self._indexes[index_key] = index
            if self._tracer.enabled:
                self._tracer.count("eval.index_builds")
        if self._tracer.enabled:
            self._tracer.count("eval.index_probes")
        return index.get(key, self._EMPTY)


def ifp_stages(stage: StageFn) -> Iterator[Rows]:
    """Yield the successive stages ``J_0, J_1, ...`` of an IFP iteration,
    ending with the limit (yielded once)."""
    current: Rows = frozenset()
    yield current
    while True:
        new = frozenset(stage(current)) | current
        if new == current:
            return
        current = new
        yield current


def ifp_delta_stages(stage: DeltaStageFn) -> Iterator[Rows]:
    """Yield the successive stages of a delta-protocol IFP iteration,
    mirroring :func:`ifp_stages` (same states, same count)."""
    current: Rows = frozenset()
    delta: Rows = frozenset()
    yield current
    while True:
        fresh = frozenset(stage(current, delta)) - current
        if not fresh:
            return
        current = current | fresh
        delta = fresh
        yield current


def pfp_stages(stage: StageFn, max_stages: int | None = None) -> Iterator[Rows]:
    """Yield successive PFP stages; stops at the fixed point or raises on
    a cycle (after yielding the states on the way).  ``max_stages``
    bounds stage applications exactly like :func:`iterate_pfp`."""
    current: Rows = frozenset()
    seen: dict[Rows, int] = {current: 0}
    yield current
    count = 0
    while True:
        new = frozenset(stage(current))
        count += 1
        if new == current:
            return
        if new in seen:
            raise PFPDivergenceError(period=count - seen[new], stage=count)
        seen[new] = count
        current = new
        yield current
        if max_stages is not None and count >= max_stages:
            raise FixpointError(f"PFP exceeded {max_stages} stages")
