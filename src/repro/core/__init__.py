"""The paper's primary contribution: CALC_i^k and its fixpoint extensions.

* :mod:`repro.core.syntax` — AST of CALC / CALC+IFP / CALC+PFP;
* :mod:`repro.core.builder` — Python DSL for constructing formulas;
* :mod:`repro.core.parser` — textual syntax;
* :mod:`repro.core.typecheck` — type inference and ``<i,k>``-level;
* :mod:`repro.core.evaluation` — active-domain and restricted-domain
  evaluation (Section 3);
* :mod:`repro.core.fixpoint` — IFP/PFP iteration engines (Definition 3.1);
* :mod:`repro.core.range_restriction` — Definitions 5.2/5.3 and the range
  functions of Theorem 5.1;
* :mod:`repro.core.safety` — C-safe evaluation (Definition 5.1).
"""

from .syntax import (
    IFP,
    PFP,
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    SyntaxError_,
    Term,
    Var,
    constants_of,
    relation_names_of,
)
from .builder import C, V, eq, exists, forall, ifp, member, pfp, proj, query, rel, subset
from .format import format_formula, format_query, format_term, format_value
from .order_formulas import (
    ORDER_RELATION,
    less_than_formula,
    max_diff_formula,
    order_schema,
    pair_in,
    total_order_formula,
    with_order_relation,
)
from .parser import (
    ParseError,
    SourceMap,
    Span,
    parse_formula,
    parse_formula_with_source,
    parse_query,
    parse_query_with_source,
    parse_term,
)
from .typecheck import (
    TypeCheckError,
    TypeReport,
    assert_calc_ik,
    check_formula,
    check_query,
    formula_level,
    query_level,
)
from .evaluation import (
    STRATEGIES,
    EvalError,
    Evaluator,
    active_atoms,
    evaluate,
    evaluate_formula,
)
from .fixpoint import (
    FixpointError,
    IndexPool,
    PFPDivergenceError,
    ifp_stages,
    iterate_ifp,
    iterate_pfp,
    pfp_stages,
)
from .range_restriction import (
    Path,
    RangeComputationError,
    RRResult,
    RRViolation,
    RuleCitation,
    analyze,
    analyze_query,
    compute_ranges,
    is_range_restricted,
    negate,
    nnf,
)
from .while_lang import (
    Assign,
    WhileChange,
    WhileError,
    WhileProgram,
    run_program,
)
from .safety import (
    SafeEvaluationReport,
    evaluate_range_restricted,
    safety_diagnostics,
    verify_safety,
)

__all__ = [
    # syntax
    "IFP", "PFP", "And", "Const", "Equals", "Exists", "Fixpoint",
    "FixpointPred", "FixpointTerm", "Forall", "Formula", "Iff", "Implies",
    "In", "Not", "Or", "Proj", "Query", "RelAtom", "Subset", "SyntaxError_",
    "Term", "Var", "constants_of", "relation_names_of",
    # builder
    "C", "V", "eq", "exists", "forall", "ifp", "member", "pfp", "proj",
    "query", "rel", "subset",
    # parser / formatter / orders
    "ParseError", "SourceMap", "Span", "parse_formula",
    "parse_formula_with_source", "parse_query", "parse_query_with_source",
    "parse_term",
    "format_formula", "format_query", "format_term", "format_value",
    "ORDER_RELATION", "less_than_formula", "max_diff_formula",
    "order_schema", "pair_in", "total_order_formula", "with_order_relation",
    # typecheck
    "TypeCheckError", "TypeReport", "assert_calc_ik", "check_formula",
    "check_query", "formula_level", "query_level",
    # evaluation
    "STRATEGIES", "EvalError", "Evaluator", "active_atoms", "evaluate",
    "evaluate_formula",
    # fixpoint
    "FixpointError", "IndexPool", "PFPDivergenceError", "ifp_stages",
    "iterate_ifp", "iterate_pfp", "pfp_stages",
    # range restriction
    "Path", "RRViolation", "RangeComputationError", "RRResult",
    "RuleCitation", "analyze", "analyze_query",
    "compute_ranges", "is_range_restricted", "negate", "nnf",
    # safety
    "SafeEvaluationReport", "evaluate_range_restricted",
    "safety_diagnostics", "verify_safety",
    # while language
    "Assign", "WhileChange", "WhileError", "WhileProgram", "run_program",
]
