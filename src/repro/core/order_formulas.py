"""CALC formulas defining the induced orders ``<_T`` (Lemma 4.3).

Given an order ``<_U`` on the atomic constants — provided as a binary
database relation (conventionally named ``LTU``) — Lemma 4.3 constructs,
for every ``<i,k>``-type T, a ``CALC_i^k`` formula defining the induced
order ``<_T`` on ``dom(T, D)`` of Definition 4.2:

* tuples: lexicographic — a disjunction over the first differing
  component;
* sets: ``x <_T y`` iff ``x != y`` and either ``x - y`` is empty or both
  differences are non-empty and ``max(x - y) <_S max(y - x)``, where the
  maxima are characterised by a universally quantified sub-formula
  (the proof's ``Max`` predicate).

:func:`less_than_formula` returns a *formula builder* — a function from
two terms of type T to the comparison formula — so the recursion can
compare tuple components (projection terms) in place.  The tests check
the generated formulas against the native comparator
:func:`repro.objects.ordering.compare` on entire small domains, and the
Theorem 5.2 machinery (ordered inputs) reuses the same ``LTU``
convention via :func:`with_order_relation`.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..objects.instance import Instance
from ..objects.ordering import AtomOrder
from ..objects.schema import DatabaseSchema, RelationSchema
from ..objects.types import AtomType, SetType, TupleType, Type
from .syntax import (
    And,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    In,
    Not,
    Or,
    Proj,
    RelAtom,
    Term,
    Var,
)

__all__ = [
    "ORDER_RELATION",
    "less_than_formula",
    "max_diff_formula",
    "pair_in",
    "total_order_formula",
    "with_order_relation",
    "order_schema",
]

#: Conventional name of the atom-order relation ``<_U``.
ORDER_RELATION = "LTU"

TermBuilder = Callable[[Term, Term], Formula]


class _FreshNames:
    """Generates fresh variable names (rename-apart discipline)."""

    def __init__(self, prefix: str = "_o"):
        self.prefix = prefix
        self.counter = itertools.count(1)

    def var(self, typ: Type) -> Var:
        return Var(f"{self.prefix}{next(self.counter)}", typ)


def less_than_formula(
    typ: Type,
    order_relation: str = ORDER_RELATION,
    _fresh: _FreshNames | None = None,
) -> TermBuilder:
    """A builder ``(x, y) -> formula`` for the strict order ``x <_T y``.

    The returned formulas are plain CALC (no fixpoints) over the input
    schema extended with the binary atom-order relation.
    """
    fresh = _fresh or _FreshNames()

    if isinstance(typ, AtomType):
        def atom_lt(x: Term, y: Term) -> Formula:
            return RelAtom(order_relation, (x, y))

        return atom_lt

    if isinstance(typ, TupleType):
        component_lt = [
            less_than_formula(comp, order_relation, fresh)
            for comp in typ.components
        ]

        def tuple_lt(x: Term, y: Term) -> Formula:
            if not isinstance(x, Var) or not isinstance(y, Var):
                raise ValueError(
                    "tuple comparison requires variable terms (projections "
                    "x.i only apply to variables); bind components first"
                )
            disjuncts: list[Formula] = []
            for index in range(1, typ.arity + 1):
                conjuncts: list[Formula] = [
                    Equals(Proj(x, j), Proj(y, j)) for j in range(1, index)
                ]
                conjuncts.append(
                    component_lt[index - 1](Proj(x, index), Proj(y, index))
                )
                disjuncts.append(
                    conjuncts[0] if len(conjuncts) == 1 else And(conjuncts)
                )
            return disjuncts[0] if len(disjuncts) == 1 else Or(disjuncts)

        return tuple_lt

    if isinstance(typ, SetType):
        element_type = typ.element
        element_lt = less_than_formula(element_type, order_relation, fresh)

        def set_lt(x: Term, y: Term) -> Formula:
            z = fresh.var(element_type)
            z2 = fresh.var(element_type)
            not_equal = Not(Equals(x, y))
            x_minus_y_empty = _subset_formula(x, y, element_type, fresh)
            both_maxima = Exists(z, Exists(z2, And((
                max_diff_formula(x, y, z, element_type, element_lt, fresh),
                max_diff_formula(y, x, z2, element_type, element_lt, fresh),
                element_lt(z, z2),
            ))))
            return And((not_equal, Or((x_minus_y_empty, both_maxima))))

        return set_lt

    raise TypeError(f"unknown type {typ!r}")


def _subset_formula(x: Term, y: Term, element_type: Type,
                    fresh: _FreshNames) -> Formula:
    """``x sub y`` spelled with a quantifier (avoids the sub primitive so
    the construction matches the proof's vocabulary)."""
    w = fresh.var(element_type)
    return Forall(w, Implies(In(w, x), In(w, y)))


def max_diff_formula(
    x: Term,
    y: Term,
    z: Var,
    element_type: Type,
    element_lt: TermBuilder,
    fresh: _FreshNames,
) -> Formula:
    """The proof's ``Max_{<S}(x - y, z)``: z is the ``<_S``-maximum of x - y.

    ``z in x``, ``z not in y``, and every other member of the difference
    is ``<_S z`` or equal to it.
    """
    w = fresh.var(element_type)
    return And((
        In(z, x),
        Not(In(z, y)),
        Forall(w, Implies(
            And((In(w, x), Not(In(w, y)))),
            Or((element_lt(w, z), Equals(w, z))),
        )),
    ))


def pair_in(container: Term, left: Term, right: Term,
            fresh: "_FreshNames | None" = None) -> Formula:
    """``[left, right] in container`` for a ``{[U,U]}``-typed container.

    The term language has no tuple constructor (the paper's doesn't
    either), so the membership is spelled with an existential pair
    variable: ``exists p:[U,U] (p in container and p.1 = left and
    p.2 = right)``.
    """
    from ..objects.types import TupleType, U as AtomU

    fresh = fresh or _FreshNames("_p")
    p = fresh.var(TupleType((AtomU, AtomU)))
    return Exists(p, And((
        In(p, container),
        Equals(Proj(p, 1), left),
        Equals(Proj(p, 2), right),
    )))


def total_order_formula(
    order_var: Var,
    fresh: "_FreshNames | None" = None,
    guard: "Callable[[Var], Formula] | None" = None,
) -> Formula:
    """The proof of Theorem 4.1's ``order(<_U)``: the ``{[U,U]}``-typed
    value of ``order_var`` holds a strict total order on ``dom(U)``.

    Irreflexive, totally comparable, and transitive.  (The formula
    printed in the paper reads ``x <_U x`` where it plainly means its
    negation — we implement the intended strict order.)

    This is the formula that lets dense databases *postulate* an order
    instead of being handed one: ``exists ord ( order(ord) and psi(ord) )``.

    ``guard`` optionally relativises the quantified atom variables (e.g.
    ``lambda v: RelAtom("P", (v,))``): the value then need only order
    the guarded atoms.  Theorem 5.3's RR_T discipline requires such
    guards — every variable *not* of the dense type must be range
    restricted, and a database guard is what restricts them.
    """
    from ..objects.types import U as AtomU

    fresh = fresh or _FreshNames("_q")
    x = fresh.var(AtomU)
    y = fresh.var(AtomU)
    z = fresh.var(AtomU)
    irreflexive = Not(pair_in(order_var, x, x, fresh))
    total = Implies(Not(Equals(x, y)),
                    Or((pair_in(order_var, x, y, fresh),
                        pair_in(order_var, y, x, fresh))))
    transitive = Implies(And((pair_in(order_var, x, y, fresh),
                              pair_in(order_var, y, z, fresh))),
                         pair_in(order_var, x, z, fresh))
    body: Formula = And((irreflexive, total, transitive))
    if guard is not None:
        body = Implies(And((guard(x), guard(y), guard(z))), body)
    return Forall(x, Forall(y, Forall(z, body)))


def order_schema(schema: DatabaseSchema,
                 order_relation: str = ORDER_RELATION) -> DatabaseSchema:
    """The schema extended with the binary atom-order relation."""
    relations = list(schema)
    relations.append(RelationSchema(order_relation, ("U", "U")))
    return DatabaseSchema(relations)


def with_order_relation(
    inst: Instance,
    order: AtomOrder | None = None,
    order_relation: str = ORDER_RELATION,
) -> Instance:
    """Extend an instance with ``LTU`` holding the strict order ``<_U``.

    This is the paper's "+ <_U" construction (ordered inputs,
    Theorem 5.2).  If no order is supplied, the canonical label order on
    ``atom(I)`` is used.
    """
    order = order or AtomOrder.sorted_by_label(inst.atoms())
    pairs = [
        (a, b)
        for position, a in enumerate(order.atoms)
        for b in order.atoms[position + 1:]
    ]
    schema = order_schema(inst.schema, order_relation)
    data = {rel.name: list(rel.tuples) for rel in inst.relations()}
    data[order_relation] = pairs
    return Instance(schema, data)
