"""Abstract syntax of CALC, CALC+IFP and CALC+PFP (Section 3).

The calculus is a strongly typed extension of first-order logic over
complex object types:

* **terms** — complex object constants, typed variables, projections
  ``x.i`` of tuple-typed variables, and fixpoint *terms*
  ``IFP(phi(S), S)`` (Definition 3.1 allows a fixpoint to be used as a
  term denoting the set of tuples in the fixpoint relation);
* **atomic formulas** — ``t1 = t2``, ``t1 in t2``, ``t1 sub t2`` and
  ``R(t1, ..., tn)`` for database or fixpoint-bound relation names, plus
  fixpoint *predicates* ``IFP(phi(S), S)(t1, ..., tn)``;
* **formulas** — closed under ``not, and, or, ->, <->`` and typed
  quantifiers ``exists x:T`` / ``forall x:T``;
* **queries** — ``{[x1:T1, ..., xk:Tk] | phi}`` mapping instances of an
  input schema to a single output relation.

Nodes are immutable and hashable.  The :mod:`repro.core.builder` module
provides an ergonomic way to construct them; :mod:`repro.core.parser`
parses a textual syntax.

Design notes
------------

A :class:`Fixpoint` declares its *column variables* explicitly (name and
type per column, mirroring the paper's "free variables x1:T1 .. xn:Tn of
phi(S)").  Any other free variables of the body act as **parameters**
bound in the enclosing scope — the paper's Example 5.3 relies on this
(``s = IFP((P(x, y) or Q(y)), Q)`` computes, for each outer ``x``, the set
of ``y`` with ``P(x, y)``).  Following footnote 2, applying a fixpoint to
arbitrary argument terms (not just its own column variables) is allowed
and does not change expressive power.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..objects.types import SetType, TupleType, Type, TypeLike, as_type
from ..objects.values import Value, make_value


class SyntaxError_(Exception):
    """Raised for malformed calculus expressions."""


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

class Term:
    """Abstract base class for terms."""

    __slots__ = ()

    def variables(self) -> Iterator["Var"]:
        """Yield variable occurrences in this term."""
        raise NotImplementedError

    def walk_terms(self) -> Iterator["Term"]:
        """Yield this term and all subterms."""
        yield self


class Const(Term):
    """A complex object constant of a given type."""

    __slots__ = ("value", "typ")

    def __init__(self, value: object, typ: TypeLike | None = None):
        value = make_value(value)
        if typ is None:
            typ_ = value.infer_type()
        else:
            typ_ = as_type(typ)
            if not value.conforms_to(typ_):
                raise SyntaxError_(f"constant {value!r} not of type {typ_!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "typ", typ_)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Const is immutable")

    def variables(self) -> Iterator["Var"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Const) and self.value == other.value
                and self.typ == other.typ)

    def __hash__(self) -> int:
        return hash((Const, self.value, self.typ))

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Var(Term):
    """A typed variable.

    The type may be ``None`` during construction and filled in by the
    type checker (types of variables are inferable from context, per the
    paper); most entry points annotate explicitly.
    """

    __slots__ = ("name", "typ")

    def __init__(self, name: str, typ: TypeLike | None = None):
        if not name or not isinstance(name, str):
            raise SyntaxError_(f"variable name must be a non-empty string: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "typ", as_type(typ) if typ is not None else None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Var is immutable")

    def with_type(self, typ: Type) -> "Var":
        return Var(self.name, typ)

    def variables(self) -> Iterator["Var"]:
        yield self

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Var) and self.name == other.name
                and self.typ == other.typ)

    def __hash__(self) -> int:
        return hash((Var, self.name, self.typ))

    def __repr__(self) -> str:
        if self.typ is None:
            return f"Var({self.name!r})"
        return f"Var({self.name!r}:{self.typ!r})"


class Proj(Term):
    """Projection ``x.i`` (1-indexed) of a tuple-typed variable."""

    __slots__ = ("base", "index")

    def __init__(self, base: Var, index: int):
        if not isinstance(base, Var):
            raise SyntaxError_(
                f"projections apply to variables, got {base!r}"
            )
        if not isinstance(index, int) or index < 1:
            raise SyntaxError_(f"projection index must be >= 1: {index!r}")
        if base.typ is not None:
            if not isinstance(base.typ, TupleType):
                raise SyntaxError_(
                    f"cannot project non-tuple variable {base!r}"
                )
            if index > base.typ.arity:
                raise SyntaxError_(
                    f"projection index {index} exceeds arity {base.typ.arity}"
                )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "index", index)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Proj is immutable")

    @property
    def typ(self) -> Type | None:
        if self.base.typ is None:
            return None
        assert isinstance(self.base.typ, TupleType)
        return self.base.typ.component(self.index)

    def variables(self) -> Iterator[Var]:
        yield self.base

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Proj) and self.base == other.base
                and self.index == other.index)

    def __hash__(self) -> int:
        return hash((Proj, self.base, self.index))

    def __repr__(self) -> str:
        return f"{self.base.name}.{self.index}"


class FixpointTerm(Term):
    """A fixpoint used as a term: denotes the set of tuples of the
    computed fixpoint relation, of type ``{[T1, ..., Tn]}``."""

    __slots__ = ("fixpoint",)

    def __init__(self, fixpoint: "Fixpoint"):
        if not isinstance(fixpoint, Fixpoint):
            raise SyntaxError_(f"expected Fixpoint, got {fixpoint!r}")
        object.__setattr__(self, "fixpoint", fixpoint)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FixpointTerm is immutable")

    @property
    def typ(self) -> Type:
        # A unary fixpoint denotes a set of *values*, not of 1-tuples —
        # the paper's Example 5.3 equates s:{U} with a unary IFP term.
        if self.fixpoint.arity == 1:
            return SetType(self.fixpoint.column_types[0])
        return SetType(TupleType(self.fixpoint.column_types))

    def variables(self) -> Iterator[Var]:
        # Parameters of the fixpoint body (column vars are bound inside).
        yield from self.fixpoint.parameters()

    def walk_terms(self) -> Iterator[Term]:
        yield self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FixpointTerm) and self.fixpoint == other.fixpoint

    def __hash__(self) -> int:
        return hash((FixpointTerm, self.fixpoint))

    def __repr__(self) -> str:
        return f"term({self.fixpoint!r})"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------

class Formula:
    """Abstract base class for formulas."""

    __slots__ = ()

    def children(self) -> tuple["Formula", ...]:
        """Immediate subformulas."""
        return ()

    def terms(self) -> tuple[Term, ...]:
        """Terms occurring directly in this node."""
        return ()

    def free_variables(self) -> frozenset[str]:
        """Names of free variables of the formula.

        Fixpoint column variables are bound inside fixpoint bodies;
        quantifiers bind their variable.
        """
        raise NotImplementedError

    def walk(self) -> Iterator["Formula"]:
        """Yield this formula and all subformulas, pre-order.

        Descends into fixpoint bodies.
        """
        yield self
        for child in self.children():
            yield from child.walk()
        for term in self.terms():
            if isinstance(term, FixpointTerm):
                yield from term.fixpoint.body.walk()

    # Connective sugar so formulas compose pleasantly in Python:
    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Formula") -> "Implies":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Iff":
        return Iff(self, other)


def _check_term(term: object) -> Term:
    if isinstance(term, Term):
        return term
    # Auto-lift raw Python values to constants.
    try:
        return Const(term)
    except Exception as exc:  # noqa: BLE001 - report as syntax error
        raise SyntaxError_(f"expected a term, got {term!r}") from exc


class Equals(Formula):
    """``t1 = t2`` (both sides the same type)."""

    __slots__ = ("left", "right")

    def __init__(self, left: object, right: object):
        object.__setattr__(self, "left", _check_term(left))
        object.__setattr__(self, "right", _check_term(right))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Equals is immutable")

    def terms(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def free_variables(self) -> frozenset[str]:
        return frozenset(v.name for t in self.terms() for v in t.variables())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Equals) and self.left == other.left
                and self.right == other.right)

    def __hash__(self) -> int:
        return hash((Equals, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


class In(Formula):
    """``t1 in t2`` — membership; t2 of type {T}, t1 of type T."""

    __slots__ = ("element", "container")

    def __init__(self, element: object, container: object):
        object.__setattr__(self, "element", _check_term(element))
        object.__setattr__(self, "container", _check_term(container))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("In is immutable")

    def terms(self) -> tuple[Term, ...]:
        return (self.element, self.container)

    def free_variables(self) -> frozenset[str]:
        return frozenset(v.name for t in self.terms() for v in t.variables())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, In) and self.element == other.element
                and self.container == other.container)

    def __hash__(self) -> int:
        return hash((In, self.element, self.container))

    def __repr__(self) -> str:
        return f"({self.element!r} in {self.container!r})"


class Subset(Formula):
    """``t1 sub t2`` — containment of two set-typed terms."""

    __slots__ = ("left", "right")

    def __init__(self, left: object, right: object):
        object.__setattr__(self, "left", _check_term(left))
        object.__setattr__(self, "right", _check_term(right))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Subset is immutable")

    def terms(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def free_variables(self) -> frozenset[str]:
        return frozenset(v.name for t in self.terms() for v in t.variables())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Subset) and self.left == other.left
                and self.right == other.right)

    def __hash__(self) -> int:
        return hash((Subset, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} sub {self.right!r})"


class RelAtom(Formula):
    """``R(t1, ..., tn)`` — a database relation or a relation bound by an
    enclosing fixpoint operator."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable[object]):
        if not name or not isinstance(name, str):
            raise SyntaxError_(f"relation name must be a non-empty string: {name!r}")
        args = tuple(_check_term(a) for a in args)
        if not args:
            raise SyntaxError_(f"relation atom {name!r} needs arguments")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", args)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RelAtom is immutable")

    def terms(self) -> tuple[Term, ...]:
        return self.args

    def free_variables(self) -> frozenset[str]:
        return frozenset(v.name for t in self.args for v in t.variables())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RelAtom) and self.name == other.name
                and self.args == other.args)

    def __hash__(self) -> int:
        return hash((RelAtom, self.name, self.args))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


class Not(Formula):
    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        if not isinstance(operand, Formula):
            raise SyntaxError_(f"expected formula, got {operand!r}")
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Not is immutable")

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def free_variables(self) -> frozenset[str]:
        return self.operand.free_variables()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash((Not, self.operand))

    def __repr__(self) -> str:
        return f"not {self.operand!r}"


class _NaryConnective(Formula):
    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Iterable[Formula]):
        operands = tuple(operands)
        if len(operands) < 2:
            raise SyntaxError_(f"{type(self).__name__} needs >= 2 operands")
        for op in operands:
            if not isinstance(op, Formula):
                raise SyntaxError_(f"expected formula, got {op!r}")
        object.__setattr__(self, "operands", operands)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def free_variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for op in self.operands:
            result |= op.free_variables()
        return result

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.operands == other.operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self), self.operands))

    def __repr__(self) -> str:
        return "(" + f" {self._symbol} ".join(map(repr, self.operands)) + ")"


class And(_NaryConnective):
    """N-ary conjunction."""
    __slots__ = ()
    _symbol = "and"


class Or(_NaryConnective):
    """N-ary disjunction."""
    __slots__ = ()
    _symbol = "or"


class Implies(Formula):
    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        for op in (antecedent, consequent):
            if not isinstance(op, Formula):
                raise SyntaxError_(f"expected formula, got {op!r}")
        object.__setattr__(self, "antecedent", antecedent)
        object.__setattr__(self, "consequent", consequent)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Implies is immutable")

    def children(self) -> tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def free_variables(self) -> frozenset[str]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Implies)
                and self.antecedent == other.antecedent
                and self.consequent == other.consequent)

    def __hash__(self) -> int:
        return hash((Implies, self.antecedent, self.consequent))

    def __repr__(self) -> str:
        return f"({self.antecedent!r} -> {self.consequent!r})"


class Iff(Formula):
    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        for op in (left, right):
            if not isinstance(op, Formula):
                raise SyntaxError_(f"expected formula, got {op!r}")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Iff is immutable")

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def free_variables(self) -> frozenset[str]:
        return self.left.free_variables() | self.right.free_variables()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Iff) and self.left == other.left
                and self.right == other.right)

    def __hash__(self) -> int:
        return hash((Iff, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} <-> {self.right!r})"


class _Quantifier(Formula):
    __slots__ = ("var", "body")
    _symbol = "?"

    def __init__(self, var: Var, body: Formula):
        if not isinstance(var, Var):
            raise SyntaxError_(f"expected Var, got {var!r}")
        if var.typ is None:
            raise SyntaxError_(f"quantified variable {var.name!r} must be typed")
        if not isinstance(body, Formula):
            raise SyntaxError_(f"expected formula, got {body!r}")
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "body", body)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.var.name}

    def __eq__(self, other: object) -> bool:
        return (type(other) is type(self) and self.var == other.var  # type: ignore[attr-defined]
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((type(self), self.var, self.body))

    def __repr__(self) -> str:
        return f"{self._symbol} {self.var!r} ({self.body!r})"


class Exists(_Quantifier):
    """``exists x:T (body)``."""
    __slots__ = ()
    _symbol = "exists"


class Forall(_Quantifier):
    """``forall x:T (body)``."""
    __slots__ = ()
    _symbol = "forall"


# ---------------------------------------------------------------------------
# Fixpoints
# ---------------------------------------------------------------------------

#: Fixpoint kinds.
IFP = "IFP"
PFP = "PFP"


class Fixpoint:
    """A fixpoint operator ``IFP(phi(S), S)`` or ``PFP(phi(S), S)``.

    ``columns`` are the declared column variables of the inductively
    defined relation S (the free variables ``x1:T1 .. xn:Tn`` of phi in
    the paper's formulation); other free variables of ``body`` are
    parameters bound by the enclosing scope.

    The semantics (Definition 3.1): with ``J0 = {}``,

    * IFP: ``J_i = phi(J_{i-1}) union J_{i-1}`` — inflationary, always
      converges;
    * PFP: ``J_i = phi(J_{i-1})`` — converges only if a fixed point is
      reached; otherwise the fixpoint is undefined.
    """

    __slots__ = ("kind", "name", "columns", "body")

    def __init__(self, kind: str, name: str,
                 columns: Iterable[tuple[str, TypeLike]], body: Formula):
        if kind not in (IFP, PFP):
            raise SyntaxError_(f"fixpoint kind must be IFP or PFP, got {kind!r}")
        if not name or not isinstance(name, str):
            raise SyntaxError_(f"fixpoint relation needs a name: {name!r}")
        cols = tuple((n, as_type(t)) for n, t in columns)
        if not cols:
            raise SyntaxError_("fixpoint needs at least one column")
        names = [n for n, _ in cols]
        if len(set(names)) != len(names):
            raise SyntaxError_(f"duplicate column variables in fixpoint: {names}")
        if not isinstance(body, Formula):
            raise SyntaxError_(f"expected formula body, got {body!r}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "body", body)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Fixpoint is immutable")

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.columns)

    @property
    def column_types(self) -> tuple[Type, ...]:
        return tuple(t for _, t in self.columns)

    def parameters(self) -> Iterator[Var]:
        """Free variables of the body other than the column variables.

        Yields untyped Var markers by name (types resolved by checker).
        """
        bound = set(self.column_names)
        for name in sorted(self.body.free_variables() - bound):
            yield Var(name)

    def as_term(self) -> FixpointTerm:
        """Use this fixpoint as a term of type ``{[T1..Tn]}``."""
        return FixpointTerm(self)

    def __call__(self, *args: object) -> "FixpointPred":
        """Apply the fixpoint to argument terms: ``IFP(phi, S)(t1..tn)``."""
        return FixpointPred(self, args)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Fixpoint) and self.kind == other.kind
                and self.name == other.name and self.columns == other.columns
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((Fixpoint, self.kind, self.name, self.columns, self.body))

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{t!r}" for n, t in self.columns)
        return f"{self.kind}[{self.name}({cols})]({self.body!r})"


class FixpointPred(Formula):
    """A fixpoint applied to argument terms, as an atomic formula."""

    __slots__ = ("fixpoint", "args")

    def __init__(self, fixpoint: Fixpoint, args: Iterable[object]):
        if not isinstance(fixpoint, Fixpoint):
            raise SyntaxError_(f"expected Fixpoint, got {fixpoint!r}")
        args = tuple(_check_term(a) for a in args)
        if len(args) != fixpoint.arity:
            raise SyntaxError_(
                f"fixpoint {fixpoint.name!r} has arity {fixpoint.arity}, "
                f"applied to {len(args)} arguments"
            )
        object.__setattr__(self, "fixpoint", fixpoint)
        object.__setattr__(self, "args", args)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FixpointPred is immutable")

    def terms(self) -> tuple[Term, ...]:
        return self.args

    def free_variables(self) -> frozenset[str]:
        result = frozenset(v.name for t in self.args for v in t.variables())
        result |= frozenset(v.name for v in self.fixpoint.parameters())
        return result

    def walk(self) -> Iterator[Formula]:
        yield self
        yield from self.fixpoint.body.walk()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FixpointPred)
                and self.fixpoint == other.fixpoint and self.args == other.args)

    def __hash__(self) -> int:
        return hash((FixpointPred, self.fixpoint, self.args))

    def __repr__(self) -> str:
        return f"{self.fixpoint!r}({', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

class Query:
    """A query ``{[x1:T1, ..., xk:Tk] | phi(x1..xk)}``.

    ``head`` lists the output variables with their types; ``body`` is the
    formula.  The answer on instance I is the set of head tuples over
    ``dom(Tj, atom(I))`` satisfying the body (active-domain semantics).
    """

    __slots__ = ("head", "body", "output_name")

    def __init__(self, head: Iterable[tuple[str, TypeLike]], body: Formula,
                 output_name: str = "S"):
        head = tuple((n, as_type(t)) for n, t in head)
        if not head:
            raise SyntaxError_("query head needs at least one variable")
        names = [n for n, _ in head]
        if len(set(names)) != len(names):
            raise SyntaxError_(f"duplicate head variables: {names}")
        if not isinstance(body, Formula):
            raise SyntaxError_(f"expected formula body, got {body!r}")
        missing = set(names) - body.free_variables()
        if missing:
            raise SyntaxError_(
                f"head variables {sorted(missing)} do not occur free in the body"
            )
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "output_name", output_name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Query is immutable")

    @property
    def head_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.head)

    @property
    def head_types(self) -> tuple[Type, ...]:
        return tuple(t for _, t in self.head)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Query) and self.head == other.head
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((Query, self.head, self.body))

    def __repr__(self) -> str:
        head = ", ".join(f"{n}:{t!r}" for n, t in self.head)
        return f"{{[{head}] | {self.body!r}}}"


def constants_of(formula: Formula) -> frozenset[Value]:
    """All complex object constants occurring in a formula (incl. inside
    fixpoint bodies)."""
    result: set[Value] = set()
    for sub in formula.walk():
        for term in sub.terms():
            if isinstance(term, Const):
                result.add(term.value)
    return frozenset(result)


def relation_names_of(formula: Formula) -> frozenset[str]:
    """Names of relation atoms (database + fixpoint-bound) in a formula."""
    return frozenset(
        sub.name for sub in formula.walk() if isinstance(sub, RelAtom)
    )
