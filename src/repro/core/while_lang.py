"""The *while* queries over complex objects (Sections 1 and 3).

The paper positions its languages against "the relational calculus or
its recursive extensions, the fixpoint queries and the while queries
[CH80]", and uses the equivalences FO+IFP = fixpoint [GS85] and
FO+PFP = while [AV89].  This module implements the imperative side of
that equivalence for complex objects:

* a **program** is a sequence of statements over typed relation
  variables (initialised empty);
* statements are **assignments** ``X := {(vars) | phi}`` — the right
  side is a CALC formula over the database relations *and* the program
  variables — and **while-change loops** ``while X changes: body``
  (equivalently, loops guarded by non-emptiness, the [AV89] dialect);
* a program's result is the final value of a designated output variable.

:func:`run_program` executes programs directly;
:func:`while_to_pfp_equivalent` does not exist — instead the tests
realise the [AV89] equivalence *semantically*: canonical while programs
(transitive closure, difference-driven loops) are checked to agree with
their CALC+PFP formulations, and a diverging while program is shown to
correspond to an undefined partial fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..objects.instance import Instance
from ..objects.schema import DatabaseSchema, RelationSchema
from ..objects.types import Type, TypeLike, as_type
from ..objects.values import CTuple
from .evaluation import Evaluator
from .syntax import Formula, Var

__all__ = [
    "WhileError",
    "Assign",
    "WhileChange",
    "WhileProgram",
    "run_program",
]

Row = tuple
Rows = frozenset


class WhileError(Exception):
    """Raised for malformed while programs or runaway loops."""


@dataclass(frozen=True)
class Assign:
    """``target := { (columns) | body }``.

    ``columns`` are typed variables; ``body`` is a CALC formula that may
    mention database relations and any program variable (including
    ``target`` itself — the previous value is read).
    """

    target: str
    columns: tuple[tuple[str, Type], ...]
    body: Formula

    def __init__(self, target: str,
                 columns: Iterable[tuple[str, TypeLike] | Var],
                 body: Formula):
        resolved = []
        for col in columns:
            if isinstance(col, Var):
                if col.typ is None:
                    raise WhileError(f"column {col.name!r} must be typed")
                resolved.append((col.name, col.typ))
            else:
                name, typ = col
                resolved.append((name, as_type(typ)))
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "columns", tuple(resolved))
        object.__setattr__(self, "body", body)


@dataclass(frozen=True)
class WhileChange:
    """``while <watched> changes: body`` — re-run the body until the
    watched variables' values repeat a fixpoint (no change over one
    pass).  Divergence (a non-repeating or cycling state) is cut off by
    ``max_iterations``."""

    watched: tuple[str, ...]
    body: tuple["Statement", ...]

    def __init__(self, watched: Iterable[str] | str,
                 body: Iterable["Statement"]):
        if isinstance(watched, str):
            watched = (watched,)
        object.__setattr__(self, "watched", tuple(watched))
        object.__setattr__(self, "body", tuple(body))


Statement = Assign | WhileChange


class WhileProgram:
    """A while program: variable declarations, statements, output var."""

    def __init__(
        self,
        variables: Mapping[str, Sequence[TypeLike]],
        statements: Iterable[Statement],
        output: str,
    ):
        self.variables = {
            name: tuple(as_type(t) for t in types)
            for name, types in variables.items()
        }
        self.statements = tuple(statements)
        if output not in self.variables:
            raise WhileError(f"output variable {output!r} not declared")
        self.output = output
        self._check(self.statements)

    def _check(self, statements: tuple[Statement, ...]) -> None:
        for statement in statements:
            if isinstance(statement, Assign):
                if statement.target not in self.variables:
                    raise WhileError(
                        f"assignment to undeclared variable "
                        f"{statement.target!r}"
                    )
                declared = self.variables[statement.target]
                column_types = tuple(t for _, t in statement.columns)
                if column_types != declared:
                    raise WhileError(
                        f"{statement.target!r} declared {declared}, "
                        f"assigned {column_types}"
                    )
            elif isinstance(statement, WhileChange):
                for name in statement.watched:
                    if name not in self.variables:
                        raise WhileError(
                            f"while watches undeclared variable {name!r}"
                        )
                self._check(statement.body)
            else:
                raise WhileError(f"unknown statement {statement!r}")


def _extended_schema(schema: DatabaseSchema,
                     variables: Mapping[str, tuple[Type, ...]]) -> DatabaseSchema:
    relations = list(schema)
    for name, types in variables.items():
        if name in schema:
            raise WhileError(
                f"program variable {name!r} shadows a database relation"
            )
        relations.append(RelationSchema(name, types))
    return DatabaseSchema(relations)


def run_program(
    program: WhileProgram,
    inst: Instance,
    max_iterations: int = 10_000,
    max_domain_size: int = 1_000_000,
) -> Rows:
    """Execute a while program; returns the output variable's rows.

    Raises :class:`WhileError` if a loop exceeds ``max_iterations``
    (the while queries are partial: non-terminating programs denote
    undefined results, like diverging PFPs).
    """
    schema = _extended_schema(inst.schema, program.variables)
    state: dict[str, frozenset[Row]] = {
        name: frozenset() for name in program.variables
    }

    def materialised_instance() -> Instance:
        data = {rel.name: list(rel.tuples) for rel in inst.relations()}
        for name, rows in state.items():
            data[name] = [CTuple(row) for row in rows]
        return Instance(schema, data)

    def execute(statements: tuple[Statement, ...]) -> None:
        for statement in statements:
            if isinstance(statement, Assign):
                evaluator = Evaluator(schema,
                                      max_domain_size=max_domain_size)
                from .syntax import Query

                query = Query(statement.columns, statement.body)
                answer = evaluator.evaluate(query, materialised_instance())
                state[statement.target] = frozenset(
                    tuple(row.items) for row in answer
                )
            else:
                iterations = 0
                while True:
                    snapshot = tuple(state[name]
                                     for name in statement.watched)
                    execute(statement.body)
                    iterations += 1
                    if tuple(state[name]
                             for name in statement.watched) == snapshot:
                        break
                    if iterations > max_iterations:
                        raise WhileError(
                            f"while loop exceeded {max_iterations} "
                            "iterations (diverging program)"
                        )

    execute(program.statements)
    return state[program.output]
