"""Range restriction: the syntactic safety discipline of Section 5.

Two related pieces:

1. **The decision analysis** (Definitions 5.2 and 5.3): compute the set
   of *range-restricted variables* of a formula by the paper's inference
   rules 1-9 (CALC) and 1', 9', 10 (fixpoints, with the column-wise
   ``tau`` iteration).  A formula is range restricted iff every variable
   — free and bound — is range restricted; :func:`analyze` reports the
   verdict together with per-binder diagnostics.

2. **Range functions** (the proof of Theorem 5.1 turned into an
   algorithm): :func:`compute_ranges` derives, for a range-restricted
   query and an input instance, a finite candidate set per variable such
   that the *restricted-domain* evaluation over those sets provably
   agrees with the active-domain answer — in time polynomial in the
   instance, instead of hyperexponential.

Variables and projections
-------------------------

Following the paper, "variables" include the projections ``x.i`` of
tuple-typed variables.  We represent both as *paths*: ``("x",)`` for the
variable and ``("x", i)`` for its i-th projection.  Rules 2 and 3 close a
set of paths under projection (a restricted tuple restricts its
components, and a tuple all of whose components are restricted is itself
restricted).

Soundness of union ranges
-------------------------

The proof of Theorem 5.1 fixes *one* derivation per variable and builds
its canonical range.  We instead take the union of the ranges arising
from every base derivation (every relation-atom occurrence, every
constant equation, ...).  This is sound: for a range-restricted formula,
any satisfying assignment takes its values inside the canonical ranges,
so (a) enlarging an existential range adds no witnesses (values outside
cannot satisfy the body), and (b) enlarging a universal range adds only
vacuously-true instances (a value outside the canonical range of
``nnf(not body)`` cannot falsify the body).  Union ranges stay
polynomial, so the complexity claims are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..objects.types import TupleType, Type
from ..objects.values import CSet, CTuple, Value
from .syntax import (
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    Term,
    Var,
)

__all__ = [
    "Path",
    "RRResult",
    "RRViolation",
    "RuleCitation",
    "analyze",
    "analyze_query",
    "is_range_restricted",
    "compute_ranges",
    "nnf",
    "negate",
]

#: A variable path: ("x",) for x itself, ("x", i) for x.i.
Path = tuple


def path_text(path: Path) -> str:
    """Render a path the way queries write it: ``x`` or ``x.2``."""
    if len(path) == 1:
        return str(path[0])
    return f"{path[0]}.{path[1]}"


def term_path(term: Term) -> Path | None:
    """The path of a Var or Proj term, None for other terms."""
    if isinstance(term, Var):
        return (term.name,)
    if isinstance(term, Proj):
        return (term.base.name, term.index)
    return None


def free_paths(formula: Formula) -> frozenset[Path]:
    """Paths of *free* variables occurring in a formula.

    Quantified variables and fixpoint column variables are excluded
    within their scopes.
    """
    result: set[Path] = set()

    def visit(f: Formula, bound: frozenset[str]) -> None:
        for term in f.terms():
            path = term_path(term)
            if path is not None and path[0] not in bound:
                result.add(path)
            if isinstance(term, FixpointTerm):
                fix = term.fixpoint
                visit(fix.body, bound | set(fix.column_names))
        if isinstance(f, (Exists, Forall)):
            visit(f.body, bound | {f.var.name})
            return
        if isinstance(f, FixpointPred):
            fix = f.fixpoint
            visit(fix.body, bound | set(fix.column_names))
            return
        for child in f.children():
            visit(child, bound)

    visit(formula, frozenset())
    return frozenset(result)


# ---------------------------------------------------------------------------
# Negation normal form (needed by rule 7)
# ---------------------------------------------------------------------------

def negate(formula: Formula) -> Formula:
    """``not formula`` with the negation pushed inside (rule 7's footnote)."""
    return nnf(Not(formula))


def nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed to atoms; ``->`` and ``<->``
    expanded."""
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, Not):
            return nnf(inner.operand)
        if isinstance(inner, And):
            return Or(nnf(Not(op)) for op in inner.operands)
        if isinstance(inner, Or):
            return And(nnf(Not(op)) for op in inner.operands)
        if isinstance(inner, Implies):
            return And((nnf(inner.antecedent), nnf(Not(inner.consequent))))
        if isinstance(inner, Iff):
            return Or((
                And((nnf(inner.left), nnf(Not(inner.right)))),
                And((nnf(Not(inner.left)), nnf(inner.right))),
            ))
        if isinstance(inner, Exists):
            return Forall(inner.var, nnf(Not(inner.body)))
        if isinstance(inner, Forall):
            return Exists(inner.var, nnf(Not(inner.body)))
        return Not(inner)  # negated atom
    if isinstance(formula, And):
        return And(nnf(op) for op in formula.operands)
    if isinstance(formula, Or):
        return Or(nnf(op) for op in formula.operands)
    if isinstance(formula, Implies):
        return Or((nnf(Not(formula.antecedent)), nnf(formula.consequent)))
    if isinstance(formula, Iff):
        # Keep Iff intact: rule 9 pattern-matches it.  Its operands are
        # normalised; rule-based analysis translates it when needed.
        return Iff(nnf(formula.left), nnf(formula.right))
    if isinstance(formula, Exists):
        return Exists(formula.var, nnf(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.var, nnf(formula.body))
    return formula  # atoms


# ---------------------------------------------------------------------------
# The decision analysis
# ---------------------------------------------------------------------------

#: Rules proper to Definition 5.3 (fixpoint extension); the rest are
#: Definition 5.2's.  "exempt" is Theorem 5.3's RR_T relaxation.
_DEF_53_RULES = frozenset({"1'", "9'", "10"})


@dataclass(frozen=True)
class RuleCitation:
    """Why a path is range restricted: the grounding rule and its site.

    ``rule`` is one of ``"1".."9"`` (Definition 5.2), ``"1'"``/``"9'"``/
    ``"10"`` (Definition 5.3) or ``"exempt"`` (Theorem 5.3's RR_T
    discipline); ``detail`` names the concrete occurrence that grounded
    the path (the atom, equation, pattern...).
    """

    rule: str
    detail: str

    @property
    def source(self) -> str:
        """The paper definition/theorem the rule belongs to."""
        if self.rule == "exempt":
            return "Theorem 5.3"
        if self.rule in _DEF_53_RULES:
            return "Definition 5.3"
        return "Definition 5.2"

    def __str__(self) -> str:
        if self.rule == "exempt":
            return f"{self.source}: {self.detail}"
        return f"rule {self.rule} ({self.source}): {self.detail}"


@dataclass
class RRViolation:
    """One structured range-restriction failure.

    Attributes:
        kind: ``"free"``, ``"existential"`` or ``"universal"`` — the
            binding site whose check failed.
        path: the unrestricted variable path.
        message: the human-readable reason (same text as
            :attr:`RRResult.violations`).
        node: the AST node the failure anchors to (the quantifier, or
            the whole formula for free variables) — used for source-span
            lookup by the linter.
    """

    kind: str
    path: Path
    message: str
    node: object | None = None


@dataclass
class RRResult:
    """Verdict of the range-restriction analysis.

    Attributes:
        restricted: range-restricted paths of the whole formula.
        violations: human-readable reasons why bound variables (or the
            formula's free variables) fail to be range restricted.
        fixpoint_columns: for each analysed fixpoint (by name), the final
            ``tau*`` set of range-restricted column indices (1-based).
        citations: per restricted path, the Definition 5.2/5.3 rule that
            grounded it (the first base derivation found).
        binder_citations: per *bound* variable name, the citation
            recorded when its binding-site check succeeded (existential,
            universal, fixpoint column).
        violation_records: structured counterparts of ``violations``.
    """

    restricted: frozenset[Path] = frozenset()
    violations: list[str] = field(default_factory=list)
    fixpoint_columns: dict[str, frozenset[int]] = field(default_factory=dict)
    citations: dict[Path, RuleCitation] = field(default_factory=dict)
    binder_citations: dict[str, RuleCitation] = field(default_factory=dict)
    violation_records: list[RRViolation] = field(default_factory=list)

    @property
    def is_range_restricted(self) -> bool:
        return not self.violations

    def citation_for(self, name: str) -> RuleCitation | None:
        """The best citation for a variable: its binder-site record if
        bound, else the grounding of its ``(name,)`` path."""
        return self.binder_citations.get(name) or self.citations.get((name,))


class _Analyzer:
    """Implements Definitions 5.2 / 5.3.

    ``variable_types`` drives the projection closure (rules 2/3).
    ``tau`` maps fixpoint-bound relation names to their currently-assumed
    range-restricted columns (Definition 5.3's mapping).
    """

    def __init__(self, variable_types: Mapping[str, Type],
                 database_relations: frozenset[str],
                 exempt_types: frozenset[Type] = frozenset()):
        self.variable_types = dict(variable_types)
        self.database_relations = database_relations
        self.exempt_types = exempt_types
        self.violations: list[str] = []
        self.violation_records: list[RRViolation] = []
        self.fixpoint_columns: dict[str, frozenset[int]] = {}
        self.tau: dict[str, frozenset[int]] = {}
        #: Path -> first grounding rule found (provenance for the linter).
        self.reasons: dict[Path, RuleCitation] = {}
        #: Bound variable name -> citation at its successful binder check.
        self.binder_citations: dict[str, RuleCitation] = {}

    def _note(self, path: Path, rule: str, detail: str) -> None:
        """Record the first rule that grounds ``path`` (provenance only —
        has no effect on the verdict)."""
        self.reasons.setdefault(path, RuleCitation(rule, detail))

    def _violation(self, kind: str, path: Path, message: str,
                   node: object = None) -> None:
        self.violations.append(message)
        self.violation_records.append(
            RRViolation(kind=kind, path=path, message=message, node=node)
        )

    def _is_exempt(self, name: str) -> bool:
        """Theorem 5.3's RR_T discipline: variables of a *dense* type are
        exempt from range restriction (their full domain is polynomial),
        and count as restricted for propagation purposes."""
        typ = self.variable_types.get(name)
        return typ is not None and typ in self.exempt_types

    # -- closure under rules 2/3 -------------------------------------------

    def close(self, paths: frozenset[Path]) -> frozenset[Path]:
        result = set(paths)
        # Exempt-typed variables are restricted by fiat (Theorem 5.3).
        for name in self.variable_types:
            if self._is_exempt(name):
                result.add((name,))
                self._note(
                    (name,), "exempt",
                    f"type {self.variable_types[name]!r} is exempt from "
                    "range restriction (dense, RR_T discipline)",
                )
        changed = True
        while changed:
            changed = False
            for path in list(result):
                name = path[0]
                typ = self.variable_types.get(name)
                if typ is None or not isinstance(typ, TupleType):
                    continue
                if len(path) == 1:
                    # rule 2: x restricted -> every x.i restricted
                    for index in range(1, typ.arity + 1):
                        if (name, index) not in result:
                            result.add((name, index))
                            self._note((name, index), "2",
                                       f"component of restricted tuple {name!r}")
                            changed = True
            # rule 3: all x.i restricted -> x restricted
            by_name: dict[str, set[int]] = {}
            for path in result:
                if len(path) == 2:
                    by_name.setdefault(path[0], set()).add(path[1])
            for name, indices in by_name.items():
                typ = self.variable_types.get(name)
                if (isinstance(typ, TupleType)
                        and indices >= set(range(1, typ.arity + 1))
                        and (name,) not in result):
                    result.add((name,))
                    self._note((name,), "3",
                               f"all components of {name!r} are restricted")
                    changed = True
        return frozenset(result)

    def _has(self, paths: frozenset[Path], path: Path) -> bool:
        return path in self.close(paths)

    # -- the rules -----------------------------------------------------------

    def rr(self, formula: Formula) -> frozenset[Path]:
        """Range-restricted paths of a (sub)formula.

        Also records violations for bound variables whose binding-site
        check fails (rules 7/8 and the query-level requirement).
        """
        if isinstance(formula, RelAtom):
            return self._rr_rel_atom(formula)
        if isinstance(formula, Equals):
            return self._rr_equals(formula)
        if isinstance(formula, (In, Subset)):
            return frozenset()  # contribute only inside conjunctions (rule 4)
        if isinstance(formula, FixpointPred):
            return self._rr_fixpoint_pred(formula)
        if isinstance(formula, Not):
            self.rr(formula.operand)  # still analyse for inner violations
            return frozenset()
        if isinstance(formula, And):
            return self._rr_and(formula.operands)
        if isinstance(formula, Or):
            return self._rr_or(formula.operands)
        if isinstance(formula, Implies):
            return self._rr_or((negate(formula.antecedent), formula.consequent))
        if isinstance(formula, Iff):
            return self._rr_and((
                Implies(formula.left, formula.right),
                Implies(formula.right, formula.left),
            ))
        if isinstance(formula, Exists):
            body_rr = self.close(self.rr(formula.body))
            if (formula.var.name,) not in body_rr:
                self._violation(
                    "existential", (formula.var.name,),
                    f"existential variable {formula.var.name!r} is not "
                    f"range restricted in {formula.body!r}",
                    node=formula,
                )
            else:
                self.binder_citations.setdefault(
                    formula.var.name,
                    self.reasons.get((formula.var.name,))
                    or RuleCitation("8", "restricted in the quantifier body"),
                )
            return frozenset(
                p for p in body_rr if p[0] != formula.var.name
            )
        if isinstance(formula, Forall):
            return self._rr_forall(formula)
        raise TypeError(f"unknown formula {formula!r}")

    def _rr_rel_atom(self, formula: RelAtom) -> frozenset[Path]:
        paths: set[Path] = set()
        if formula.name in self.database_relations:
            # rule 1: every variable of the atom is range restricted.
            for index, arg in enumerate(formula.args, start=1):
                path = term_path(arg)
                if path is not None:
                    paths.add(path)
                    self._note(path, "1",
                               f"argument {index} of database atom "
                               f"{formula.name}(...)")
        elif formula.name in self.tau:
            # rule 1': only arguments in restricted columns.
            for index, arg in enumerate(formula.args, start=1):
                if index in self.tau[formula.name]:
                    path = term_path(arg)
                    if path is not None:
                        paths.add(path)
                        self._note(path, "1'",
                                   f"argument {index} of fixpoint-bound atom "
                                   f"{formula.name}(...), column in tau")
        return frozenset(paths)

    def _rr_equals(self, formula: Equals) -> frozenset[Path]:
        paths: set[Path] = set()
        # rule 4, "x = c" case (either orientation).
        left_path, right_path = term_path(formula.left), term_path(formula.right)
        if left_path is not None and isinstance(formula.right, Const):
            paths.add(left_path)
            self._note(left_path, "4",
                       f"equality with constant {formula.right.value!r}")
        if right_path is not None and isinstance(formula.left, Const):
            paths.add(right_path)
            self._note(right_path, "4",
                       f"equality with constant {formula.left.value!r}")
        # rule 9': x = IFP(phi, S) — restricted iff all columns are.
        for var_path, term in ((left_path, formula.right),
                               (right_path, formula.left)):
            if var_path is not None and isinstance(term, FixpointTerm):
                tau_star, body_rr = self._fixpoint_tau_star(term.fixpoint)
                paths |= self._fixpoint_param_paths(term.fixpoint, body_rr)
                if tau_star >= set(range(1, term.fixpoint.arity + 1)):
                    paths.add(var_path)
                    self._note(var_path, "9'",
                               f"equality with fixpoint term "
                               f"{term.fixpoint.kind}(..., "
                               f"{term.fixpoint.name}) whose columns are all "
                               "range restricted")
        return frozenset(paths)

    def _rr_and(self, operands) -> frozenset[Path]:
        operands = tuple(operands)
        # rule 5 (union) then rule 4 chaining to a fixpoint.
        current: set[Path] = set()
        for op in operands:
            current |= self.rr(op)
        changed = True
        while changed:
            changed = False
            closed = self.close(frozenset(current))
            for op in operands:
                if isinstance(op, Equals):
                    lp, rp = term_path(op.left), term_path(op.right)
                    if lp is not None and rp is not None:
                        if rp in closed and lp not in closed:
                            current.add(lp)
                            self._note(lp, "4",
                                       f"equality with restricted "
                                       f"{path_text(rp)}")
                            changed = True
                        if lp in closed and rp not in closed:
                            current.add(rp)
                            self._note(rp, "4",
                                       f"equality with restricted "
                                       f"{path_text(lp)}")
                            changed = True
                elif isinstance(op, In):
                    ep = term_path(op.element)
                    cp = term_path(op.container)
                    if (ep is not None and cp is not None
                            and cp in closed and ep not in closed):
                        current.add(ep)
                        self._note(ep, "4",
                                   f"membership in restricted "
                                   f"{path_text(cp)}")
                        changed = True
                    # membership in a constant set also bounds the element
                    if (ep is not None and isinstance(op.container, Const)
                            and ep not in closed):
                        current.add(ep)
                        self._note(ep, "4", "membership in a constant set")
                        changed = True
        return self.close(frozenset(current))

    def _rr_or(self, operands) -> frozenset[Path]:
        operands = tuple(operands)
        # rule 6.  The paper words it "x in var(phi_i) implies x in
        # RR(phi_i)", which read literally would admit a variable missing
        # from one disjunct — unsound, since that disjunct leaves it
        # unconstrained.  The proof's range construction
        # ``r(x) = r_{phi_1}(x) ∪ r_{phi_2}(x)`` presupposes x restricted
        # in *both*, so we implement that (intended) reading: restricted
        # in every disjunct.
        rrs = [self.close(self.rr(op)) for op in operands]
        result = set(rrs[0])
        for other in rrs[1:]:
            result &= other
        return frozenset(result)

    def _rr_forall(self, formula: Forall) -> frozenset[Path]:
        var = formula.var
        body = formula.body
        # rule 9: forall y (y in s <-> phi'(y)) with y restricted in phi'.
        pattern = self._match_rule9(body, var.name)
        if pattern is not None:
            container_path, phi = pattern
            phi_rr = self.close(self.rr(phi))
            if (var.name,) in phi_rr:
                self.binder_citations.setdefault(
                    var.name,
                    RuleCitation(
                        "9",
                        f"nest pattern forall {var.name} ({var.name} in "
                        f"{path_text(container_path)} <-> phi) with "
                        f"{var.name} restricted in phi",
                    ),
                )
                self._note(container_path, "9",
                           f"set comprehended by the nest pattern over "
                           f"{var.name}")
                return frozenset((container_path,))
        # rule 7: y restricted in nnf(not body).  Citations gathered while
        # analysing the *negated* body describe that formula, not the
        # original — keep only the bound variable's own grounding.
        saved_reasons = dict(self.reasons)
        negated = negate(body)
        negated_rr = self.close(self.rr(negated))
        var_reason = self.reasons.get((var.name,))
        self.reasons = saved_reasons
        if (var.name,) not in negated_rr:
            self._violation(
                "universal", (var.name,),
                f"universal variable {var.name!r} is not range restricted "
                f"in the negation of {body!r}",
                node=formula,
            )
        else:
            detail = ("restricted in the negation of the body"
                      if var_reason is None
                      else f"restricted in the negation of the body via "
                           f"{var_reason}")
            self.binder_citations.setdefault(
                var.name, RuleCitation("7", detail))
        return frozenset()

    @staticmethod
    def _match_rule9(body: Formula, var_name: str):
        """Match ``y in s <-> phi'(y)`` (either orientation).

        Returns ``(path_of_s, phi')`` or None.  ``s`` must be a variable
        or projection distinct from y.
        """
        if not isinstance(body, Iff):
            return None
        for membership, phi in ((body.left, body.right),
                                (body.right, body.left)):
            if not isinstance(membership, In):
                continue
            element, container = membership.element, membership.container
            if not (isinstance(element, Var) and element.name == var_name):
                continue
            container_path = term_path(container)
            if container_path is None or container_path[0] == var_name:
                continue
            return container_path, phi
        return None

    # -- fixpoints (Definition 5.3) ------------------------------------------

    def _fixpoint_tau_star(
        self, fixpoint: Fixpoint
    ) -> tuple[frozenset[int], frozenset[Path]]:
        """Rule 10: iterate tau to its greatest fixed point tau*.

        Returns ``(tau*(S), RR_{tau*}(body))``.  Violations recorded
        during intermediate iterations are discarded; only the final
        iteration's violations are kept.
        """
        name = fixpoint.name
        columns = list(range(1, fixpoint.arity + 1))
        tau_current = frozenset(columns)
        saved_violations = list(self.violations)
        saved_records = list(self.violation_records)
        saved_reasons = dict(self.reasons)
        saved_binders = dict(self.binder_citations)
        while True:
            self.violations = list(saved_violations)
            self.violation_records = list(saved_records)
            self.reasons = dict(saved_reasons)
            self.binder_citations = dict(saved_binders)
            self.tau[name] = tau_current
            try:
                body_rr = self.close(self.rr(fixpoint.body))
            finally:
                del self.tau[name]
            tau_next = frozenset(
                index for index in tau_current
                if (fixpoint.column_names[index - 1],) in body_rr
            )
            if tau_next == tau_current:
                self.fixpoint_columns[name] = tau_current
                for index in columns:
                    column = fixpoint.column_names[index - 1]
                    if index not in tau_current:
                        # Body-internal groundings of a dropped column do
                        # not hold at the fixed point; don't leak them.
                        for path in [p for p in self.reasons
                                     if p[0] == column]:
                            del self.reasons[path]
                        continue
                    grounding = self.reasons.get((column,))
                    detail = (f"column {index} of {fixpoint.kind}(..., "
                              f"{name}) survives the tau iteration")
                    if grounding is not None:
                        detail += f", grounded by {grounding}"
                    self.binder_citations.setdefault(
                        column, RuleCitation("10", detail))
                return tau_current, body_rr
            tau_current = tau_next

    def _fixpoint_param_paths(
        self, fixpoint: Fixpoint, body_rr: frozenset[Path]
    ) -> frozenset[Path]:
        """Parameter paths of the fixpoint that are restricted in its body."""
        column_names = set(fixpoint.column_names)
        return frozenset(
            p for p in body_rr if p[0] not in column_names
        )

    def _rr_fixpoint_pred(self, formula: FixpointPred) -> frozenset[Path]:
        fixpoint = formula.fixpoint
        tau_star, body_rr = self._fixpoint_tau_star(fixpoint)
        paths: set[Path] = set(self._fixpoint_param_paths(fixpoint, body_rr))
        for index, arg in enumerate(formula.args, start=1):
            if index in tau_star:
                path = term_path(arg)
                if path is not None:
                    paths.add(path)
        return frozenset(paths)


def analyze(
    formula: Formula,
    variable_types: Mapping[str, Type],
    database_relations: frozenset[str] | set[str],
    required_free: frozenset[str] | set[str] | None = None,
    exempt_types: frozenset[Type] | set[Type] = frozenset(),
) -> RRResult:
    """Run the Definition 5.2/5.3 analysis on a formula.

    ``variable_types`` must cover every variable (use
    :func:`repro.core.typecheck.check_formula` to obtain it);
    ``database_relations`` are the relation names of the input schema.
    ``required_free`` lists free variables (e.g. the query head) that
    must come out range restricted for the formula to pass.
    ``exempt_types`` implements Theorem 5.3's ``RR_T`` discipline:
    variables of those (dense, non-trivial) types are exempt — they
    count as restricted, their ranges being the full (polynomial, by
    density) domains.
    """
    analyzer = _Analyzer(variable_types, frozenset(database_relations),
                         frozenset(exempt_types))
    restricted = analyzer.close(analyzer.rr(formula))
    for name in sorted(required_free or ()):
        if (name,) not in restricted:
            analyzer._violation(
                "free", (name,),
                f"free variable {name!r} is not range restricted",
                node=formula,
            )
    return RRResult(
        restricted=restricted,
        violations=analyzer.violations,
        fixpoint_columns=analyzer.fixpoint_columns,
        citations=dict(analyzer.reasons),
        binder_citations=dict(analyzer.binder_citations),
        violation_records=analyzer.violation_records,
    )


def analyze_query(query: Query, schema,
                  exempt_types: frozenset[Type] | set[Type] = frozenset()
                  ) -> RRResult:
    """Analyse a query: head variables must be range restricted
    (except those of an exempt type, per Theorem 5.3)."""
    from .typecheck import check_query

    report = check_query(query, schema)
    return analyze(
        query.body,
        report.variable_types,
        frozenset(schema.relation_names),
        required_free=set(query.head_names),
        exempt_types=exempt_types,
    )


def is_range_restricted(query: Query, schema) -> bool:
    """True iff the query is in RR-CALC(+IFP/+PFP) over the schema."""
    return analyze_query(query, schema).is_range_restricted


# ---------------------------------------------------------------------------
# Range functions (Theorem 5.1's proof, as an algorithm)
# ---------------------------------------------------------------------------

class RangeComputationError(Exception):
    """Raised when ranges cannot be derived (formula not RR, caps...)."""


class _RangeComputer:
    """Derives per-path candidate sets by iterating the range-flow rules.

    Seeds: projections of database relations at relation-atom argument
    positions; constants in equations and memberships.  Flows: equality
    chaining, membership element extraction, fixpoint column circulation
    (rule 10), nest construction (rule 9) and fixpoint terms (rule 9').
    Iterates to a global fixed point; every step only adds values that
    are projections/members of instance data or of previously derived
    values, so the result stays polynomial in the instance.
    """

    MAX_ROUNDS = 200

    def __init__(self, instance, variable_types: Mapping[str, Type],
                 database_relations: frozenset[str]):
        self.instance = instance
        self.variable_types = dict(variable_types)
        self.database_relations = database_relations
        self.ranges: dict[Path, set[Value]] = {}
        self.changed = False

    def add(self, path: Path, values) -> None:
        bucket = self.ranges.setdefault(path, set())
        before = len(bucket)
        bucket.update(values)
        if len(bucket) != before:
            self.changed = True

    def run(self, formula: Formula) -> dict[Path, set[Value]]:
        for round_index in range(self.MAX_ROUNDS):
            self.changed = False
            self._collect(formula)
            self._projection_closure()
            if not self.changed:
                return self.ranges
        raise RangeComputationError(
            f"range computation did not stabilise in {self.MAX_ROUNDS} rounds"
        )

    # -- seeds and flows, one pass over the syntax tree ---------------------

    def _collect(self, formula: Formula) -> None:
        if isinstance(formula, RelAtom):
            self._collect_rel_atom(formula)
            return
        if isinstance(formula, Equals):
            self._collect_equals(formula)
            return
        if isinstance(formula, In):
            self._collect_in(formula)
            return
        if isinstance(formula, Subset):
            return
        if isinstance(formula, FixpointPred):
            self._collect_fixpoint(formula.fixpoint, formula.args)
            return
        if isinstance(formula, (Exists, Forall)):
            self._collect(formula.body)
            if isinstance(formula, Forall):
                self._collect_rule9(formula)
            return
        for child in formula.children():
            self._collect(child)
        for term in formula.terms():
            if isinstance(term, FixpointTerm):
                self._collect_fixpoint(term.fixpoint, None)

    def _collect_rel_atom(self, formula: RelAtom) -> None:
        if formula.name in self.database_relations:
            rel = self.instance.relation(formula.name)
            for index, arg in enumerate(formula.args, start=1):
                path = term_path(arg)
                if path is not None:
                    self.add(path, (row.component(index) for row in rel.tuples))
                if isinstance(arg, FixpointTerm):
                    self._collect_fixpoint(arg.fixpoint, None)
        # Fixpoint-bound relation atoms: flow column ranges to arguments.
        # Column variables share names with the fixpoint's declared
        # columns, whose ranges are derived from the body's own seeds.
        else:
            for index, arg in enumerate(formula.args, start=1):
                path = term_path(arg)
                column_path = self._column_paths.get((formula.name, index))
                if path is not None and column_path is not None:
                    self.add(path, self.ranges.get(column_path, ()))

    #: (relation name, column index) -> column variable path, set while
    #: a fixpoint body is being collected.
    @property
    def _column_paths(self) -> dict[tuple[str, int], Path]:
        if not hasattr(self, "_column_paths_store"):
            self._column_paths_store: dict[tuple[str, int], Path] = {}
        return self._column_paths_store

    def _collect_equals(self, formula: Equals) -> None:
        lp, rp = term_path(formula.left), term_path(formula.right)
        if lp is not None and isinstance(formula.right, Const):
            self.add(lp, (formula.right.value,))
        if rp is not None and isinstance(formula.left, Const):
            self.add(rp, (formula.left.value,))
        if lp is not None and rp is not None:
            self.add(lp, self.ranges.get(rp, ()))
            self.add(rp, self.ranges.get(lp, ()))
        # rule 9': x = IFP(...) — the fixpoint result itself is a value.
        for path, term in ((lp, formula.right), (rp, formula.left)):
            if path is not None and isinstance(term, FixpointTerm):
                self._collect_fixpoint(term.fixpoint, None)
                self._flow_fixpoint_term(path, term)

    def _collect_in(self, formula: In) -> None:
        ep, cp = term_path(formula.element), term_path(formula.container)
        if ep is not None and isinstance(formula.container, Const):
            container = formula.container.value
            if isinstance(container, CSet):
                self.add(ep, container.elements)
        if ep is not None and cp is not None:
            for value in self.ranges.get(cp, set()):
                if isinstance(value, CSet):
                    self.add(ep, value.elements)

    def _collect_fixpoint(self, fixpoint: Fixpoint, args) -> None:
        # Register column paths so S-atoms inside the body can flow.
        for index, name in enumerate(fixpoint.column_names, start=1):
            self._column_paths[(fixpoint.name, index)] = (name,)
        try:
            self._collect(fixpoint.body)
        finally:
            for index in range(1, fixpoint.arity + 1):
                self._column_paths.pop((fixpoint.name, index), None)
        if args is not None:
            for index, arg in enumerate(args, start=1):
                path = term_path(arg)
                if path is not None:
                    column = fixpoint.column_names[index - 1]
                    self.add(path, self.ranges.get((column,), ()))

    def _flow_fixpoint_term(self, path: Path, term: FixpointTerm) -> None:
        """Rule 9' range: evaluate the fixpoint per parameter binding."""
        fixpoint = term.fixpoint
        for env in self._parameter_bindings(fixpoint):
            value = self._evaluate_fixpoint_term(term, env)
            if value is not None:
                self.add(path, (value,))

    def _collect_rule9(self, formula: Forall) -> None:
        """Rule 9 range: the set {y | phi'(y)} per parameter binding."""
        pattern = _Analyzer._match_rule9(formula.body, formula.var.name)
        if pattern is None:
            return
        container_path, phi = pattern
        y_name = formula.var.name
        params = sorted(
            name for name in phi.free_variables() if name != y_name
        )
        y_type = self.variable_types.get(y_name)
        if y_type is None:
            return
        y_range = self.ranges.get((y_name,))
        if y_range is None:
            return
        for env in self._env_product(params):
            members = []
            for candidate in y_range:
                inner_env = dict(env)
                inner_env[y_name] = candidate
                if self._holds(phi, inner_env):
                    members.append(candidate)
            self.add(container_path, (CSet(members),))

    # -- helpers needing evaluation -----------------------------------------

    def _parameter_bindings(self, fixpoint: Fixpoint) -> Iterator[dict]:
        params = sorted(v.name for v in fixpoint.parameters())
        yield from self._env_product(params)

    def _env_product(self, names: list[str]) -> Iterator[dict]:
        import itertools as _it

        pools = []
        for name in names:
            pool = self.ranges.get((name,))
            if pool is None:
                return  # parameters not yet ranged; later round will retry
            pools.append(sorted(pool, key=repr))
        for combo in _it.product(*pools):
            yield dict(zip(names, combo))

    def _holds(self, formula: Formula, env: dict) -> bool:
        from .evaluation import Evaluator

        evaluator = Evaluator(
            self.instance.schema,
            variable_ranges={p[0]: v for p, v in self.ranges.items()
                             if len(p) == 1},
        )
        return evaluator.evaluate_formula(
            formula, self.instance, env,
            free_variable_types={
                n: self.variable_types[n]
                for n in formula.free_variables()
                if n in self.variable_types
            },
        )

    def _evaluate_fixpoint_term(self, term: FixpointTerm, env: dict):
        from .evaluation import Evaluator

        evaluator = Evaluator(
            self.instance.schema,
            variable_ranges={p[0]: v for p, v in self.ranges.items()
                             if len(p) == 1},
        )
        try:
            rows = evaluator.evaluate_fixpoint(term.fixpoint, self.instance, env)
        except Exception:  # noqa: BLE001 - retried on a later round
            return None
        if term.fixpoint.arity == 1:
            return CSet(row[0] for row in rows)
        return CSet(CTuple(row) for row in rows)

    # -- rules 2/3 on ranges --------------------------------------------------

    def _projection_closure(self) -> None:
        for path in list(self.ranges):
            name = path[0]
            typ = self.variable_types.get(name)
            if not isinstance(typ, TupleType):
                continue
            if len(path) == 1:
                for index in range(1, typ.arity + 1):
                    self.add((name, index), (
                        v.component(index) for v in self.ranges[path]
                        if isinstance(v, CTuple) and v.arity >= index
                    ))
        # rule 3: join component ranges into tuple ranges
        by_name: dict[str, set[int]] = {}
        for path in self.ranges:
            if len(path) == 2:
                by_name.setdefault(path[0], set()).add(path[1])
        import itertools as _it

        for name, indices in by_name.items():
            typ = self.variable_types.get(name)
            if not isinstance(typ, TupleType):
                continue
            needed = set(range(1, typ.arity + 1))
            if indices >= needed and (name,) not in self.ranges:
                pools = [sorted(self.ranges[(name, index)], key=repr)
                         for index in sorted(needed)]
                total = 1
                for pool in pools:
                    total *= len(pool)
                if total > 2_000_000:
                    raise RangeComputationError(
                        f"joined range for {name!r} would have {total} tuples"
                    )
                self.add((name,), (CTuple(combo)
                                   for combo in _it.product(*pools)))


def compute_ranges(
    query: Query,
    instance,
    schema=None,
    exempt_types: frozenset[Type] | set[Type] = frozenset(),
    max_exempt_domain: int = 1_000_000,
) -> dict[str, set[Value]]:
    """Derive candidate value sets per variable for a RR query.

    Returns a map from variable name to a finite set of values; feeding it
    to :class:`repro.core.evaluation.Evaluator` as ``variable_ranges``
    evaluates the query under the restricted-domain semantics, which for
    range-restricted queries coincides with the active-domain answer
    (Theorem 5.1).

    Raises :class:`RangeComputationError` if the analysis of
    Definition 5.2/5.3 rejects the query.
    """
    from .typecheck import check_query

    schema = schema or instance.schema
    result = analyze_query(query, schema, exempt_types=frozenset(exempt_types))
    if not result.is_range_restricted:
        raise RangeComputationError(
            "query is not range restricted: " + "; ".join(result.violations)
        )
    report = check_query(query, schema)
    computer = _RangeComputer(
        instance, report.variable_types, frozenset(schema.relation_names)
    )
    # Exempt variables (Theorem 5.3) range over their full domains —
    # polynomial by the density assumption that justifies the exemption.
    # Seeded *before* the flow iteration so dependent variables (e.g.
    # membership witnesses in the exempt value) inherit from them.
    if exempt_types:
        from ..objects.domains import materialize_domain
        from .evaluation import active_atoms
        from .syntax import constants_of

        atoms = active_atoms(instance, constants_of(query.body))
        for name, typ in report.variable_types.items():
            if typ in exempt_types:
                computer.add(
                    (name,),
                    materialize_domain(typ, atoms, max_exempt_domain))
    path_ranges = computer.run(query.body)
    ranges: dict[str, set[Value]] = {}
    for path, values in path_ranges.items():
        if len(path) == 1:
            ranges[path[0]] = values
    # Variables never seeded (possible only if analysis and flows
    # disagree) get empty ranges, which is sound for RR formulas.
    for name in report.variable_types:
        ranges.setdefault(name, set())
    return ranges
