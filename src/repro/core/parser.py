"""Textual syntax for CALC / CALC+IFP / CALC+PFP formulas and queries.

Grammar (precedence from loosest to tightest)::

    query    := '{' '[' var ':' type (',' var ':' type)* ']' '|' formula '}'
    formula  := iff
    iff      := implies ('<->' implies)*
    implies  := or ('->' implies)?                 (right associative)
    or       := and ('or' and)*
    and      := unary ('and' unary)*
    unary    := 'not' unary | quantifier | '(' formula ')' | atom
    quantifier := ('exists' | 'forall') bindings '(' formula ')'
    bindings := var ':' type (',' var ':' type)*
    atom     := fixpoint application? | relname '(' term* ')' | term op term
    op       := '=' | 'in' | 'sub'
    fixpoint := ('ifp' | 'pfp') '[' relname '(' bindings ')' ']' '(' formula ')'
    term     := constant | var ('.' INT)? | var ':' type | fixpoint
    constant := "'" label "'" | '{' constants '}' | '[' constants ']'
    type     := 'U' | '{' type '}' | '[' type (',' type)* ']'

Examples::

    parse_query("{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})](G(x,y) or "
                "exists z:{U} (S(x,z) and G(z,y)))(x, y)}")

    parse_formula("forall y:U (y in s <-> P(x:U, y))")

Variable types are inferred from their binding occurrence (quantifier,
fixpoint column, query head, or inline ``x:T`` annotation at first use).
"""

from __future__ import annotations

import re
from typing import NamedTuple

from ..objects.types import Type, parse_type
from ..objects.values import Atom, CSet, CTuple, Value
from .syntax import (
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    Term,
    Var,
)

__all__ = [
    "ParseError",
    "SourceMap",
    "Span",
    "parse_formula",
    "parse_formula_with_source",
    "parse_query",
    "parse_query_with_source",
    "parse_term",
]

KEYWORDS = {"exists", "forall", "not", "and", "or", "in", "sub", "ifp", "pfp"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow2><->)
  | (?P<arrow>->)
  | (?P<quoted>'[^']*')
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<sym>[{}\[\](),=.:|])
    """,
    re.VERBOSE,
)


class ParseError(Exception):
    """Raised on malformed formula/query text."""


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


class Span(NamedTuple):
    """Half-open character range ``[start, end)`` into the source text."""

    start: int
    end: int


class SourceMap:
    """Maps AST nodes back to spans of the text they were parsed from.

    AST nodes are immutable and compare structurally, so the map keys on
    node *identity*; it keeps references to the recorded nodes alive so
    ids stay valid for the map's lifetime.
    """

    def __init__(self, text: str):
        self.text = text
        self._spans: dict[int, Span] = {}
        self._nodes: list[object] = []

    def record(self, node: object, start: int, end: int) -> None:
        if id(node) not in self._spans:
            self._nodes.append(node)
        self._spans[id(node)] = Span(start, end)

    def span(self, node: object) -> Span | None:
        """The recorded span of ``node``, or None for synthesised nodes."""
        return self._spans.get(id(node))

    def snippet(self, node: object, max_length: int = 60) -> str | None:
        """The source text of ``node``, elided in the middle if long."""
        span = self.span(node)
        if span is None:
            return None
        text = self.text[span.start:span.end]
        if len(text) > max_length:
            half = (max_length - 3) // 2
            text = text[:half] + "..." + text[-half:]
        return text

    def line_col(self, offset: int) -> tuple[int, int]:
        """1-based (line, column) of a character offset."""
        prefix = self.text[:offset]
        line = prefix.count("\n") + 1
        column = offset - (prefix.rfind("\n") + 1) + 1
        return line, column


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str, source_map: SourceMap | None = None):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.source_map = source_map
        #: End offset of the most recently consumed token.
        self.last_end = 0
        #: Variable name -> declared type (flat; the paper renames apart).
        self.var_types: dict[str, Type] = {}

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token | None:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.text!r}")
        self.pos += 1
        self.last_end = token.pos + len(token.text)
        return token

    def _start(self) -> int:
        """Offset where the next node's span will start."""
        token = self._peek()
        return token.pos if token is not None else self.last_end

    def _record(self, node, start: int):
        """Record ``node`` as spanning [start, last consumed token end)."""
        if self.source_map is not None:
            self.source_map.record(node, start, self.last_end)
        return node

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} at position {token.pos}, got {token.text!r}"
            )
        return token

    def _at(self, text: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token.text == text

    # -- types ---------------------------------------------------------------

    def parse_type_expr(self) -> Type:
        """Consume a balanced type expression and delegate to parse_type.

        A type is ``U`` (one token) or starts with ``{``/``[`` and runs to
        the matching closer.
        """
        start = self._peek()
        if start is None:
            raise ParseError("expected a type")
        if start.text == "U":
            self._next()
            return parse_type("U")
        if start.text not in ("{", "["):
            raise ParseError(f"expected a type at position {start.pos}")
        depth = 0
        end = self.pos
        while end < len(self.tokens):
            text = self.tokens[end].text
            if text in ("{", "["):
                depth += 1
            elif text in ("}", "]"):
                depth -= 1
            end += 1
            if depth == 0:
                break
        if depth != 0:
            raise ParseError(f"unbalanced type starting at {start.pos}")
        last = self.tokens[end - 1]
        snippet = self.text[start.pos:last.pos + len(last.text)]
        self.pos = end
        try:
            return parse_type(snippet)
        except Exception as exc:  # noqa: BLE001
            raise ParseError(f"bad type {snippet!r}: {exc}") from exc

    # -- bindings ------------------------------------------------------------

    def parse_binding(self) -> tuple[str, Type]:
        name_token = self._next()
        if name_token.kind != "name" or name_token.text in KEYWORDS:
            raise ParseError(f"expected variable name at {name_token.pos}")
        self._expect(":")
        typ = self.parse_type_expr()
        self._declare(name_token.text, typ)
        return name_token.text, typ

    def _declare(self, name: str, typ: Type) -> None:
        existing = self.var_types.get(name)
        if existing is not None and existing != typ:
            raise ParseError(
                f"variable {name!r} redeclared with type {typ!r} "
                f"(was {existing!r})"
            )
        self.var_types[name] = typ

    def parse_bindings(self) -> list[tuple[str, Type]]:
        bindings = [self.parse_binding()]
        while self._at(","):
            self._next()
            bindings.append(self.parse_binding())
        return bindings

    # -- terms --------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("expected a term")
        start = token.pos
        if token.kind == "quoted":
            self._next()
            return self._record(Const(Atom(token.text[1:-1])), start)
        if token.text in ("{", "["):
            return self._record(Const(self._parse_value()), start)
        if token.text in ("ifp", "pfp"):
            return self._record(FixpointTerm(self.parse_fixpoint()), start)
        if token.kind == "name" and token.text not in KEYWORDS:
            self._next()
            name = token.text
            if self._at(":"):
                self._next()
                typ = self.parse_type_expr()
                self._declare(name, typ)
            var = Var(name, self.var_types.get(name))
            if self._at("."):
                self._record(var, start)
                self._next()
                index_token = self._next()
                if index_token.kind != "int":
                    raise ParseError(
                        f"expected projection index at {index_token.pos}"
                    )
                return self._record(Proj(var, int(index_token.text)), start)
            return self._record(var, start)
        raise ParseError(f"cannot parse term at {token.pos}: {token.text!r}")

    def _parse_value(self) -> Value:
        token = self._next()
        if token.kind == "quoted":
            return Atom(token.text[1:-1])
        if token.text == "{":
            elements: list[Value] = []
            if not self._at("}"):
                elements.append(self._parse_value())
                while self._at(","):
                    self._next()
                    elements.append(self._parse_value())
            self._expect("}")
            return CSet(elements)
        if token.text == "[":
            items = [self._parse_value()]
            while self._at(","):
                self._next()
                items.append(self._parse_value())
            self._expect("]")
            return CTuple(items)
        raise ParseError(f"cannot parse constant at {token.pos}: {token.text!r}")

    # -- fixpoints -------------------------------------------------------------

    def parse_fixpoint(self) -> Fixpoint:
        kind_token = self._next()
        start = kind_token.pos
        kind = {"ifp": "IFP", "pfp": "PFP"}[kind_token.text]
        self._expect("[")
        name_token = self._next()
        if name_token.kind != "name":
            raise ParseError(f"expected fixpoint relation name at {name_token.pos}")
        self._expect("(")
        columns = self.parse_bindings()
        self._expect(")")
        self._expect("]")
        self._expect("(")
        body = self.parse_formula()
        self._expect(")")
        return self._record(Fixpoint(kind, name_token.text, columns, body),
                            start)

    # -- formulas -----------------------------------------------------------------

    def parse_formula(self) -> Formula:
        return self._parse_iff()

    def _parse_iff(self) -> Formula:
        start = self._start()
        left = self._parse_implies()
        while self._at("<->"):
            self._next()
            right = self._parse_implies()
            left = self._record(Iff(left, right), start)
        return left

    def _parse_implies(self) -> Formula:
        start = self._start()
        left = self._parse_or()
        if self._at("->"):
            self._next()
            return self._record(Implies(left, self._parse_implies()), start)
        return left

    def _parse_or(self) -> Formula:
        start = self._start()
        operands = [self._parse_and()]
        while self._at("or"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return self._record(Or(operands), start)

    def _parse_and(self) -> Formula:
        start = self._start()
        operands = [self._parse_unary()]
        while self._at("and"):
            self._next()
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return self._record(And(operands), start)

    def _parse_unary(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ParseError("expected a formula")
        start = token.pos
        if token.text == "not":
            self._next()
            return self._record(Not(self._parse_unary()), start)
        if token.text in ("exists", "forall"):
            self._next()
            bindings = self.parse_bindings()
            self._expect("(")
            body = self.parse_formula()
            self._expect(")")
            for name, typ in reversed(bindings):
                cls = Exists if token.text == "exists" else Forall
                body = self._record(cls(Var(name, typ), body), start)
            return body
        if token.text == "(":
            # Could be a parenthesised formula; try it, fall back to atom.
            saved = self.pos
            try:
                self._next()
                inner = self.parse_formula()
                self._expect(")")
                return inner
            except ParseError:
                self.pos = saved
        return self._parse_atom()

    def _parse_atom(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ParseError("expected an atomic formula")
        start = token.pos
        if token.text in ("ifp", "pfp"):
            fixpoint = self.parse_fixpoint()
            if self._at("("):
                self._next()
                args = [self.parse_term()]
                while self._at(","):
                    self._next()
                    args.append(self.parse_term())
                self._expect(")")
                return self._record(FixpointPred(fixpoint, args), start)
            # A bare fixpoint must be part of a comparison, e.g. s = ifp[...]
            left: Term = self._record(FixpointTerm(fixpoint), start)
            return self._parse_comparison(left, start)
        # Relation atom: NAME '(' ... ')' where NAME is not a declared var.
        if (token.kind == "name" and token.text not in KEYWORDS
                and self._at("(", 1) and token.text not in self.var_types):
            self._next()
            self._next()  # '('
            args = [self.parse_term()]
            while self._at(","):
                self._next()
                args.append(self.parse_term())
            self._expect(")")
            return self._record(RelAtom(token.text, args), start)
        left = self.parse_term()
        return self._parse_comparison(left, start)

    def _parse_comparison(self, left: Term, start: int) -> Formula:
        op = self._next()
        if op.text == "=":
            return self._record(Equals(left, self.parse_term()), start)
        if op.text == "in":
            return self._record(In(left, self.parse_term()), start)
        if op.text == "sub":
            return self._record(Subset(left, self.parse_term()), start)
        raise ParseError(
            f"expected '=', 'in' or 'sub' at {op.pos}, got {op.text!r}"
        )

    # -- queries -------------------------------------------------------------

    def parse_query(self) -> Query:
        start = self._start()
        self._expect("{")
        self._expect("[")
        head = self.parse_bindings()
        self._expect("]")
        self._expect("|")
        body = self.parse_formula()
        self._expect("}")
        return self._record(Query(head, body), start)

    def finish(self) -> None:
        if self.pos != len(self.tokens):
            token = self.tokens[self.pos]
            raise ParseError(
                f"trailing input at position {token.pos}: {token.text!r}"
            )


def parse_formula(text: str) -> Formula:
    """Parse a formula; variable types come from binding occurrences or
    inline ``x:T`` annotations."""
    parser = _Parser(text)
    result = parser.parse_formula()
    parser.finish()
    return result


def parse_formula_with_source(text: str) -> tuple[Formula, SourceMap]:
    """Like :func:`parse_formula`, also returning a :class:`SourceMap`
    that locates every parsed subformula and term in ``text``."""
    source_map = SourceMap(text)
    parser = _Parser(text, source_map=source_map)
    result = parser.parse_formula()
    parser.finish()
    return result, source_map


def parse_query(text: str) -> Query:
    """Parse a query ``{[x:T, ...] | formula}``."""
    parser = _Parser(text)
    result = parser.parse_query()
    parser.finish()
    return result


def parse_query_with_source(text: str) -> tuple[Query, SourceMap]:
    """Like :func:`parse_query`, also returning a :class:`SourceMap`."""
    source_map = SourceMap(text)
    parser = _Parser(text, source_map=source_map)
    result = parser.parse_query()
    parser.finish()
    return result, source_map


def parse_term(text: str) -> Term:
    """Parse a single term (mostly useful for constants in tests)."""
    parser = _Parser(text)
    result = parser.parse_term()
    parser.finish()
    return result
