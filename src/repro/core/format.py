"""Pretty-printing of formulas and queries to the textual syntax.

``parse_query(format_query(q))`` reproduces ``q`` up to type-annotation
placement (the formatter annotates every variable at its binding site
and first free occurrence, which is what the parser needs).

The output follows the grammar of :mod:`repro.core.parser`; tests
round-trip the canonical paper queries through it.
"""

from __future__ import annotations

from ..objects.values import Atom, CSet, CTuple, Value
from .syntax import (
    And,
    Const,
    Equals,
    Exists,
    Fixpoint,
    FixpointPred,
    FixpointTerm,
    Forall,
    Formula,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Query,
    RelAtom,
    Subset,
    Term,
    Var,
)

__all__ = ["format_formula", "format_query", "format_term", "format_value"]


def format_value(value: Value) -> str:
    """Render a constant in the parser's literal syntax."""
    if isinstance(value, Atom):
        return f"'{value.label}'"
    if isinstance(value, CTuple):
        return "[" + ", ".join(format_value(item) for item in value.items) + "]"
    if isinstance(value, CSet):
        elements = sorted(format_value(element) for element in value.elements)
        return "{" + ", ".join(elements) + "}"
    raise TypeError(f"unknown value {value!r}")


class _Formatter:
    """Tracks which variables have been annotated already."""

    def __init__(self) -> None:
        self.annotated: set[str] = set()

    def var(self, var: Var, *, force_annotation: bool = False) -> str:
        if (force_annotation or var.name not in self.annotated) \
                and var.typ is not None:
            self.annotated.add(var.name)
            return f"{var.name}:{var.typ!r}"
        return var.name

    def term(self, term: Term) -> str:
        if isinstance(term, Const):
            return format_value(term.value)
        if isinstance(term, Var):
            return self.var(term)
        if isinstance(term, Proj):
            return f"{self.var(term.base)}.{term.index}"
        if isinstance(term, FixpointTerm):
            return self.fixpoint(term.fixpoint)
        raise TypeError(f"unknown term {term!r}")

    def fixpoint(self, fixpoint: Fixpoint) -> str:
        keyword = "ifp" if fixpoint.kind == "IFP" else "pfp"
        columns = ", ".join(f"{name}:{typ!r}"
                            for name, typ in fixpoint.columns)
        self.annotated.update(fixpoint.column_names)
        body = self.formula(fixpoint.body)
        return f"{keyword}[{fixpoint.name}({columns})]({body})"

    def formula(self, formula: Formula) -> str:
        if isinstance(formula, Equals):
            return f"{self.term(formula.left)} = {self.term(formula.right)}"
        if isinstance(formula, In):
            return (f"{self.term(formula.element)} in "
                    f"{self.term(formula.container)}")
        if isinstance(formula, Subset):
            return f"{self.term(formula.left)} sub {self.term(formula.right)}"
        if isinstance(formula, RelAtom):
            args = ", ".join(self.term(a) for a in formula.args)
            return f"{formula.name}({args})"
        if isinstance(formula, FixpointPred):
            head = self.fixpoint(formula.fixpoint)
            args = ", ".join(self.term(a) for a in formula.args)
            return f"{head}({args})"
        if isinstance(formula, Not):
            return f"not ({self.formula(formula.operand)})"
        if isinstance(formula, And):
            return " and ".join(f"({self.formula(op)})"
                                for op in formula.operands)
        if isinstance(formula, Or):
            return " or ".join(f"({self.formula(op)})"
                               for op in formula.operands)
        if isinstance(formula, Implies):
            return (f"({self.formula(formula.antecedent)}) -> "
                    f"({self.formula(formula.consequent)})")
        if isinstance(formula, Iff):
            return (f"({self.formula(formula.left)}) <-> "
                    f"({self.formula(formula.right)})")
        if isinstance(formula, (Exists, Forall)):
            keyword = "exists" if isinstance(formula, Exists) else "forall"
            binding = self.var(formula.var, force_annotation=True)
            return f"{keyword} {binding} ({self.formula(formula.body)})"
        raise TypeError(f"unknown formula {formula!r}")


def format_term(term: Term) -> str:
    """Render a term in parseable textual syntax."""
    return _Formatter().term(term)


def format_formula(formula: Formula) -> str:
    """Render a formula in parseable textual syntax."""
    return _Formatter().formula(formula)


def format_query(query: Query) -> str:
    """Render a query in parseable textual syntax."""
    formatter = _Formatter()
    head_parts = []
    for name, typ in query.head:
        formatter.annotated.add(name)
        head_parts.append(f"{name}:{typ!r}")
    body = formatter.formula(query.body)
    return "{[" + ", ".join(head_parts) + "] | " + body + "}"
