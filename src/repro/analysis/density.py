"""Density and sparsity of instance families (Definition 4.1).

A family of instances over an ``<i,k>``-database schema is

* **dense** w.r.t. ``<i,k>``-types if ``|dom(i,k,atom(I))| <= P(|I|)``
  for some fixed polynomial P — the database makes full use of its
  types;
* **sparse** if ``|I| <= P(log |dom(i,k,atom(I))|)`` — the top nesting
  level is "cosmetic".

Density and sparsity are properties of *families* (one polynomial for
all members), so the checkers come in two forms:

* **pointwise witnesses** (:func:`is_dense_witness`,
  :func:`is_sparse_witness`) check a single instance against an explicit
  polynomial bound ``coefficient * x**degree``;
* **family classification** (:func:`classify_family`) fits growth
  exponents over a size sweep — the empirical analogue, used by the
  benchmarks to confirm which generated workloads are dense and which
  are sparse.

Lemma 4.1 (cardinality- and size-based density/sparsity coincide) gets
an executable face too: :func:`lemma41_witness` computes all four
measures so the tests can confirm the polynomial relationships.

Because ``|dom(i,k,D)|`` is hyperexponential, the checkers work with
``log2`` of the domain cardinality (:func:`log2_dom_ik`), which only
requires materialising one fewer level of exponentials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from ..objects.domains import (
    DEFAULT_MAX_BITS,
    all_ik_types,
    dom_ik_cardinality,
    domain_cardinality,
)
from ..objects.encoding import domain_encoding_size
from ..objects.instance import Instance
from ..objects.types import AtomType, SetType, TupleType, Type
from .statistics import instance_stats, subobject_counts

__all__ = [
    "log2_domain_cardinality",
    "log2_dom_ik",
    "is_dense_witness",
    "is_sparse_witness",
    "is_dense_for_type",
    "is_sparse_for_type",
    "DensityVerdict",
    "classify_family",
    "lemma41_witness",
    "Lemma41Witness",
]


def log2_domain_cardinality(typ: Type, n: int,
                            max_bits: int = DEFAULT_MAX_BITS) -> float:
    """``log2 |dom(typ, D)|`` for ``|D| = n``, without building the top
    exponential.

    * ``U``: ``log2 n``;
    * ``{T}``: ``|dom(T, D)|`` exactly (one fewer exponential level);
    * tuples: sum of component logs.

    Raises :class:`DomainTooLarge` when even the inner cardinality is out
    of reach.
    """
    if n <= 0:
        return float("-inf")
    if isinstance(typ, AtomType):
        return math.log2(n)
    if isinstance(typ, SetType):
        return float(domain_cardinality(typ.element, n, max_bits))
    if isinstance(typ, TupleType):
        return sum(log2_domain_cardinality(c, n, max_bits)
                   for c in typ.components)
    raise TypeError(f"unknown type {typ!r}")


def log2_dom_ik(i: int, k: int, n: int) -> float:
    """``log2 |dom(i, k, D)|`` for ``|D| = n`` (typed disjoint union).

    The sum over types is dominated by the largest domain; the remaining
    types contribute at most ``log2(#types)`` bits, which we add for a
    faithful upper value.
    """
    if n <= 0:
        return float("-inf")
    types = all_ik_types(i, k)
    largest = max(log2_domain_cardinality(t, n) for t in types)
    return largest + math.log2(len(types))


# ---------------------------------------------------------------------------
# Pointwise witnesses
# ---------------------------------------------------------------------------

def is_dense_witness(inst: Instance, i: int, k: int,
                     degree: int = 3, coefficient: float = 8.0) -> bool:
    """Does ``|dom(i,k,atom(I))| <= coefficient * |I|**degree`` hold?

    Checked in log space: ``log2|dom| <= log2(coefficient) + degree*log2|I|``.
    """
    cardinality = max(1, inst.cardinality)
    log_dom = log2_dom_ik(i, k, len(inst.atoms()))
    return log_dom <= math.log2(coefficient) + degree * math.log2(cardinality + 1)


def is_sparse_witness(inst: Instance, i: int, k: int,
                      degree: int = 3, coefficient: float = 8.0) -> bool:
    """Does ``|I| <= coefficient * (log |dom(i,k,atom(I))|)**degree`` hold?"""
    log_dom = log2_dom_ik(i, k, len(inst.atoms()))
    if log_dom <= 0:
        return inst.cardinality <= coefficient
    return inst.cardinality <= coefficient * (log_dom ** degree)


def is_dense_for_type(inst: Instance, typ: Type,
                      degree: int = 3, coefficient: float = 8.0) -> bool:
    """Single-type density: sub-objects of type T vs ``|dom(T, atom(I))|``.

    Definition 4.1's per-type variant: ``|I|`` is replaced by the number
    of distinct sub-objects of type T in I.
    """
    counts = subobject_counts(inst)
    used = max(1, counts.get(typ, 0))
    log_dom = log2_domain_cardinality(typ, len(inst.atoms()))
    return log_dom <= math.log2(coefficient) + degree * math.log2(used + 1)


def is_sparse_for_type(inst: Instance, typ: Type,
                       degree: int = 3, coefficient: float = 8.0) -> bool:
    """Single-type sparsity: few T-objects relative to ``log |dom(T)|``."""
    counts = subobject_counts(inst)
    used = counts.get(typ, 0)
    log_dom = log2_domain_cardinality(typ, len(inst.atoms()))
    if log_dom <= 0:
        return used <= coefficient
    return used <= coefficient * (log_dom ** degree)


# ---------------------------------------------------------------------------
# Family classification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DensityVerdict:
    """Empirical classification of an instance family.

    Density means ``|dom| <= P(|I|)`` for one fixed polynomial, i.e.
    the *implied degree* ``log2|dom| / log2|I|`` stays bounded across the
    sweep.  Sparsity means ``|I| <= P(log|dom|)``, i.e. the implied
    degree ``log2|I| / log2(log2|dom|)`` stays bounded.  The verdicts
    require the respective degree sequence not to grow (last point within
    ``tolerance`` of the minimum observed degree).
    """

    points: tuple[tuple[int, float], ...]  # (|I|, log2|dom|)
    dense_degrees: tuple[float, ...]
    sparse_degrees: tuple[float, ...]
    looks_dense: bool
    looks_sparse: bool

    @property
    def dense_exponent(self) -> float | None:
        """The last implied density degree (polynomial degree witness)."""
        return self.dense_degrees[-1] if self.dense_degrees else None

    @property
    def sparse_exponent(self) -> float | None:
        """The last implied sparsity degree."""
        return self.sparse_degrees[-1] if self.sparse_degrees else None


def classify_family(
    make_instance: Callable[[int], Instance],
    i: int,
    k: int,
    sizes: Iterable[int],
    tolerance: float = 1.5,
) -> DensityVerdict:
    """Empirically classify a family as dense/sparse w.r.t. ``<i,k>``-types.

    ``make_instance(n)`` generates the family member of parameter n.  For
    each member, the implied polynomial degrees are computed; the family
    looks dense (resp. sparse) if the corresponding degree sequence does
    not grow — the final degree is at most ``tolerance`` times the
    minimum observed degree.
    """
    points: list[tuple[int, float]] = []
    for n in sizes:
        inst = make_instance(n)
        log_dom = log2_dom_ik(i, k, len(inst.atoms()))
        points.append((max(2, inst.cardinality), log_dom))
    dense_degrees = tuple(
        max(0.0, log_dom) / math.log2(card) for card, log_dom in points
    )
    sparse_degrees = tuple(
        math.log2(card) / max(1.0, math.log2(max(2.0, log_dom)))
        for card, log_dom in points
    )

    def stable(degrees: tuple[float, ...]) -> bool:
        if len(degrees) < 2:
            return False
        smallest = min(degrees)
        return degrees[-1] <= max(smallest * tolerance, smallest + 0.5)

    return DensityVerdict(
        points=tuple(points),
        dense_degrees=dense_degrees,
        sparse_degrees=sparse_degrees,
        looks_dense=stable(dense_degrees),
        looks_sparse=stable(sparse_degrees),
    )


# ---------------------------------------------------------------------------
# Lemma 4.1: size vs cardinality measures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Lemma41Witness:
    """All four measures of one instance, for Lemma 4.1's equivalences.

    Attributes:
        cardinality: ``|I|``.
        size: ``||I||``.
        dom_cardinality: ``|dom(i,k,atom(I))|`` (exact big int).
        dom_size: ``||dom(i,k,atom(I))||`` (exact big int).
    """

    cardinality: int
    size: int
    dom_cardinality: int
    dom_size: int

    @property
    def facts(self) -> dict[str, bool]:
        """The three "easily checked facts" (a)-(c) from the proof."""
        import math as _math

        log_dom = max(1.0, _math.log2(self.dom_cardinality))
        return {
            # (a) |I| <= ||I||
            "a_card_le_size": self.cardinality <= self.size,
            # (b) ||I|| <= |I| * P(log|dom|): generous fixed P(x) = 64 x^4
            "b_size_poly": self.size
            <= max(1, self.cardinality) * 64 * (log_dom ** 4),
            # (c) ||dom|| <= |dom| * P(log|dom|)
            "c_dom_size_poly": self.dom_size
            <= self.dom_cardinality * 64 * (log_dom ** 4),
        }


def lemma41_witness(inst: Instance, i: int, k: int,
                    max_bits: int = DEFAULT_MAX_BITS) -> Lemma41Witness:
    """Compute the four measures of Lemma 4.1 for one instance.

    Feasible only when ``|dom(i,k,atom(I))|`` fits in ``max_bits`` bits;
    raises :class:`DomainTooLarge` otherwise.
    """
    stats = instance_stats(inst)
    n = stats.n_atoms
    dom_card = dom_ik_cardinality(i, k, n, max_bits)
    dom_size = sum(
        domain_encoding_size(t, n) for t in all_ik_types(i, k)
    )
    return Lemma41Witness(
        cardinality=stats.cardinality,
        size=stats.size,
        dom_cardinality=dom_card,
        dom_size=dom_size,
    )
