"""Instance statistics used by the density/sparsity analysis.

Provides the paper's measures on instances — cardinality ``|I|``, size
``||I||``, the active atom set — plus per-type sub-object counts, which
the *single-type* variants of Definition 4.1 need ("|I| is replaced by
the cardinality of the set of (sub)-objects of type T in I").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..objects.encoding import instance_size
from ..objects.instance import Instance
from ..objects.types import Type
from ..objects.values import Value


@dataclass(frozen=True)
class InstanceStats:
    """Summary statistics of one instance.

    Attributes:
        cardinality: ``|I|`` — total tuple count.
        size: ``||I||`` — tape symbols of the standard encoding.
        n_atoms: ``|atom(I)|``.
        per_relation: tuple counts per relation name.
    """

    cardinality: int
    size: int
    n_atoms: int
    per_relation: dict[str, int]


def instance_stats(inst: Instance) -> InstanceStats:
    """Compute the summary statistics of an instance."""
    return InstanceStats(
        cardinality=inst.cardinality,
        size=instance_size(inst),
        n_atoms=len(inst.atoms()),
        per_relation={rel.name: rel.cardinality for rel in inst.relations()},
    )


def subobject_counts(inst: Instance) -> dict[Type, int]:
    """Count distinct sub-objects per inferred type across the instance.

    Each distinct value is counted once per type, matching the paper's
    "set of (sub)-objects of type T in I".
    """
    seen: dict[Type, set[Value]] = {}
    for rel in inst.relations():
        for row in rel.tuples:
            for sub in row.subobjects():
                typ = sub.infer_type()
                seen.setdefault(typ, set()).add(sub)
    return {typ: len(values) for typ, values in seen.items()}


def subobjects_of_type(inst: Instance, typ: Type) -> frozenset[Value]:
    """The distinct sub-objects of exactly the given (inferred) type."""
    result: set[Value] = set()
    for rel in inst.relations():
        for row in rel.tuples:
            for sub in row.subobjects():
                if sub.conforms_to(typ) and sub.infer_type() == typ:
                    result.add(sub)
    return frozenset(result)


def type_usage_histogram(inst: Instance) -> Counter:
    """Occurrences (not distinct values) of each inferred type.

    A quick view of how the database "uses" its types (Section 4's
    opening discussion).
    """
    histogram: Counter = Counter()
    for rel in inst.relations():
        for row in rel.tuples:
            for sub in row.subobjects():
                histogram[sub.infer_type()] += 1
    return histogram
