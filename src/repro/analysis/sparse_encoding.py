"""Fixpoint elimination on sparse inputs (Proposition 5.2's encoding).

Proposition 5.2 shows ``RR-CALC_i = RR-(CALC_i + IFP)`` on inputs sparse
w.r.t. ``<i,k>``-types.  The proof encodes every set-height-``i`` object
occurring in the database by a fixed-arity tuple of lower-height objects
(the relation ``Q_T``: ``o = { y | Q_T(x⃗, y) }`` for an m-tuple ``x⃗``),
after which all inductively defined relations involve only height
``i - 1`` objects and the fixpoint can be simulated within ``CALC_i``.

:class:`SparseEncoding` is that construction made executable:

* it collects the height-``i`` (set) objects of the instance, checks
  there are few enough of them to index by ``m``-tuples of atoms
  (that is what sparsity buys), and materialises ``Q_T``;
* :meth:`SparseEncoding.encode_instance` rewrites the instance replacing
  each encoded set by its index tuple (so a graph over ``{U}``-nodes
  becomes a graph over ``[U,...,U]``-nodes — set height 0);
* :meth:`SparseEncoding.decode_rows` maps answers back.

The tests and the ``bench_sparse_collapse`` benchmark run a fixpoint
query both directly (over the nested objects) and through the encoding
(fixpoint over height-0 tuples only), and confirm the answers coincide —
the executable content of Proposition 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..objects.instance import Instance
from ..objects.ordering import AtomOrder
from ..objects.schema import DatabaseSchema, RelationSchema
from ..objects.types import AtomType, SetType, TupleType, Type, U
from ..objects.values import Atom, CSet, CTuple, Value

__all__ = ["SparseEncodingError", "SparseEncoding"]


class SparseEncodingError(Exception):
    """Raised when the instance is not sparse enough to encode."""


@dataclass(frozen=True)
class _Codebook:
    """Bijection between encoded objects and their index tuples."""

    to_index: dict[Value, CTuple]
    from_index: dict[CTuple, Value]


class SparseEncoding:
    """Tuple-encoding of the set objects of a sparse instance.

    Parameters:
        inst: the input instance.
        target_height: objects of exactly this set height get encoded
            (defaults to the schema's maximal set height).
        order: atom order used to index objects deterministically.

    The index arity m is the least one with ``n**m`` at least the number
    of encoded objects — sparsity guarantees m stays bounded as the
    family grows (polynomially many objects vs ``n**m`` index space).
    """

    def __init__(self, inst: Instance, target_height: int | None = None,
                 order: AtomOrder | None = None):
        self.inst = inst
        self.order = order or AtomOrder.sorted_by_label(inst.atoms())
        if len(self.order) == 0:
            raise SparseEncodingError("instance has no atoms")
        heights = [rel.set_height for rel in inst.schema]
        self.target_height = (max(heights) if target_height is None
                              else target_height)
        if self.target_height < 1:
            raise SparseEncodingError("nothing to encode: schema is flat")
        self._codebook = self._build_codebook()

    # -- construction -------------------------------------------------------

    def _collect_objects(self) -> list[Value]:
        """Distinct set objects of the target height, deterministic order."""
        from ..objects.ordering import sort_key

        seen: set[Value] = set()
        for rel in self.inst.relations():
            for row in rel.tuples:
                for sub in row.subobjects():
                    if (isinstance(sub, CSet)
                            and sub.infer_type().set_height
                            == self.target_height):
                        seen.add(sub)
        return sorted(seen, key=lambda v: sort_key(v, self.order))

    def _build_codebook(self) -> _Codebook:
        objects = self._collect_objects()
        n = len(self.order)
        arity = 1
        while n ** arity < len(objects):
            arity += 1
        if arity > 8:
            raise SparseEncodingError(
                f"{len(objects)} objects need index arity {arity} over "
                f"{n} atoms; the instance is not sparse"
            )
        self.index_arity = arity
        to_index: dict[Value, CTuple] = {}
        from_index: dict[CTuple, Value] = {}
        for position, obj in enumerate(objects):
            digits = []
            remaining = position
            for _ in range(arity):
                digits.append(self.order.atoms[remaining % n])
                remaining //= n
            index = CTuple(reversed(digits))
            to_index[obj] = index
            from_index[index] = obj
        return _Codebook(to_index, from_index)

    # -- public API ---------------------------------------------------------

    @property
    def encoded_objects(self) -> tuple[Value, ...]:
        return tuple(self._codebook.to_index)

    @property
    def index_type(self) -> Type:
        if self.index_arity == 1:
            return U
        return TupleType([U] * self.index_arity)

    def encode_value(self, value: Value) -> Value:
        """Replace encoded sets by their index tuples, recursively."""
        index = self._codebook.to_index.get(value)
        if index is not None:
            return index if self.index_arity > 1 else index.component(1)
        if isinstance(value, Atom):
            return value
        if isinstance(value, CTuple):
            return CTuple(self.encode_value(item) for item in value.items)
        if isinstance(value, CSet):
            return CSet(self.encode_value(element) for element in value)
        raise SparseEncodingError(f"unknown value {value!r}")

    def decode_value(self, value: Value) -> Value:
        """Inverse of :meth:`encode_value` on index tuples."""
        probe = value if isinstance(value, CTuple) else CTuple((value,)) \
            if self.index_arity == 1 and isinstance(value, Atom) else value
        if isinstance(probe, CTuple) and probe in self._codebook.from_index:
            return self._codebook.from_index[probe]
        if isinstance(value, Atom):
            return value
        if isinstance(value, CTuple):
            return CTuple(self.decode_value(item) for item in value.items)
        if isinstance(value, CSet):
            return CSet(self.decode_value(element) for element in value)
        raise SparseEncodingError(f"unknown value {value!r}")

    def _encode_column_type(self, typ: Type) -> Type:
        if typ.set_height == self.target_height and isinstance(typ, SetType):
            return self.index_type
        if isinstance(typ, (AtomType,)):
            return typ
        if isinstance(typ, TupleType):
            return TupleType(self._encode_column_type(c)
                             for c in typ.components)
        if isinstance(typ, SetType):
            return SetType(self._encode_column_type(typ.element))
        raise SparseEncodingError(f"unknown type {typ!r}")

    def encode_instance(self) -> Instance:
        """The instance with encoded objects replaced by index tuples.

        Column types of height ``target_height`` set type become the
        index tuple type, dropping the schema's set height by one (or to
        zero for height-1 sets).
        """
        relations = []
        data: dict[str, list[CTuple]] = {}
        for rel in self.inst.relations():
            encoded_types = [self._encode_column_type(t)
                             for t in rel.schema.column_types]
            relations.append(RelationSchema(rel.name, encoded_types))
            data[rel.name] = [
                CTuple(self.encode_value(item) for item in row.items)
                for row in rel.tuples
            ]
        return Instance(DatabaseSchema(relations), data)

    def q_relation_rows(self) -> frozenset[tuple[Value, ...]]:
        """The proof's ``Q_T``: rows ``(x1, ..., xm, y)`` with ``y`` a
        member of the object encoded by the index tuple ``(x1..xm)``."""
        rows: set[tuple[Value, ...]] = set()
        for obj, index in self._codebook.to_index.items():
            assert isinstance(obj, CSet)
            for member in obj:
                rows.add(tuple(index.items) + (member,))
        return frozenset(rows)

    def decode_rows(self, rows) -> frozenset[CTuple]:
        """Decode answer rows (CTuples or value tuples) back to objects."""
        decoded = set()
        for row in rows:
            items = row.items if isinstance(row, CTuple) else row
            decoded.add(CTuple(self.decode_value(item) for item in items))
        return frozenset(decoded)
