"""Density/sparsity analysis of complex object databases (Section 4)."""

from .density import (
    DensityVerdict,
    Lemma41Witness,
    classify_family,
    is_dense_for_type,
    is_dense_witness,
    is_sparse_for_type,
    is_sparse_witness,
    lemma41_witness,
    log2_dom_ik,
    log2_domain_cardinality,
)
from .sorts import (
    SAtom,
    SSet,
    STuple,
    SortAssignment,
    SortError,
    SortedType,
    is_dense_for_sorted_type,
    is_sparse_for_sorted_type,
    log2_sorted_domain_cardinality,
    parse_sorted_type,
    sorted_domain_cardinality,
    sorted_subobjects,
)
from .sparse_encoding import SparseEncoding, SparseEncodingError
from .statistics import (
    InstanceStats,
    instance_stats,
    subobject_counts,
    subobjects_of_type,
    type_usage_histogram,
)

__all__ = [
    "SAtom", "SSet", "STuple", "SortAssignment", "SortError",
    "SortedType", "is_dense_for_sorted_type", "is_sparse_for_sorted_type",
    "log2_sorted_domain_cardinality", "parse_sorted_type",
    "sorted_domain_cardinality", "sorted_subobjects",
    "SparseEncoding", "SparseEncodingError",
    "DensityVerdict", "Lemma41Witness", "classify_family",
    "is_dense_for_type", "is_dense_witness", "is_sparse_for_type",
    "is_sparse_witness", "lemma41_witness", "log2_dom_ik",
    "log2_domain_cardinality",
    "InstanceStats", "instance_stats", "subobject_counts",
    "subobjects_of_type", "type_usage_histogram",
]
