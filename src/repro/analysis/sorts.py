"""Multi-sorted density and sparsity (Remark 4.1 / the paper's future work).

Remark 4.1: "In practice, density and sparsity are more likely to hold
relative to types over particular *sorts* ... a database involving
employees, days-of-the-week, and departments might be sparse with
respect to sets of employees but dense with respect to sets of
days-of-the-week"; the conclusion lists the multi-sorted case as future
work.  This module implements it:

* a :class:`SortAssignment` partitions the atom universe into named
  sorts;
* *sorted types* (:class:`SAtom`, :class:`SSet`, :class:`STuple`)
  annotate each ``U`` leaf with a sort, e.g. ``{U@day}`` or
  ``[U@emp, {U@day}]``; they erase to ordinary types;
* :func:`sorted_domain_cardinality` computes ``|dom(T, D_sorts)|`` where
  each leaf draws from its own sort's atoms;
* :func:`is_dense_for_sorted_type` / :func:`is_sparse_for_sorted_type`
  are the per-sorted-type analogues of Definition 4.1, counting the
  instance's sub-objects that inhabit the sorted type.

The complexity reading is exactly Remark 4.1's: quantifying over a
sorted type that the database is dense for costs no more than scanning
the database, while a sparse sorted type's domain dwarfs it.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping

from ..objects.instance import Instance
from ..objects.types import SetType, TupleType, Type, U
from ..objects.values import Atom, CSet, CTuple, Value

__all__ = [
    "SortError",
    "SortAssignment",
    "SAtom",
    "SSet",
    "STuple",
    "SortedType",
    "parse_sorted_type",
    "sorted_domain_cardinality",
    "log2_sorted_domain_cardinality",
    "sorted_subobjects",
    "is_dense_for_sorted_type",
    "is_sparse_for_sorted_type",
]


class SortError(Exception):
    """Raised for unknown sorts or malformed sorted types."""


class SortAssignment:
    """A partition of atoms into named sorts.

    Built either from an explicit mapping or from label prefixes
    (``SortAssignment.by_prefix({"e": "emp", "d": "day"})``); atoms with
    no sort raise at lookup.
    """

    def __init__(self, mapping: Mapping[Atom, str]):
        self._mapping = dict(mapping)

    @classmethod
    def by_prefix(cls, prefixes: Mapping[str, str],
                  atoms: Iterable[Atom]) -> "SortAssignment":
        """Assign each atom the sort of the longest matching label prefix."""
        ordered = sorted(prefixes.items(), key=lambda kv: -len(kv[0]))
        mapping: dict[Atom, str] = {}
        for a in atoms:
            label = str(a.label)
            for prefix, sort in ordered:
                if label.startswith(prefix):
                    mapping[a] = sort
                    break
        return cls(mapping)

    def sort_of(self, a: Atom) -> str:
        try:
            return self._mapping[a]
        except KeyError:
            raise SortError(f"atom {a!r} has no sort") from None

    def counts(self) -> dict[str, int]:
        """Number of atoms per sort."""
        result: dict[str, int] = {}
        for sort in self._mapping.values():
            result[sort] = result.get(sort, 0) + 1
        return result

    def atoms_of(self, sort: str) -> frozenset[Atom]:
        return frozenset(a for a, s in self._mapping.items() if s == sort)

    def __contains__(self, a: object) -> bool:
        return a in self._mapping


# ---------------------------------------------------------------------------
# Sorted types
# ---------------------------------------------------------------------------

class SortedType:
    """Abstract base of sorted type trees."""

    def erase(self) -> Type:
        """The underlying unsorted type."""
        raise NotImplementedError

    def conforms(self, value: Value, sorts: SortAssignment) -> bool:
        """Does the value inhabit this sorted type's domain?"""
        raise NotImplementedError


class SAtom(SortedType):
    """``U@sort`` — an atomic leaf drawing from one sort."""

    __slots__ = ("sort",)

    def __init__(self, sort: str):
        if not sort or not isinstance(sort, str):
            raise SortError(f"bad sort name {sort!r}")
        object.__setattr__(self, "sort", sort)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SAtom is immutable")

    def erase(self) -> Type:
        return U

    def conforms(self, value: Value, sorts: SortAssignment) -> bool:
        return isinstance(value, Atom) and value in sorts \
            and sorts.sort_of(value) == self.sort

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SAtom) and self.sort == other.sort

    def __hash__(self) -> int:
        return hash((SAtom, self.sort))

    def __repr__(self) -> str:
        return f"U@{self.sort}"


class SSet(SortedType):
    """``{T}`` over a sorted element type."""

    __slots__ = ("element",)

    def __init__(self, element: SortedType):
        object.__setattr__(self, "element", element)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SSet is immutable")

    def erase(self) -> Type:
        return SetType(self.element.erase())

    def conforms(self, value: Value, sorts: SortAssignment) -> bool:
        return isinstance(value, CSet) and all(
            self.element.conforms(e, sorts) for e in value
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SSet) and self.element == other.element

    def __hash__(self) -> int:
        return hash((SSet, self.element))

    def __repr__(self) -> str:
        return "{" + repr(self.element) + "}"


class STuple(SortedType):
    """``[T1, ..., Tn]`` over sorted component types."""

    __slots__ = ("components",)

    def __init__(self, components: Iterable[SortedType]):
        components = tuple(components)
        if not components:
            raise SortError("sorted tuple needs components")
        object.__setattr__(self, "components", components)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("STuple is immutable")

    def erase(self) -> Type:
        return TupleType(c.erase() for c in self.components)

    def conforms(self, value: Value, sorts: SortAssignment) -> bool:
        return (isinstance(value, CTuple)
                and value.arity == len(self.components)
                and all(c.conforms(item, sorts)
                        for c, item in zip(self.components, value.items)))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, STuple) and self.components == other.components

    def __hash__(self) -> int:
        return hash((STuple, self.components))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(c) for c in self.components) + "]"


_SORT_TOKEN = re.compile(r"U@([A-Za-z_][A-Za-z_0-9]*)")


def parse_sorted_type(text: str) -> SortedType:
    """Parse ``"{U@day}"``, ``"[U@emp, {U@day}]"`` and friends."""
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        return SSet(parse_sorted_type(text[1:-1]))
    if text.startswith("[") and text.endswith("]"):
        components = []
        depth = 0
        current = ""
        for ch in text[1:-1]:
            if ch in "{[":
                depth += 1
            elif ch in "}]":
                depth -= 1
            if ch == "," and depth == 0:
                components.append(current)
                current = ""
            else:
                current += ch
        components.append(current)
        return STuple(parse_sorted_type(c) for c in components)
    match = _SORT_TOKEN.fullmatch(text)
    if match:
        return SAtom(match.group(1))
    raise SortError(f"cannot parse sorted type {text!r}")


# ---------------------------------------------------------------------------
# Sorted domains and density
# ---------------------------------------------------------------------------

def sorted_domain_cardinality(styp: SortedType,
                              counts: Mapping[str, int]) -> int:
    """``|dom(styp)|`` with each leaf drawing from its sort's atoms."""
    if isinstance(styp, SAtom):
        try:
            return counts[styp.sort]
        except KeyError:
            raise SortError(f"no atom count for sort {styp.sort!r}") from None
    if isinstance(styp, SSet):
        return 2 ** sorted_domain_cardinality(styp.element, counts)
    if isinstance(styp, STuple):
        result = 1
        for component in styp.components:
            result *= sorted_domain_cardinality(component, counts)
        return result
    raise SortError(f"unknown sorted type {styp!r}")


def log2_sorted_domain_cardinality(styp: SortedType,
                                   counts: Mapping[str, int]) -> float:
    """``log2 |dom(styp)|`` without the top exponential."""
    if isinstance(styp, SAtom):
        count = counts.get(styp.sort, 0)
        return math.log2(count) if count else float("-inf")
    if isinstance(styp, SSet):
        return float(sorted_domain_cardinality(styp.element, counts))
    if isinstance(styp, STuple):
        return sum(log2_sorted_domain_cardinality(c, counts)
                   for c in styp.components)
    raise SortError(f"unknown sorted type {styp!r}")


def sorted_subobjects(inst: Instance, styp: SortedType,
                      sorts: SortAssignment) -> frozenset[Value]:
    """Distinct sub-objects of the instance inhabiting the sorted type."""
    result: set[Value] = set()
    erased = styp.erase()
    for rel in inst.relations():
        for row in rel.tuples:
            for sub in row.subobjects():
                if sub.conforms_to(erased) and styp.conforms(sub, sorts):
                    result.add(sub)
    return frozenset(result)


def is_dense_for_sorted_type(
    inst: Instance,
    styp: SortedType,
    sorts: SortAssignment,
    degree: int = 3,
    coefficient: float = 8.0,
) -> bool:
    """Per-sorted-type density: used objects vs the *sorted* domain."""
    used = max(1, len(sorted_subobjects(inst, styp, sorts)))
    log_dom = log2_sorted_domain_cardinality(styp, sorts.counts())
    return log_dom <= math.log2(coefficient) + degree * math.log2(used + 1)


def is_sparse_for_sorted_type(
    inst: Instance,
    styp: SortedType,
    sorts: SortAssignment,
    degree: int = 3,
    coefficient: float = 8.0,
) -> bool:
    """Per-sorted-type sparsity: few objects relative to ``log |dom|``."""
    used = len(sorted_subobjects(inst, styp, sorts))
    log_dom = log2_sorted_domain_cardinality(styp, sorts.counts())
    if log_dom <= 0:
        return used <= coefficient
    return used <= coefficient * (log_dom ** degree)
