"""Program-level static analysis of inf-Datalog programs.

The translation-based pipeline (:mod:`repro.lint.datalog`) sees a
Datalog program only *through* its CALC+IFP image; this module analyzes
the program's own structure, in four passes (each a ``repro.obs`` span):

1. **dependency** — the labelled predicate dependency graph
   (:meth:`repro.datalog.syntax.Program.dependency_edges`), its Tarjan
   SCC condensation, the stratification check (``DEP001`` strata
   report, ``DEP002`` negation-in-a-cycle error) and a linear vs.
   non-linear recursion classification per SCC;
2. **dead code** — rules unreachable from the query predicate
   (``DED001``), rules that can never fire because a positive body
   predicate has no rules and no possible EDB facts (``DED002``), and
   exact duplicate rules (``DED003``);
3. **adornment** — bound/free binding-pattern propagation from the
   query's constants (:mod:`repro.lint.adornment`): the adorned-program
   table (``ADN001``) and the magic-sets feasibility verdict
   (``ADN002``/``ADN003``);
4. **routing** — one :class:`RoutingVerdict` per SCC (nonrecursive /
   linear-recursive / stratified-recursive / unstratified), the typed
   artifact the complexity-routed backend planner (ROADMAP item 2)
   consumes instead of re-deriving recursion structure.

The verdicts matter because they are exactly what decides *where* a
predicate can execute: non-recursive SCCs compile to plain SQL, linear
recursion to recursive CTEs, stratified non-linear recursion to the
semi-naive engine, and unstratified negation only to the inflationary
engine (cf. Grohe–Schwandtner's Datalog complexity analysis and the
Bourhis–Krötzsch–Rudolph containment fragments in PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..datalog.syntax import DConst, DepEdge, Literal, Program, Rule
from ..objects.schema import DatabaseSchema
from ..obs import get_tracer
from .adornment import AdornmentResult, adorn_program
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "ProgramAnalysis",
    "RoutingVerdict",
    "analyze_program",
    "run_program_passes",
]

#: Version of the ``--json`` ``program`` section layout.
PROGRAM_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RoutingVerdict:
    """Per-SCC execution-routing verdict for the backend planner.

    Attributes:
        scc: the member predicates, sorted.
        recursion: ``"none"`` / ``"linear"`` / ``"nonlinear"``.
        stratum: the SCC's stratum index, or ``None`` when the program
            is unstratified (strata are then undefined globally).
        negated_in_cycle: True when a negative dependency edge runs
            inside this SCC (the local stratification violation).
        route: ``"nonrecursive"`` | ``"linear-recursive"`` |
            ``"stratified-recursive"`` | ``"unstratified"``.
    """

    scc: tuple[str, ...]
    recursion: str
    stratum: int | None
    negated_in_cycle: bool
    route: str

    def to_dict(self) -> dict:
        return {
            "scc": list(self.scc),
            "recursion": self.recursion,
            "stratum": self.stratum,
            "negated_in_cycle": self.negated_in_cycle,
            "route": self.route,
        }


@dataclass(frozen=True)
class DeadRule:
    """One rule the dead-code pass condemns, and why (a ``DED*`` code)."""

    index: int  # position in program.rules
    rule: Rule
    code: str  # "DED001" | "DED002" | "DED003"
    reason: str

    def to_dict(self) -> dict:
        return {"index": self.index, "rule": repr(self.rule),
                "code": self.code, "reason": self.reason}


@dataclass
class ProgramAnalysis:
    """Everything the program-level passes derive, as one typed artifact."""

    program: Program
    query: Literal
    edges: tuple[DepEdge, ...]
    sccs: tuple[tuple[str, ...], ...]  # bottom-up topological order
    scc_of: dict[str, int]
    recursion: dict[int, str]  # scc index -> none | linear | nonlinear
    strata: dict[str, int] | None  # None iff unstratified
    negative_cycle_edges: tuple[DepEdge, ...]
    reachable: frozenset[str]
    dead_rules: tuple[DeadRule, ...]
    adornment: AdornmentResult
    routing: tuple[RoutingVerdict, ...]

    @property
    def stratified(self) -> bool:
        return self.strata is not None

    def live_program(self) -> Program:
        """The program with every dead rule removed (same IDB types).

        Deleting ``DED001``/``DED002``/``DED003`` rules is
        semantics-preserving for the query predicate — the differential
        harness in ``tests/test_program_differential.py`` holds this
        module to that claim.
        """
        dead = {entry.index for entry in self.dead_rules}
        return Program(
            [rule for index, rule in enumerate(self.program.rules)
             if index not in dead],
            {name: types for name, types in self.program.idb_types.items()},
        )

    def to_dict(self) -> dict:
        """The schema-versioned ``program`` section of ``lint --json``."""
        return {
            "schema": PROGRAM_SCHEMA_VERSION,
            "query": repr(self.query),
            "edges": [{"source": e.source, "target": e.target,
                       "positive": e.positive}
                      for e in sorted(self.edges)],
            "sccs": [list(scc) for scc in self.sccs],
            "stratified": self.stratified,
            "strata": (dict(sorted(self.strata.items()))
                       if self.strata is not None else None),
            "reachable": sorted(self.reachable),
            "dead_rules": [entry.to_dict() for entry in self.dead_rules],
            "adornments": {
                predicate: list(adornments)
                for predicate, adornments
                in sorted(self.adornment.table.items())
            },
            "magic_feasible": self.adornment.feasible,
            "blockers": [blocker.to_dict()
                         for blocker in self.adornment.blockers],
            "routing": [verdict.to_dict() for verdict in self.routing],
        }


# ---------------------------------------------------------------------------
# Graph machinery
# ---------------------------------------------------------------------------

def _tarjan_sccs(nodes: Iterable[str],
                 successors: Mapping[str, set[str]]) -> list[tuple[str, ...]]:
    """Tarjan's algorithm, iterative (programs can be deep chains).

    Returns SCCs in reverse topological order of the condensation —
    i.e. every SCC appears *after* the SCCs it depends on (bottom-up).
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = [0]

    for root in sorted(nodes):
        if root in index_of:
            continue
        # Each frame: (node, iterator over its successors).
        work = [(root, iter(sorted(successors.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, iter(sorted(successors.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
    return sccs


def _successor_map(nodes: Iterable[str],
                   edges: Iterable[DepEdge]) -> dict[str, set[str]]:
    result: dict[str, set[str]] = {node: set() for node in nodes}
    for edge in edges:
        result.setdefault(edge.source, set()).add(edge.target)
        result.setdefault(edge.target, set())
    return result


def _classify_recursion(program: Program, scc: tuple[str, ...],
                        edges: Iterable[DepEdge]) -> str:
    """``none`` / ``linear`` / ``nonlinear`` for one SCC.

    An SCC is recursive when some dependency edge stays inside it; the
    recursion is *linear* when every rule headed in the SCC has at most
    one positive body literal over an SCC member (the recursive-CTE
    compilable shape), *non-linear* otherwise.
    """
    members = set(scc)
    internal = any(e.source in members and e.target in members
                   for e in edges)
    if not internal:
        return "none"
    for rule in program.rules:
        if rule.head.predicate not in members:
            continue
        recursive_literals = sum(
            1 for literal in rule.body
            if isinstance(literal, Literal) and literal.positive
            and literal.predicate in members
        )
        if recursive_literals > 1:
            return "nonlinear"
    return "linear"


def _compute_strata(sccs: list[tuple[str, ...]],
                    scc_of: dict[str, int],
                    edges: Iterable[DepEdge]) -> dict[str, int] | None:
    """Stratum per predicate, or ``None`` if a negative edge closes a
    cycle.  ``sccs`` must be bottom-up (dependencies first), which
    Tarjan's emission order guarantees.
    """
    negative_internal = [
        e for e in edges
        if not e.positive and scc_of[e.source] == scc_of[e.target]
    ]
    if negative_internal:
        return None
    stratum = [0] * len(sccs)
    for edge in sorted(edges):
        source_scc, target_scc = scc_of[edge.source], scc_of[edge.target]
        if source_scc == target_scc:
            continue
        required = stratum[target_scc] + (0 if edge.positive else 1)
        if stratum[source_scc] < required:
            stratum[source_scc] = required
    # One relaxation pass suffices: bottom-up SCC order means every
    # cross-edge goes from a later SCC to an earlier one, but replay
    # until fixpoint to stay independent of that invariant.
    changed = True
    while changed:
        changed = False
        for edge in edges:
            source_scc, target_scc = scc_of[edge.source], scc_of[edge.target]
            if source_scc == target_scc:
                continue
            required = stratum[target_scc] + (0 if edge.positive else 1)
            if stratum[source_scc] < required:
                stratum[source_scc] = required
                changed = True
    return {predicate: stratum[index]
            for predicate, index in scc_of.items()}


def _reachable_from(roots: Iterable[str],
                    successors: Mapping[str, set[str]]) -> frozenset[str]:
    seen: set[str] = set()
    frontier = [root for root in roots]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(successors.get(node, ()))
    return frozenset(seen)


def _possibly_nonempty(program: Program,
                       schema: DatabaseSchema | None) -> frozenset[str]:
    """Least fixpoint of "this predicate can hold at least one row".

    EDB predicates are possibly nonempty when the schema declares them
    (or when no schema is given); an IDB predicate is possibly nonempty
    when some rule for it has every *positive* relation literal over a
    possibly-nonempty predicate (negated literals and built-ins never
    block a rule from firing on some instance).
    """
    idb = program.idb_predicates
    nonempty: set[str] = set()
    for predicate in program.predicates():
        if predicate in idb:
            continue
        if schema is None or predicate in schema:
            nonempty.add(predicate)
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if rule.head.predicate in nonempty:
                continue
            if all(literal.predicate in nonempty
                   for literal in rule.body
                   if isinstance(literal, Literal) and literal.positive):
                nonempty.add(rule.head.predicate)
                changed = True
    return frozenset(nonempty)


# ---------------------------------------------------------------------------
# The analysis driver
# ---------------------------------------------------------------------------

def default_query(program: Program) -> Literal:
    """The query literal assumed when none is given.

    The *output* predicates — IDB predicates no rule body references —
    are the natural roots; with several (or none), every head predicate
    of the program counts as queried, which makes the all-free analysis
    conservative rather than wrong.  A single root becomes the query
    literal with fresh free variables.
    """
    referenced = {literal.predicate
                  for rule in program.rules
                  for literal in rule.body
                  if isinstance(literal, Literal)}
    roots = sorted(p for p in program.idb_types if p not in referenced)
    if len(roots) != 1:
        # Ambiguous: fall back to the first declared IDB predicate but
        # keep every head reachable (handled by the caller passing
        # all-heads roots to the reachability computation).
        roots = sorted(program.idb_types)
    name = roots[0]
    arity = len(program.idb_types[name])
    return Literal(name, [f"q{i}" for i in range(1, arity + 1)])


def analyze_program(
    program: Program,
    schema: DatabaseSchema | None = None,
    query: Literal | str | None = None,
) -> ProgramAnalysis:
    """Run the four program-level passes; returns the typed artifact.

    ``query`` selects the demand entry point: a :class:`Literal`
    (constants become bound positions for the adornment pass), a bare
    predicate name (all positions free), or ``None`` for
    :func:`default_query`'s root inference.  Reachability (``DED001``)
    is judged from the query predicate when one is given or inferable;
    with an ambiguous default every IDB predicate is treated as live.
    """
    explicit = query is not None
    if isinstance(query, str):
        if query not in program.idb_types:
            raise ValueError(
                f"query predicate {query!r} is not an IDB predicate "
                f"of the program ({sorted(program.idb_types)})"
            )
        arity = len(program.idb_types[query])
        query = Literal(query, [f"q{i}" for i in range(1, arity + 1)])
    if query is None:
        query = default_query(program)
        referenced = {literal.predicate
                      for rule in program.rules
                      for literal in rule.body
                      if isinstance(literal, Literal)}
        roots = sorted(p for p in program.idb_types if p not in referenced)
        explicit = len(roots) == 1  # unambiguous root: trust DED001
    tracer = get_tracer()
    with tracer.span("lint.program", rules=len(program.rules),
                     query=query.predicate):
        with tracer.span("lint.program.dependency"):
            nodes = sorted(program.predicates() | {query.predicate})
            edges = tuple(sorted(program.dependency_edges()))
            successors = _successor_map(nodes, edges)
            sccs = _tarjan_sccs(nodes, successors)
            scc_of = {predicate: index
                      for index, scc in enumerate(sccs)
                      for predicate in scc}
            recursion = {index: _classify_recursion(program, scc, edges)
                         for index, scc in enumerate(sccs)}
            strata = _compute_strata(sccs, scc_of, edges)
            negative_cycle = tuple(sorted(
                e for e in edges
                if not e.positive and scc_of[e.source] == scc_of[e.target]
            ))
            tracer.count("lint.program.predicates", len(nodes))
            tracer.count("lint.program.edges", len(edges))
            tracer.count("lint.program.sccs", len(sccs))

        with tracer.span("lint.program.deadcode"):
            if explicit:
                roots_for_reach = [query.predicate]
            else:
                roots_for_reach = sorted(program.idb_types)
            reachable = _reachable_from(roots_for_reach, successors)
            nonempty = _possibly_nonempty(program, schema)
            dead: list[DeadRule] = []
            seen_rules: dict[Rule, int] = {}
            for index, rule in enumerate(program.rules):
                blocking = next(
                    (literal for literal in rule.body
                     if isinstance(literal, Literal) and literal.positive
                     and literal.predicate not in nonempty),
                    None,
                )
                if blocking is not None:
                    dead.append(DeadRule(
                        index, rule, "DED002",
                        f"body literal {blocking!r} can never hold: "
                        f"{blocking.predicate!r} has no rules and no "
                        "possible EDB facts under the schema",
                    ))
                elif rule.head.predicate not in reachable:
                    dead.append(DeadRule(
                        index, rule, "DED001",
                        f"head predicate {rule.head.predicate!r} is "
                        f"unreachable from the query predicate "
                        f"{query.predicate!r}",
                    ))
                elif rule in seen_rules:
                    dead.append(DeadRule(
                        index, rule, "DED003",
                        f"exact duplicate of rule {seen_rules[rule]}",
                    ))
                else:
                    seen_rules[rule] = index
            tracer.count("lint.program.dead_rules", len(dead))

        with tracer.span("lint.program.adornment"):
            adornment = adorn_program(program, query, scc_of=scc_of,
                                      stratified=strata is not None)
            tracer.count(
                "lint.program.adornments",
                sum(len(adornments)
                    for adornments in adornment.table.values()),
            )

        with tracer.span("lint.program.routing"):
            routing = []
            for index, scc in enumerate(sccs):
                negated = any(
                    not e.positive
                    and scc_of[e.source] == index == scc_of[e.target]
                    for e in edges
                )
                kind = recursion[index]
                if negated:
                    route = "unstratified"
                elif kind == "none":
                    route = "nonrecursive"
                elif kind == "linear":
                    route = "linear-recursive"
                else:
                    route = "stratified-recursive"
                routing.append(RoutingVerdict(
                    scc=scc,
                    recursion=kind,
                    stratum=(strata[scc[0]] if strata is not None else None),
                    negated_in_cycle=negated,
                    route=route,
                ))
    return ProgramAnalysis(
        program=program,
        query=query,
        edges=edges,
        sccs=tuple(sccs),
        scc_of=scc_of,
        recursion=recursion,
        strata=strata,
        negative_cycle_edges=negative_cycle,
        reachable=reachable,
        dead_rules=tuple(dead),
        adornment=adornment,
        routing=tuple(routing),
    )


# ---------------------------------------------------------------------------
# Diagnostic emission
# ---------------------------------------------------------------------------

def _strata_text(analysis: ProgramAnalysis) -> str:
    assert analysis.strata is not None
    by_stratum: dict[int, list[str]] = {}
    for predicate, stratum in analysis.strata.items():
        by_stratum.setdefault(stratum, []).append(predicate)
    return "; ".join(
        f"stratum {stratum}: {', '.join(sorted(members))}"
        for stratum, members in sorted(by_stratum.items())
    )


def run_program_passes(
    report: LintReport,
    program: Program,
    schema: DatabaseSchema | None = None,
    query: Literal | str | None = None,
) -> ProgramAnalysis:
    """Run :func:`analyze_program` and turn the artifact into
    diagnostics on ``report`` (the native half of ``lint_program``)."""
    analysis = analyze_program(program, schema, query)

    # Pass 1: dependency / stratification.
    recursive_sccs = [v for v in analysis.routing if v.recursion != "none"]
    summary = (
        f"dependency graph: {len(analysis.scc_of)} predicates, "
        f"{len(analysis.edges)} edges, {len(analysis.sccs)} SCCs "
        f"({len(recursive_sccs)} recursive: "
        + (", ".join(
            f"{{{', '.join(v.scc)}}} {v.recursion}"
            for v in recursive_sccs) or "none")
        + ")"
    )
    if analysis.stratified:
        report.add(Diagnostic(
            "DEP001", Severity.INFO,
            summary + "; stratified — " + _strata_text(analysis),
        ))
    else:
        report.add(Diagnostic("DEP001", Severity.INFO, summary))
        for edge in analysis.negative_cycle_edges:
            scc = analysis.sccs[analysis.scc_of[edge.source]]
            report.add(Diagnostic(
                "DEP002", Severity.ERROR,
                f"negation of {edge.target!r} inside the recursive "
                f"component {{{', '.join(scc)}}}: the program is not "
                "stratifiable, so its meaning depends on the stage at "
                "which each rule fires",
                suggestion="break the cycle: move the negated literal "
                           "out of the recursion, or split "
                           f"{edge.target!r} into a lower stratum",
            ))

    # Pass 2: dead code.
    for entry in analysis.dead_rules:
        suggestion = None
        if entry.code == "DED001":
            suggestion = (f"delete rule {entry.index}, or query a "
                          "predicate that depends on "
                          f"{entry.rule.head.predicate!r}")
        elif entry.code == "DED002":
            suggestion = (f"delete rule {entry.index}, or add rules/"
                          "schema facts for the empty predicate")
        elif entry.code == "DED003":
            suggestion = f"delete rule {entry.index}"
        report.add(Diagnostic(
            entry.code, Severity.WARNING,
            f"rule {entry.index} ({entry.rule!r}) is dead: {entry.reason}",
            suggestion=suggestion,
        ))

    # Pass 3: adornment.
    adornment = analysis.adornment
    table_text = "; ".join(
        f"{predicate}^{{{', '.join(adornments)}}}"
        for predicate, adornments in sorted(adornment.table.items())
    )
    report.add(Diagnostic(
        "ADN001", Severity.INFO,
        f"adorned program from query {analysis.query!r}: "
        + (table_text or "no IDB predicate is demanded"),
    ))
    if adornment.feasible:
        bound = sum(1 for ch in adornment.query_adornment if ch == "b")
        note = ("" if bound else
                " (trivially: the query binds no argument, so the "
                "rewrite is the identity)")
        report.add(Diagnostic(
            "ADN002", Severity.INFO,
            "magic-sets rewrite is feasible: every demanded adornment "
            "is evaluable under left-to-right sideways information "
            "passing" + note,
        ))
    else:
        first = adornment.blockers[0]
        report.add(Diagnostic(
            "ADN003", Severity.WARNING,
            "magic-sets rewrite is blocked: " + first.reason
            + (f" (and {len(adornment.blockers) - 1} more blocker(s))"
               if len(adornment.blockers) > 1 else ""),
            suggestion=first.suggestion,
        ))
    return analysis
