"""``repro.lint`` — a diagnostics-grade static analyzer for the paper's
query languages.

Turns the boolean verdicts of :mod:`repro.core.typecheck` and
:mod:`repro.core.range_restriction` into structured diagnostics: stable
codes, severities, source spans, per-variable Definition 5.2/5.3 rule
citations, exact big-int cost estimates and fix suggestions.  See
:mod:`repro.lint.engine` for the pass pipeline and
:mod:`repro.lint.diagnostics` for the code registry.
"""

from .adornment import AdornedRule, AdornmentResult, Blocker, adorn_program
from .datalog import lint_program
from .diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
    explain,
)
from .engine import REFERENCE_ATOMS, lint_query, lint_source
from .program import (
    ProgramAnalysis,
    RoutingVerdict,
    analyze_program,
    run_program_passes,
)

__all__ = [
    "AdornedRule",
    "AdornmentResult",
    "Blocker",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "LintReport",
    "ProgramAnalysis",
    "REFERENCE_ATOMS",
    "RoutingVerdict",
    "Severity",
    "adorn_program",
    "analyze_program",
    "explain",
    "lint_program",
    "lint_query",
    "lint_source",
    "run_program_passes",
]
