"""Binding-pattern (adornment) propagation for inf-Datalog programs.

The magic-sets / demand-driven rewrite (ROADMAP item 1) only pays off
when the query's constants can be *pushed* through rule bodies: an
adornment like ``T^bf`` says "T is demanded with its first argument
bound and its second free".  This module computes the set of demanded
adornments by left-to-right sideways information passing (SIP): within
a rule body, a variable is bound once a previous positive literal (or
the bound head arguments, or an ``=`` built-in against a constant or an
already-bound variable) has produced it.

The result is the ``ADN001`` adorned-program table and the
``ADN002``/``ADN003`` feasibility verdict.  Feasibility here is the
soundness envelope under which the rewrite preserves inflationary
semantics — negation is the hazard: magic-sets over *stratified*
negation is sound when every negated literal is fully bound at its
body position, while negated recursion (an unstratified program) is
outside the envelope entirely (cf. the Bourhis–Krötzsch–Rudolph
containment fragments in PAPERS.md).

A query with no constants demands the all-free adornment everywhere,
which the rewrite maps to the identity — trivially feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..datalog.syntax import (
    BuiltinLiteral,
    DConst,
    DVar,
    Literal,
    Program,
    Rule,
)

__all__ = ["AdornedRule", "AdornmentResult", "Blocker", "adorn_program"]


@dataclass(frozen=True)
class Blocker:
    """One reason the magic-sets rewrite is unsound/unprofitable here."""

    rule_index: int
    literal: str  # repr of the blocking body literal
    kind: str  # "unbound-negation" | "negated-recursive" | "builtin"
    reason: str
    suggestion: str | None = None

    def to_dict(self) -> dict:
        return {"rule_index": self.rule_index, "literal": self.literal,
                "kind": self.kind, "reason": self.reason,
                "suggestion": self.suggestion}


@dataclass(frozen=True)
class AdornedRule:
    """One rule specialized to one head adornment."""

    rule_index: int
    head_adornment: str
    body_adornments: tuple[str, ...]  # aligned with rule.body; "" = builtin


@dataclass
class AdornmentResult:
    """The adorned program: demanded adornments per IDB predicate."""

    query_adornment: str
    table: dict[str, tuple[str, ...]]  # predicate -> sorted adornments
    adorned_rules: tuple[AdornedRule, ...]
    blockers: tuple[Blocker, ...] = field(default_factory=tuple)

    @property
    def feasible(self) -> bool:
        return not self.blockers


def _adorn(literal: Literal, bound: set[str]) -> str:
    """The b/f string of ``literal`` given the bound-variable set."""
    out = []
    for term in literal.terms:
        if isinstance(term, DConst):
            out.append("b")
        else:
            out.append("b" if term.name in bound else "f")
    return "".join(out)


def adorn_program(
    program: Program,
    query: Literal,
    scc_of: Mapping[str, int] | None = None,
    stratified: bool = True,
) -> AdornmentResult:
    """Propagate the query's binding pattern through the program.

    ``scc_of`` (predicate -> SCC index) lets the analysis flag negated
    literals over predicates in a *recursive* SCC containing the rule
    head — magic sets under negated recursion is unsound.  When
    ``stratified`` is False every negated IDB literal is already
    covered by ``DEP002``, so only binding-level blockers are reported
    here.
    """
    idb = program.idb_predicates
    query_adornment = _adorn(query, set())
    # Worklist of (predicate, adornment) demands not yet expanded.
    demanded: dict[str, set[str]] = {}
    worklist: list[tuple[str, str]] = []

    def demand(predicate: str, adornment: str) -> None:
        if predicate not in idb:
            return
        seen = demanded.setdefault(predicate, set())
        if adornment not in seen:
            seen.add(adornment)
            worklist.append((predicate, adornment))

    demand(query.predicate, query_adornment)
    adorned_rules: list[AdornedRule] = []
    blockers: list[Blocker] = []
    blocker_keys: set[tuple] = set()

    def block(blocker: Blocker) -> None:
        key = (blocker.rule_index, blocker.literal, blocker.kind)
        if key not in blocker_keys:
            blocker_keys.add(key)
            blockers.append(blocker)

    while worklist:
        predicate, adornment = worklist.pop()
        for rule_index, rule in enumerate(program.rules):
            if rule.head.predicate != predicate:
                continue
            bound: set[str] = set()
            for term, mark in zip(rule.head.terms, adornment):
                if mark == "b" and isinstance(term, DVar):
                    bound.add(term.name)
            body_adornments: list[str] = []
            for literal in rule.body:
                if isinstance(literal, BuiltinLiteral):
                    body_adornments.append("")
                    # ``x = c`` and ``x = y`` can *generate* bindings
                    # left-to-right; ``in``/``sub`` only test.
                    if literal.op == "=" and literal.positive:
                        left, right = literal.left, literal.right
                        left_ok = (isinstance(left, DConst)
                                   or left.name in bound)
                        right_ok = (isinstance(right, DConst)
                                    or right.name in bound)
                        if left_ok and isinstance(right, DVar):
                            bound.add(right.name)
                        if right_ok and isinstance(left, DVar):
                            bound.add(left.name)
                    continue
                literal_adornment = _adorn(literal, bound)
                body_adornments.append(literal_adornment)
                if literal.positive:
                    demand(literal.predicate, literal_adornment)
                    # A positive relation literal generates all its
                    # variables sideways.
                    bound |= literal.variables()
                    continue
                # Negated literal: sound only when fully bound at this
                # body position (set-difference semantics).
                unbound = sorted(literal.variables() - bound)
                if unbound:
                    block(Blocker(
                        rule_index, repr(literal), "unbound-negation",
                        f"rule {rule_index}: negated literal "
                        f"{literal!r} is reached with unbound variable(s) "
                        f"{', '.join(unbound)} under adornment "
                        f"{predicate}^{adornment}; the demand rewrite "
                        "cannot restrict a negated literal it cannot "
                        "fully bind",
                        suggestion="reorder the body so positive "
                        "literals bind "
                        f"{', '.join(unbound)} before the negation",
                    ))
                elif (stratified and scc_of is not None
                      and literal.predicate in idb
                      and scc_of.get(literal.predicate)
                      == scc_of.get(predicate)):
                    # Fully bound, but negating a predicate in the same
                    # recursive component as the head: magic sets would
                    # have to filter a stratum it is itself defining.
                    block(Blocker(
                        rule_index, repr(literal), "negated-recursive",
                        f"rule {rule_index}: {literal!r} negates a "
                        "predicate in the head's own recursive "
                        "component; the demand rewrite is unsound "
                        "across this negation",
                        suggestion="stratify: define "
                        f"{literal.predicate!r} independently of "
                        f"{predicate!r}",
                    ))
                elif literal.predicate in idb:
                    demand(literal.predicate, literal_adornment)
            adorned_rules.append(AdornedRule(
                rule_index, adornment, tuple(body_adornments)))

    table = {predicate: tuple(sorted(adornments))
             for predicate, adornments in demanded.items()}
    return AdornmentResult(
        query_adornment=query_adornment,
        table=table,
        adorned_rules=tuple(adorned_rules),
        blockers=tuple(blockers),
    )
