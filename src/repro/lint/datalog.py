"""Lint pass for Datalog(not-eq) programs.

A program is linted through its CALC+IFP translation
(:func:`repro.datalog.translation.program_to_query`): translation
failures become ``DLG001`` errors, and a successful translation is
linted with the full query pipeline, prefixed by a ``DLG002`` note so
readers know the remaining diagnostics are about the translated query
(whose fresh variables are named ``_c*``/``_r*``).
"""

from __future__ import annotations

from ..datalog.syntax import DatalogError, Program
from ..datalog.translation import program_to_query
from ..objects.schema import DatabaseSchema
from ..objects.types import Type
from ..obs import get_tracer
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import lint_query

__all__ = ["lint_program"]


def lint_program(
    program: Program,
    schema: DatabaseSchema,
    exempt_types: frozenset[Type] | set[Type] = frozenset(),
) -> LintReport:
    """Lint a Datalog program via its CALC+IFP translation."""
    report = LintReport()
    tracer = get_tracer()
    with tracer.span("lint.datalog", rules=len(program.rules)):
        try:
            query = program_to_query(program, schema)
        except DatalogError as exc:
            report.add(Diagnostic("DLG001", Severity.ERROR, str(exc)))
            tracer.count("lint.diagnostics", 1)
            return report
        idb = ", ".join(sorted(program.idb_types))
        report.add(Diagnostic(
            "DLG002", Severity.INFO,
            f"program (IDB {idb}, {len(program.rules)} rules) translated "
            "to a CALC+IFP query; diagnostics below are for the "
            "translation",
        ))
        lint_query(query, schema, exempt_types=exempt_types, _report=report)
    return report
