"""Lint pass for Datalog(not-eq) programs.

Two halves, program passes first:

1. **Program-level analysis** (:mod:`repro.lint.program`): dependency /
   stratification (``DEP*``), dead code (``DED*``), adornment
   (``ADN*``) — native passes over the :class:`Program` itself.  The
   resulting :class:`~repro.lint.program.ProgramAnalysis` artifact is
   stashed on the report as ``report.analysis`` so callers (the CLI's
   ``--json`` ``program`` section, the backend router) consume it
   without re-running the analysis.
2. **Translation-based lint**: the CALC+IFP translation
   (:func:`repro.datalog.translation.program_to_query`) is linted with
   the full query pipeline, prefixed by a ``DLG002`` note so readers
   know the remaining diagnostics are about the translated query (whose
   fresh variables are named ``_c*``/``_r*``).  Translation failures
   become ``DLG001`` errors — except the structural single-IDB
   limitation, which is ``DLG004`` INFO now that the program passes
   analyze multi-IDB programs natively.

A defensive catch-all turns analyzer bugs into ``LNT001`` errors
instead of exceptions: lint must never crash on any program (pinned by
the fuzz harness in ``tests/test_program_differential.py``).
"""

from __future__ import annotations

from ..datalog.syntax import DatalogError, Literal, Program
from ..datalog.translation import program_to_query
from ..objects.schema import DatabaseSchema, SchemaError
from ..objects.types import Type
from ..obs import get_tracer
from .diagnostics import Diagnostic, LintReport, Severity
from .engine import lint_query
from .program import run_program_passes

__all__ = ["lint_program"]


def lint_program(
    program: Program,
    schema: DatabaseSchema,
    exempt_types: frozenset[Type] | set[Type] = frozenset(),
    query: Literal | str | None = None,
) -> LintReport:
    """Lint a Datalog program: native program passes, then translation.

    ``query`` optionally names the demanded predicate (or gives a
    query literal whose constants seed the adornment pass); see
    :func:`repro.lint.program.analyze_program`.
    """
    report = LintReport()
    tracer = get_tracer()
    with tracer.span("lint.datalog", rules=len(program.rules)):
        try:
            report.analysis = run_program_passes(
                report, program, schema, query)
        except ValueError as exc:
            # Bad query argument (unknown predicate): a real finding.
            report.add(Diagnostic("DLG001", Severity.ERROR, str(exc)))
            tracer.count("lint.diagnostics", len(report.diagnostics))
            return report
        except Exception as exc:  # pragma: no cover - analyzer bugs
            report.add(Diagnostic(
                "LNT001", Severity.ERROR,
                f"program analysis crashed: {type(exc).__name__}: {exc}",
            ))

        try:
            translated = program_to_query(program, schema)
        except DatalogError as exc:
            if "single-IDB" in str(exc):
                report.add(Diagnostic(
                    "DLG004", Severity.INFO,
                    f"{exc}; the program-level passes above are the "
                    "complete analysis for this program",
                ))
            else:
                report.add(Diagnostic("DLG001", Severity.ERROR, str(exc)))
            tracer.count("lint.diagnostics", len(report.diagnostics))
            return report
        except SchemaError as exc:
            report.add(Diagnostic(
                "DLG001", Severity.ERROR,
                f"translation failed against the schema: {exc}",
            ))
            tracer.count("lint.diagnostics", len(report.diagnostics))
            return report
        idb = ", ".join(sorted(program.idb_types))
        report.add(Diagnostic(
            "DLG002", Severity.INFO,
            f"program (IDB {idb}, {len(program.rules)} rules) translated "
            "to a CALC+IFP query; diagnostics below are for the "
            "translation",
        ))
        lint_query(translated, schema, exempt_types=exempt_types,
                   _report=report)
    return report
