"""The multi-pass lint engine over CALC/IFP/PFP queries.

Passes, in order (each instrumented as a ``repro.obs`` span):

1. **types** — scope/arity/type checking in collecting mode
   (:mod:`repro.core.typecheck`): every violation becomes a ``TYP*``
   error diagnostic; later passes are skipped when this one fails, since
   their analyses need a fully typed formula.
2. **level** — the ``CALC_i^k`` classification (``LVL001``) and domain
   cost estimates: quantifying over a type of larger set height than any
   input type is hyperexponential under naive evaluation (``COST001``),
   any set-typed quantification is at least exponential (``COST002``);
   both carry exact ``|dom(T, D)|`` cardinalities from
   :mod:`repro.objects.domains` at a reference atom count.
3. **range restriction** — the Definition 5.2/5.3 prover
   (:mod:`repro.core.range_restriction`): per-variable rule citations on
   success (``RR001``), pinpointed unrestricted paths with concrete
   suggestions on failure (``RR002``-``RR004``), dropped fixpoint
   columns (``RR006``).
4. **complexity** — the Theorem 5.1 verdict (``CPX001``/``CPX003``),
   PFP divergence warnings (``CPX002``) and the Theorem 5.3 exempt-type
   note (``CPX004``).
"""

from __future__ import annotations

from ..core.parser import ParseError, SourceMap, parse_query_with_source
from ..core.range_restriction import (
    RRResult,
    analyze_query,
    path_text,
)
from ..core.syntax import Fixpoint, Or, Query, RelAtom, Var
from ..core.typecheck import TypeIssue, TypeReport, check_query
from ..objects.domains import DomainTooLarge, domain_cardinality
from ..objects.schema import DatabaseSchema
from ..objects.types import SetType, Type
from ..obs import get_tracer
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = ["REFERENCE_ATOMS", "lint_query", "lint_source"]

#: Atom count at which cost estimates are quoted.  Small on purpose: the
#: point is the *shape* (hyperexponential vs polynomial), and hyper(2, k)
#: already overflows any physical quantity at n = 8.
REFERENCE_ATOMS = 8


def lint_source(
    text: str,
    schema: DatabaseSchema,
    exempt_types: frozenset[Type] | set[Type] = frozenset(),
) -> LintReport:
    """Parse ``text`` as a query and lint it with source spans.

    A malformed query yields a single ``PAR001`` error instead of an
    exception, so callers can treat parse failures as findings.
    """
    report = LintReport()
    try:
        query, source_map = parse_query_with_source(text)
    except ParseError as exc:
        report.add(Diagnostic("PAR001", Severity.ERROR, str(exc)))
        return report
    return lint_query(query, schema, source_map=source_map,
                      exempt_types=exempt_types, _report=report)


def lint_query(
    query: Query,
    schema: DatabaseSchema,
    source_map: SourceMap | None = None,
    exempt_types: frozenset[Type] | set[Type] = frozenset(),
    _report: LintReport | None = None,
) -> LintReport:
    """Run all passes over a parsed query; returns every diagnostic."""
    report = _report if _report is not None else LintReport()
    tracer = get_tracer()
    with tracer.span("lint", head=", ".join(query.head_names)):
        with tracer.span("lint.types"):
            type_report, type_errors = _pass_types(report, query, schema,
                                                  source_map)
        if type_errors:
            tracer.count("lint.diagnostics", len(report.diagnostics))
            return report
        with tracer.span("lint.level"):
            _pass_level(report, query, type_report, schema, source_map)
        with tracer.span("lint.range_restriction"):
            rr_result = _pass_range_restriction(
                report, query, schema, type_report, source_map,
                frozenset(exempt_types),
            )
        with tracer.span("lint.complexity"):
            _pass_complexity(report, type_report, rr_result,
                             frozenset(exempt_types))
        tracer.count("lint.diagnostics", len(report.diagnostics))
    return report


# ---------------------------------------------------------------------------
# Pass 1: types
# ---------------------------------------------------------------------------

def _pass_types(
    report: LintReport,
    query: Query,
    schema: DatabaseSchema,
    source_map: SourceMap | None,
) -> tuple[TypeReport, bool]:
    issues: list[TypeIssue] = []
    type_report = check_query(query, schema, collect=issues)
    for issue in issues:
        report.add(
            Diagnostic(issue.code, Severity.ERROR, issue.message)
            .locate(issue.node, source_map)
        )
    return type_report, bool(issues)


# ---------------------------------------------------------------------------
# Pass 2: level and cost
# ---------------------------------------------------------------------------

def _cardinality_text(typ: Type, n: int) -> str:
    """``|dom(typ, D)|`` at ``|D| = n``, humanised for huge values."""
    try:
        size = domain_cardinality(typ, n)
    except DomainTooLarge:
        return (f"|dom({typ!r}, D)| overflows at |D| = {n} "
                f"(set height {typ.set_height})")
    if size.bit_length() > 40:
        return (f"|dom({typ!r}, D)| = about 2^{size.bit_length() - 1} "
                f"at |D| = {n}")
    return f"|dom({typ!r}, D)| = {size} at |D| = {n}"


def _pass_level(
    report: LintReport,
    query: Query,
    type_report: TypeReport,
    schema: DatabaseSchema,
    source_map: SourceMap | None,
) -> None:
    i, k = type_report.level
    report.add(Diagnostic(
        "LVL001", Severity.INFO,
        f"query is in CALC_{i}^{k} (set height {i}, tuple width {k})",
    ))
    schema_height = schema.set_height if len(schema) else 0
    head_names = set(query.head_names)
    n = REFERENCE_ATOMS
    for name in sorted(type_report.variable_types):
        if name in head_names:
            continue
        typ = type_report.variable_types[name]
        if typ.set_height > schema_height:
            report.add(Diagnostic(
                "COST001", Severity.WARNING,
                f"bound variable {name!r} ranges over {typ!r}, whose set "
                f"height {typ.set_height} exceeds every input type "
                f"(schema height {schema_height}): naive evaluation "
                f"enumerates {_cardinality_text(typ, n)}",
                suggestion=f"range-restrict {name!r} so evaluation uses "
                           "a derived candidate set instead of "
                           f"dom({typ!r}, D) (Theorem 5.1)",
            ))
        elif typ.set_height >= 1:
            report.add(Diagnostic(
                "COST002", Severity.INFO,
                f"bound variable {name!r} ranges over the set type "
                f"{typ!r}: {_cardinality_text(typ, n)} under naive "
                "evaluation",
            ))


# ---------------------------------------------------------------------------
# Pass 3: range restriction
# ---------------------------------------------------------------------------

_VIOLATION_CODES = {
    "free": "RR002",
    "existential": "RR003",
    "universal": "RR004",
}


def _guard_candidates(typ: Type | None, schema: DatabaseSchema) -> list[str]:
    """Schema positions that could ground a variable of type ``typ``."""
    candidates = []
    for rel in schema:
        for index, column in enumerate(rel.column_types, start=1):
            if column == typ:
                candidates.append(f"{rel.name} column {index}")
            elif isinstance(column, SetType) and column.element == typ:
                candidates.append(
                    f"membership in {rel.name} column {index} ({column!r})"
                )
    return candidates


def _suggest(kind: str, path, typ: Type | None,
             schema: DatabaseSchema) -> str:
    name = path_text(path)
    candidates = _guard_candidates(typ, schema)
    where = (f"e.g. {candidates[0]}" if candidates
             else "no schema column has a matching type")
    if kind == "universal":
        return (
            f"rewrite as the nest pattern 'forall {name} ({name} in s <-> "
            f"phi)' (rule 9 of Definition 5.2), or make {name} restricted "
            f"in the negation of the body with a guarding atom (rule 7; "
            f"{where})"
        )
    return (
        f"add a conjunct guarding {name}: a database atom with {name} at "
        f"a column of type {typ!r} (rule 1 of Definition 5.2; {where}), "
        f"an equality {name} = c with a constant, or a membership "
        f"{name} in s for an already-restricted s (rule 4)"
    )


def _pass_range_restriction(
    report: LintReport,
    query: Query,
    schema: DatabaseSchema,
    type_report: TypeReport,
    source_map: SourceMap | None,
    exempt_types: frozenset[Type],
) -> RRResult:
    result = analyze_query(query, schema, exempt_types=exempt_types)
    for violation in result.violation_records:
        typ = type_report.variable_types.get(violation.path[0])
        report.add(
            Diagnostic(
                _VIOLATION_CODES.get(violation.kind, "RR002"),
                Severity.ERROR,
                violation.message,
                suggestion=_suggest(violation.kind, violation.path, typ,
                                    schema),
            ).locate(violation.node, source_map)
        )
    # Dropped fixpoint columns: benign when the query still passes, the
    # precise failure mode behind it when it does not (Example 5.2).
    for fixpoint in type_report.fixpoints:
        columns = result.fixpoint_columns.get(fixpoint.name)
        if columns is None:
            continue
        dropped = sorted(set(range(1, fixpoint.arity + 1)) - columns)
        if dropped:
            names = ", ".join(fixpoint.column_names[i - 1] for i in dropped)
            report.add(Diagnostic(
                "RR006", Severity.WARNING,
                f"tau* iteration for {fixpoint.kind}(..., {fixpoint.name}) "
                f"drops column(s) {dropped} ({names}): atoms of "
                f"{fixpoint.name} do not restrict arguments there "
                "(rule 10, Definition 5.3)",
            ))
    if result.is_range_restricted:
        report.add(Diagnostic(
            "RR005", Severity.INFO,
            "query is range restricted (Definition 5.2/5.3)",
        ))
        for name in sorted(type_report.variable_types):
            citation = result.citation_for(name)
            if citation is not None:
                report.add(Diagnostic(
                    "RR001", Severity.INFO,
                    f"variable {name!r} is range restricted by {citation}",
                    rule=citation.rule,
                ))
    return result


# ---------------------------------------------------------------------------
# Pass 4: complexity verdict
# ---------------------------------------------------------------------------

def _disjuncts(formula):
    """Flatten nested ``Or`` nodes (the builder's ``a | b | c`` nests)."""
    if isinstance(formula, Or):
        for operand in formula.operands:
            yield from _disjuncts(operand)
    else:
        yield formula


def _pfp_reasserts_itself(fixpoint: Fixpoint) -> bool:
    """True when the body has a top-level disjunct ``S(x1..xn)`` over the
    column variables — then PFP is inflationary in effect and converges."""
    for operand in _disjuncts(fixpoint.body):
        if (isinstance(operand, RelAtom)
                and operand.name == fixpoint.name
                and len(operand.args) == fixpoint.arity
                and all(isinstance(arg, Var) and arg.name == column
                        for arg, column in zip(operand.args,
                                               fixpoint.column_names))):
            return True
    return False


def _pass_complexity(
    report: LintReport,
    type_report: TypeReport,
    rr_result: RRResult,
    exempt_types: frozenset[Type],
) -> None:
    kinds = {fixpoint.kind for fixpoint in type_report.fixpoints}
    if "PFP" in kinds:
        language, bound = "CALC+PFP", "PSPACE"
    elif "IFP" in kinds:
        language, bound = "CALC+IFP", "PTIME"
    else:
        language, bound = "CALC", "LOGSPACE"
    if exempt_types:
        listed = ", ".join(sorted(repr(t) for t in exempt_types))
        report.add(Diagnostic(
            "CPX004", Severity.INFO,
            f"exempt-type discipline (RR_T) in effect for {listed}: "
            "variables of these types range over their full domains, "
            "polynomial under the density assumption (Theorem 5.3)",
        ))
    if rr_result.is_range_restricted:
        report.add(Diagnostic(
            "CPX001", Severity.INFO,
            f"range-restricted {language} query: evaluable in {bound} "
            "via derived range functions (Theorem 5.1"
            + (", mixed discipline of Theorem 5.3" if exempt_types else "")
            + ")",
        ))
    else:
        report.add(Diagnostic(
            "CPX003", Severity.WARNING,
            f"not range restricted: no Theorem 5.1 {bound} guarantee for "
            f"this {language} query; only the naive active-domain "
            "enumeration over (hyperexponential) dom(T, D) applies",
        ))
    for fixpoint in type_report.fixpoints:
        if fixpoint.kind != "PFP":
            continue
        if _pfp_reasserts_itself(fixpoint):
            report.add(Diagnostic(
                "CPX002", Severity.INFO,
                f"PFP(..., {fixpoint.name}) re-asserts {fixpoint.name} in "
                "a top-level disjunct, so the iteration is inflationary "
                "and converges",
            ))
        else:
            report.add(Diagnostic(
                "CPX002", Severity.WARNING,
                f"PFP(..., {fixpoint.name}) may diverge: the partial "
                "fixpoint iterates without accumulating and is undefined "
                "when no fixed point is reached (Definition 3.1)",
                suggestion="use IFP, or add the disjunct "
                           f"{fixpoint.name}({', '.join(fixpoint.column_names)}) "
                           "to make the iteration inflationary",
            ))
