"""Structured diagnostics for the ``repro.lint`` static analyzer.

Every finding is a :class:`Diagnostic` with a stable code (``TYP001``,
``RR003``, ``COST002``, ...), a severity, an optional source span, a
message and an optional fix suggestion.  The registry :data:`CODES` maps
each code to its meaning and the paper citation it implements;
:func:`explain` renders one entry for ``repro lint --explain CODE``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from ..core.parser import SourceMap, Span

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "LintReport",
    "Severity",
    "explain",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``--fail-on`` thresholds."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


class CodeInfo(NamedTuple):
    """Registry entry: what a diagnostic code means and where it comes
    from in the paper."""

    title: str
    explanation: str
    citation: str


#: code -> meaning.  Stable: codes are append-only across versions.
CODES: dict[str, CodeInfo] = {
    "PAR001": CodeInfo(
        "parse error",
        "The query text does not conform to the CALC/IFP/PFP grammar.",
        "Section 2 (syntax of the typed calculus)",
    ),
    "TYP001": CodeInfo(
        "unknown relation",
        "A relation atom names neither a database relation of the schema "
        "nor a relation bound by an enclosing fixpoint.",
        "Section 2 (queries are over a fixed database schema)",
    ),
    "TYP002": CodeInfo(
        "relation arity mismatch",
        "A relation atom has a different number of arguments than the "
        "relation's declared columns.",
        "Section 2 (relation schemas R[T1..Tn])",
    ),
    "TYP003": CodeInfo(
        "relation argument type mismatch",
        "An argument of a relation atom has a type different from the "
        "declared column type.",
        "Section 2 (the calculus is strongly typed)",
    ),
    "TYP004": CodeInfo(
        "untyped variable",
        "A variable's type can be neither inferred from a binding "
        "occurrence nor read from an annotation.",
        "Section 2 (every variable has a type)",
    ),
    "TYP005": CodeInfo(
        "variable bound twice",
        "A variable symbol occurs free and bound, is bound by more than "
        "one quantifier, or carries conflicting type annotations.",
        "Footnote 6 (variables are renamed apart)",
    ),
    "TYP006": CodeInfo(
        "comparison type mismatch",
        "'=' and 'sub' relate equal types and 'in' relates T with {T}; "
        "the operand types violate that.",
        "Section 2 (typing of atomic formulas)",
    ),
    "TYP007": CodeInfo(
        "bad projection",
        "A projection x.i is applied to a non-tuple type or the index "
        "exceeds the tuple's width.",
        "Section 2 (terms x.i over tuple-typed x)",
    ),
    "TYP008": CodeInfo(
        "fixpoint relation name clash",
        "A fixpoint's relation name shadows an enclosing fixpoint or a "
        "database relation.",
        "Definition 3.1 (S is a new relation symbol)",
    ),
    "TYP009": CodeInfo(
        "fixpoint argument type mismatch",
        "An argument of a fixpoint application has a type different from "
        "the declared column type.",
        "Definition 3.1 (typed fixpoint columns)",
    ),
    "LVL001": CodeInfo(
        "CALC_i^k level",
        "The minimal (i, k) such that every type of the query is an "
        "<i,k>-type: set height at most i, tuple width at most k.",
        "Section 3 (the languages CALC_i^k)",
    ),
    "COST001": CodeInfo(
        "quantified type exceeds input types",
        "A bound variable ranges over a type of larger set height than "
        "any input type, so the naive active-domain evaluation "
        "enumerates a hyperexponentially larger domain than the input.",
        "Section 3 (dom(T, D) grows as hyper(i, k)); Theorem 4.2",
    ),
    "COST002": CodeInfo(
        "set-typed quantification cost",
        "A bound variable ranges over a set type; its domain is "
        "exponential in the atom count under naive evaluation.  Range "
        "restriction replaces it with a polynomial candidate set.",
        "Section 3 (dom cardinality arithmetic); Theorem 5.1",
    ),
    "RR001": CodeInfo(
        "variable range restricted",
        "The variable is range restricted; the cited rule of "
        "Definition 5.2/5.3 grounds it.",
        "Definitions 5.2 and 5.3 (rules 1-9, 1', 9', 10)",
    ),
    "RR002": CodeInfo(
        "free variable not range restricted",
        "A head/free variable has no grounding derivation, so the query "
        "is not range restricted.",
        "Definition 5.2 (every free variable must be restricted)",
    ),
    "RR003": CodeInfo(
        "existential variable not range restricted",
        "An existentially quantified variable is not restricted in the "
        "quantifier's body (rule 8 fails).",
        "Definition 5.2, rule 8",
    ),
    "RR004": CodeInfo(
        "universal variable not range restricted",
        "A universally quantified variable is restricted neither via the "
        "nest pattern (rule 9) nor in the negation of the body (rule 7).",
        "Definition 5.2, rules 7 and 9",
    ),
    "RR005": CodeInfo(
        "query range restricted",
        "Every variable (free and bound) has a grounding derivation; the "
        "query admits the safe restricted-domain evaluation.",
        "Definition 5.2/5.3; Theorem 5.1",
    ),
    "RR006": CodeInfo(
        "fixpoint column dropped from tau*",
        "The column-wise tau iteration reached a greatest fixed point "
        "that excludes a column, so atoms of the fixpoint relation no "
        "longer restrict arguments in that position.",
        "Definition 5.3, rule 10 (Example 5.2)",
    ),
    "CPX001": CodeInfo(
        "complexity verdict",
        "Range-restricted queries are evaluable via range functions: "
        "LOGSPACE for RR-CALC, PTIME for RR-(CALC+IFP), PSPACE for "
        "RR-(CALC+PFP), in the size of the instance.",
        "Theorem 5.1; Corollary 5.1",
    ),
    "CPX002": CodeInfo(
        "partial fixpoint may diverge",
        "PFP iterates phi without accumulating; if no fixed point is "
        "reached the result is empty/undefined and the iteration may "
        "cycle through exponentially many stages.",
        "Definition 3.1 (partial fixpoint); Theorem 4.1(3)",
    ),
    "CPX003": CodeInfo(
        "no tractable evaluation guarantee",
        "The query failed the range-restriction analysis, so the only "
        "applicable semantics is the naive active-domain enumeration "
        "over hyperexponential domains.",
        "Theorem 5.1 (contrapositive); Section 3",
    ),
    "CPX004": CodeInfo(
        "exempt-type discipline in effect",
        "Variables of declared exempt (dense) types are excused from "
        "range restriction; their full domains are polynomial by the "
        "density assumption.",
        "Theorem 5.3 (the RR_T discipline)",
    ),
    "DLG001": CodeInfo(
        "Datalog translation error",
        "The Datalog(not-eq) program cannot be translated to CALC+IFP "
        "(unknown predicates, arity clashes, unsafe rules...).",
        "Section 6 (Datalog and the fixpoint calculus)",
    ),
    "DLG002": CodeInfo(
        "Datalog program translated",
        "The program was translated to an equivalent CALC+IFP query; the "
        "remaining diagnostics are for that translation.",
        "Section 6 (Datalog and the fixpoint calculus)",
    ),
    "DLG003": CodeInfo(
        "Datalog parse error",
        "The program text does not conform to the textual Datalog "
        "grammar (idb declarations, rules, an optional ?- query).",
        "Section 3 (inf-Datalog programs as rule sets)",
    ),
    "DLG004": CodeInfo(
        "translation skipped",
        "The CALC+IFP translation covers single-IDB programs only; the "
        "program-level passes above are the complete analysis for this "
        "program, and no translated-query diagnostics follow.",
        "Section 6 (single simultaneous fixpoint per translation)",
    ),
    "DEP001": CodeInfo(
        "dependency and strata report",
        "The predicate dependency graph: SCC condensation, recursion "
        "classification (linear when every rule has at most one "
        "positive recursive body literal), and — when no negative edge "
        "closes a cycle — the stratum of each predicate.",
        "Section 3 (inf-Datalog with negation); stratified Datalog "
        "(Apt-Blair-Walker)",
    ),
    "DEP002": CodeInfo(
        "negation inside a recursive component",
        "A negative dependency edge lies inside an SCC, so the program "
        "is not stratifiable: under inflationary evaluation its answer "
        "depends on the stage at which rules fire, and no "
        "stage-independent (stratified) meaning exists.",
        "Section 3 (inflationary semantics fixes an order); "
        "Kolaitis-Papadimitriou on inflationary vs. stratified negation",
    ),
    "DED001": CodeInfo(
        "rule unreachable from the query",
        "No dependency path leads from the query predicate to this "
        "rule's head, so deleting the rule cannot change the query "
        "answer.",
        "Section 3 (only predicates the query depends on matter)",
    ),
    "DED002": CodeInfo(
        "rule can never fire",
        "A positive body literal names a predicate with no rules and no "
        "possible EDB facts under the schema, so the body is "
        "unsatisfiable on every instance.",
        "Section 2 (instances populate schema relations only)",
    ),
    "DED003": CodeInfo(
        "duplicate rule",
        "The rule is literal-for-literal identical to an earlier rule; "
        "the duplicate contributes no derivations.",
        "Section 3 (programs are rule sets)",
    ),
    "ADN001": CodeInfo(
        "adorned program",
        "The bound/free binding patterns each IDB predicate is demanded "
        "with, propagated from the query's constants by left-to-right "
        "sideways information passing.",
        "Magic sets (Bancilhon-Maier-Sagiv-Ullman); ROADMAP item 1",
    ),
    "ADN002": CodeInfo(
        "magic-sets rewrite feasible",
        "Every demanded adornment is evaluable left-to-right: negated "
        "literals are reached fully bound and outside their head's "
        "recursive component, so the demand-driven rewrite preserves "
        "the inflationary answer.",
        "Magic sets; soundness fragments of Bourhis-Krötzsch-Rudolph "
        "(PAPERS.md)",
    ),
    "ADN003": CodeInfo(
        "magic-sets rewrite blocked",
        "Some body literal defeats demand propagation — a negated "
        "literal reached with unbound variables, or negation into the "
        "head's own recursive component; the blocking literal is "
        "pinpointed in the message.",
        "Magic sets; soundness fragments of Bourhis-Krötzsch-Rudolph "
        "(PAPERS.md)",
    ),
    "LNT001": CodeInfo(
        "internal analyzer error",
        "A lint pass raised an unexpected exception; the report is "
        "incomplete.  This is a bug in the analyzer, not in the "
        "program being linted.",
        "(not a paper property)",
    ),
}


def explain(code: str) -> str:
    """Render the registry entry for ``code`` (for ``--explain``).

    Raises :class:`KeyError` for unknown codes.
    """
    info = CODES[code]
    return (
        f"{code}: {info.title}\n"
        f"  {info.explanation}\n"
        f"  Paper: {info.citation}"
    )


@dataclass
class Diagnostic:
    """One finding of the analyzer.

    Attributes:
        code: stable registry code (a key of :data:`CODES`).
        severity: :class:`Severity` of the finding.
        message: human-readable description.
        span: character range in the query source, when known.
        line / column: 1-based position of ``span.start``, when known.
        snippet: the source text of the offending node, when known.
        suggestion: a concrete fix, when one can be derived.
        rule: the Definition 5.2/5.3 rule string for RR findings.
    """

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    line: int | None = None
    column: int | None = None
    snippet: str | None = None
    suggestion: str | None = None
    rule: str | None = None

    def locate(self, node: object, source_map: SourceMap | None) -> "Diagnostic":
        """Fill span/line/column/snippet from ``node`` if it was parsed."""
        if source_map is None or node is None:
            return self
        span = source_map.span(node)
        if span is None:
            return self
        self.span = span
        self.line, self.column = source_map.line_col(span.start)
        self.snippet = source_map.snippet(node)
        return self

    def to_dict(self) -> dict:
        data: dict = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.span is not None:
            data["span"] = {"start": self.span.start, "end": self.span.end}
            data["line"] = self.line
            data["column"] = self.column
        if self.snippet is not None:
            data["snippet"] = self.snippet
        if self.suggestion is not None:
            data["suggestion"] = self.suggestion
        if self.rule is not None:
            data["rule"] = self.rule
        return data

    def render(self) -> str:
        location = ""
        if self.line is not None:
            location = f"{self.line}:{self.column}: "
        text = f"{location}{self.severity}[{self.code}] {self.message}"
        if self.snippet is not None:
            text += f"\n    | {self.snippet}"
        if self.suggestion is not None:
            text += f"\n    suggestion: {self.suggestion}"
        return text


@dataclass
class LintReport:
    """All diagnostics of one lint run, in emission order.

    ``analysis`` carries the :class:`repro.lint.program.ProgramAnalysis`
    artifact when the run linted a Datalog program (None otherwise), so
    downstream consumers — the CLI's ``--json`` ``program`` section,
    the backend router — reuse it instead of re-analyzing.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    analysis: object | None = None

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def fails(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True iff some diagnostic reaches the ``fail_on`` threshold."""
        return any(d.severity >= fail_on for d in self.diagnostics)

    def to_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self.diagnostics]

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dicts(), **kwargs)

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)
