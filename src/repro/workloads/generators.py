"""Workload generators: the instance families the experiments run on.

Families are callables ``n -> Instance`` with documented density/sparsity
behaviour (checked empirically in the tests via
:func:`repro.analysis.density.classify_family`):

* **dense** families (Theorem 4.1's hypothesis): full-domain relations
  (:func:`full_domain_instance`, :func:`all_subsets_instance`), the
  no-prerequisite course catalog of Example 4.2;
* **sparse** families (Proposition 5.2's hypothesis): keyed VERSO-style
  nested relations (Example 4.1), chain/cycle graphs over singleton sets,
  the bounded-prerequisite course catalog;
* **graphs**, flat and set-typed, for the transitive-closure and
  bipartiteness queries of Section 3.

All randomness is seeded; every generator is deterministic given its
arguments.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable

from ..objects.domains import materialize_domain
from ..objects.instance import Instance
from ..objects.schema import DatabaseSchema, database_schema
from ..objects.types import Type, as_type
from ..objects.values import Atom, CSet

__all__ = [
    "atoms_universe",
    "full_domain_instance",
    "all_subsets_instance",
    "dense_family",
    "schedule_instance",
    "singleton_chain",
    "keyed_pairs_instance",
    "dense_subset_graph",
    "sparse_chain_family",
    "verso_instance",
    "verso_family",
    "course_catalog_dense",
    "course_catalog_sparse",
    "flat_graph_schema",
    "set_graph_schema",
    "chain_graph",
    "cycle_graph",
    "random_graph",
    "bipartite_graph",
    "set_chain_graph",
    "set_random_graph",
]


def atoms_universe(n: int, prefix: str = "a") -> list[Atom]:
    """``n`` distinct atoms with sortable labels ``a00, a01, ...``."""
    width = max(2, len(str(max(0, n - 1))))
    return [Atom(f"{prefix}{index:0{width}d}") for index in range(n)]


# ---------------------------------------------------------------------------
# Dense families
# ---------------------------------------------------------------------------

def full_domain_instance(typ: Type | str, n: int,
                         max_size: int = 1_000_000) -> Instance:
    """Unary relation ``R[typ]`` containing *all* of ``dom(typ, D_n)``.

    The canonical dense workload: ``|I| = |dom(typ, D)|``, so the family
    is dense w.r.t. any ``<i,k>`` with ``typ`` among the largest
    ``<i,k>``-types.
    """
    typ = as_type(typ)
    atoms = atoms_universe(n)
    values = materialize_domain(typ, atoms, max_size)
    schema = database_schema(R=[typ])
    return Instance(schema, {"R": [(v,) for v in values]})


def all_subsets_instance(n: int) -> Instance:
    """``R[{U}]`` holding every subset of an ``n``-atom universe.

    Dense w.r.t. ``<1,1>``-types: ``|I| = 2**n`` while
    ``|dom(1,1,D)| = n + 2**n + ...`` stays polynomial in it.
    """
    return full_domain_instance("{U}", n)


def dense_family(typ: Type | str):
    """Family ``n -> full_domain_instance(typ, n)``."""
    typ = as_type(typ)

    def make(n: int) -> Instance:
        return full_domain_instance(typ, n)

    return make


# ---------------------------------------------------------------------------
# Sparse families
# ---------------------------------------------------------------------------

def sparse_chain_family(n: int) -> Instance:
    """``G[{U},{U}]`` chain over singleton sets: {a0}->{a1}->...

    ``|I| = n - 1`` while ``log2|dom(1,2,D)| >= n**2``: sparse w.r.t.
    ``<1,2>``-types.
    """
    atoms = atoms_universe(n)
    nodes = [CSet((a,)) for a in atoms]
    schema = database_schema(G=["{U}", "{U}"])
    return Instance(schema, {"G": list(zip(nodes, nodes[1:]))})


def singleton_chain(labels: str | Iterable[str] = "abc") -> Instance:
    """``G[{U},{U}]`` chain over singleton sets with *named* atoms:
    {a} -> {b} -> {c} by default.

    The CLI example graph and the conftest ``set_graph_instance``
    fixture, consolidated: where :func:`sparse_chain_family` generates
    ``a00, a01, ...`` labels for scaling sweeps, this one takes the
    labels verbatim for golden tests and documentation examples.
    """
    nodes = [CSet((Atom(label),)) for label in labels]
    return Instance(set_graph_schema(), {"G": list(zip(nodes, nodes[1:]))})


def keyed_pairs_instance(n_keys: int, values_per_key: int = 4) -> Instance:
    """``P[U, U]`` — the full key × value grid (Examples 5.1/5.3).

    The nest-operation workload: ``n_keys`` key atoms each paired with
    the same ``values_per_key`` value atoms, so nesting on the first
    column yields exactly ``n_keys`` rows, each carrying the full value
    set.
    """
    atoms = atoms_universe(n_keys + values_per_key)
    keys = atoms[:n_keys]
    values = atoms[n_keys:]
    schema = database_schema(P=["U", "U"])
    rows = [(key, value) for key in keys for value in values]
    return Instance(schema, {"P": rows})


def verso_instance(n: int, values_per_key: int = 3,
                   seed: int = 7) -> Instance:
    """Example 4.1's VERSO-style relation: atomic key -> one nested set.

    ``R[U, {U}]`` with each key appearing once (the key functionally
    determines the set), hence at most ``n`` sets are used out of the
    ``2**n`` possible: sparse w.r.t. the type ``{U}``.
    """
    rng = random.Random(seed)
    atoms = atoms_universe(n)
    rows = []
    for key in atoms:
        members = rng.sample(atoms, min(values_per_key, n))
        rows.append((key, CSet(members)))
    schema = database_schema(R=["U", "{U}"])
    return Instance(schema, {"R": rows})


def verso_family(values_per_key: int = 3, seed: int = 7):
    """Family ``n -> verso_instance(n, values_per_key, seed)``."""

    def make(n: int) -> Instance:
        return verso_instance(n, values_per_key, seed)

    return make


def course_catalog_dense(n_classes: int) -> Instance:
    """Example 4.2, no prerequisites: every combination of classes occurs.

    ``Takes[{U}]`` holds all ``2**n`` class subsets — dense w.r.t. the
    type "set of classes".
    """
    atoms = atoms_universe(n_classes, prefix="c")
    schema = database_schema(Takes=["{U}"])
    subsets = []
    for size in range(n_classes + 1):
        for combo in itertools.combinations(atoms, size):
            subsets.append((CSet(combo),))
    return Instance(schema, {"Takes": subsets})


def course_catalog_sparse(n_classes: int, max_simultaneous: int = 2) -> Instance:
    """Example 4.2, tight prerequisites: at most ``max_simultaneous``
    classes at a time — polynomially many valid sets, sparse w.r.t. the
    type "set of classes"."""
    atoms = atoms_universe(n_classes, prefix="c")
    schema = database_schema(Takes=["{U}"])
    subsets = []
    for size in range(min(max_simultaneous, n_classes) + 1):
        for combo in itertools.combinations(atoms, size):
            subsets.append((CSet(combo),))
    return Instance(schema, {"Takes": subsets})


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------

def flat_graph_schema() -> DatabaseSchema:
    """``G[U, U]`` — a graph on atomic nodes."""
    return database_schema(G=["U", "U"])


def set_graph_schema() -> DatabaseSchema:
    """``G[{U}, {U}]`` — a graph whose nodes are sets (Example 3.1)."""
    return database_schema(G=["{U}", "{U}"])


def _flat_instance(edges: Iterable[tuple[Atom, Atom]]) -> Instance:
    return Instance(flat_graph_schema(), {"G": list(edges)})


def chain_graph(n: int) -> Instance:
    """Path a0 -> a1 -> ... -> a(n-1) on atomic nodes."""
    atoms = atoms_universe(n)
    return _flat_instance(zip(atoms, atoms[1:]))


def cycle_graph(n: int) -> Instance:
    """Directed cycle on ``n`` atomic nodes."""
    atoms = atoms_universe(n)
    edges = list(zip(atoms, atoms[1:])) + ([(atoms[-1], atoms[0])] if n > 1 else [])
    return _flat_instance(edges)


def random_graph(n: int, p: float = 0.3, seed: int = 11) -> Instance:
    """G(n, p) on atomic nodes (seeded)."""
    rng = random.Random(seed)
    atoms = atoms_universe(n)
    edges = [(u, v) for u in atoms for v in atoms
             if u != v and rng.random() < p]
    return _flat_instance(edges)


def bipartite_graph(n_left: int, n_right: int, p: float = 0.5,
                    seed: int = 13) -> Instance:
    """A random bipartite graph (edges only across the two sides)."""
    rng = random.Random(seed)
    left = atoms_universe(n_left, prefix="l")
    right = atoms_universe(n_right, prefix="r")
    edges = [(u, v) for u in left for v in right if rng.random() < p]
    return _flat_instance(edges)


def set_chain_graph(n_atoms: int, length: int | None = None) -> Instance:
    """Chain over distinct subsets of an ``n_atoms`` universe.

    Nodes are the first ``length`` subsets in a deterministic enumeration
    (singletons, then pairs, ...), giving a graph of set-typed nodes as
    in Example 3.1.
    """
    atoms = atoms_universe(n_atoms)
    nodes: list[CSet] = []
    for size in range(1, n_atoms + 1):
        for combo in itertools.combinations(atoms, size):
            nodes.append(CSet(combo))
            if length is not None and len(nodes) >= length:
                break
        if length is not None and len(nodes) >= length:
            break
    return Instance(set_graph_schema(), {"G": list(zip(nodes, nodes[1:]))})


def dense_subset_graph(n: int) -> Instance:
    """Graph on ALL subsets of an ``n``-atom universe: S -> S ∪ {a}.

    ``|I|`` ~ ``n * 2**(n-1)`` (subset, one-atom-extension) pairs: the
    instance fills its node domain, hence dense w.r.t. ``<1,1>``-types —
    Theorem 4.1(2)'s hypothesis for the dense-fixpoint sweeps.
    """
    atoms = atoms_universe(n)
    subsets = materialize_domain(as_type("{U}"), atoms)
    edges = []
    for subset in subsets:
        for a in atoms:
            if a not in subset:  # type: ignore[operator]
                bigger = CSet(set(subset.elements) | {a})  # type: ignore[union-attr]
                edges.append((subset, bigger))
    return Instance(set_graph_schema(), {"G": edges})


def set_random_graph(n_atoms: int, n_nodes: int, p: float = 0.3,
                     seed: int = 17) -> Instance:
    """Random graph over ``n_nodes`` random subset-nodes (seeded)."""
    rng = random.Random(seed)
    atoms = atoms_universe(n_atoms)
    universe_size = 2 ** n_atoms
    picks = rng.sample(range(universe_size), min(n_nodes, universe_size))
    nodes = []
    for code in picks:
        members = [a for index, a in enumerate(atoms) if code >> index & 1]
        nodes.append(CSet(members))
    edges = [(u, v) for u in nodes for v in nodes
             if u != v and rng.random() < p]
    return Instance(set_graph_schema(), {"G": edges})


def schedule_instance(n_employees: int, n_days: int = 7,
                      n_teams: int = 3, seed: int = 19) -> Instance:
    """Remark 4.1's multi-sorted database: employees, days, teams.

    ``Schedule[U, {U}]`` maps each employee (sort ``emp``, labels
    ``e...``) to a working-day set (sort ``day``, labels ``d...``),
    cycling through *all* ``2**n_days`` day subsets — dense w.r.t.
    ``{U@day}`` once ``n_employees >= 2**n_days``.  ``Team[{U}]`` stores
    only ``n_teams`` employee sets — sparse w.r.t. ``{U@emp}``.
    """
    rng = random.Random(seed)
    employees = atoms_universe(n_employees, prefix="e")
    days = atoms_universe(n_days, prefix="d")
    schedule_rows = []
    for index, employee in enumerate(employees):
        code = index % (2 ** n_days)
        day_set = CSet(d for bit, d in enumerate(days) if code >> bit & 1)
        schedule_rows.append((employee, day_set))
    team_rows = []
    for _ in range(n_teams):
        members = rng.sample(employees, max(1, n_employees // n_teams))
        team_rows.append((CSet(members),))
    schema = database_schema(Schedule=["U", "{U}"], Team=["{U}"])
    return Instance(schema, {"Schedule": schedule_rows, "Team": team_rows})
