"""The supply-chain workload: a realistic nested instance family at scale.

Every other workload in :mod:`repro.workloads` is a synthetic graph or a
type tower.  This one exercises what complex objects are *for* (ROADMAP
item 4, modelled on virt-graph's 15-table benchmark design): nested
set-valued attributes (part certifications, BOM subtrees as set values),
multi-hop fixpoints over realistic hierarchies (BOM explosion,
supplier-tier reachability), and range-restricted join/lookup queries —
all at sizes up to 100K+ rows.

Schema (10 relations; ``U`` columns hold atoms, ``{U}`` columns hold
atom sets)::

    Part[U, U]            part        -> category
    PartCert[U, {U}]      part        -> certification set   (nested)
    Assembly[U, {U}]      assembly    -> direct-component set (nested)
    BOM[U, U]             parent part -> child part          (acyclic)
    Supplier[U, U]        supplier    -> tier (tier1|tier2|tier3)
    SupplierEdge[U, U]    seller      -> buyer (tier3->tier2->tier1)
    PartSupplier[U, U]    part        -> approved supplier
    Customer[U, U]        customer    -> region
    Order[U, U, U]        order, customer, part
    Inventory[U, U, U]    facility, part, stock band (low|mid|high)

**Determinism.**  ``supply_chain_instance(scale, seed)`` is a pure
function of its arguments: the same ``(scale, seed)`` always produces a
byte-identical instance (pinned by
:func:`repro.obs.ledger.instance_checksum` in the tests and goldens).

**Row-count formulas** (``scale`` = the size parameter, checked exactly
by :func:`supply_chain_rows` and the property tests)::

    Part          40*scale        Supplier       5*scale
    PartCert      40*scale        SupplierEdge   tier2*min(2, tier1)
    Assembly      13*scale                       + tier3*min(2, tier2)
    BOM           39*scale                       (= 8*scale once scale>=2)
    Customer      10*scale        PartSupplier  80*scale
    Inventory     80*scale        Order        100*scale
                                  ------------------------------------
                                  total        415*scale  (scale>=2)

``scale=256`` yields 106,240 rows — the 100K+ fixture ROADMAP items
1–3 are measured against.  Parts are organised in blocks of 40 forming
a ternary BOM tree each (depth 3), so the full BOM closure has exactly
``102*scale`` rows and every BOM fixpoint converges in a pinned,
scale-independent stage count.

**The golden question inventory.**  :data:`QUESTIONS` holds ~30
questions — textual ``.dl`` Datalog programs and CALC/IFP/PFP queries —
each tagged with a routing verdict in virt-graph's traffic-light scheme
(GREEN = nonrecursive/LOGSPACE, YELLOW = linear-recursive/PTIME, RED =
PFP/PSPACE).  :func:`answer_question` evaluates one question under any
engine lane (naive / seminaive / interned); committed expected answers
at pinned ``(seed, scale)`` points live next to this module in
``supply_chain_golden.json`` (:func:`load_golden`/:func:`write_golden`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from random import Random
from typing import Callable, Iterator, Mapping

from ..core.syntax import Query
from ..objects.instance import Instance
from ..objects.schema import DatabaseSchema, database_schema
from ..objects.values import Atom, CSet

__all__ = [
    "BANDS",
    "CATEGORIES",
    "CERTIFICATIONS",
    "FACILITIES",
    "GOLDEN_PATH",
    "GOLDEN_SCALES",
    "GOLDEN_SEED",
    "QUESTIONS",
    "REGIONS",
    "SCALES",
    "TIERS",
    "Question",
    "QuestionAnswer",
    "answer_question",
    "bom_closure_rows",
    "load_golden",
    "question_by_name",
    "question_verdict",
    "supply_chain_instance",
    "supply_chain_rows",
    "supply_chain_schema",
    "write_golden",
]


# ---------------------------------------------------------------------------
# Vocabulary: the fixed atom universes shared by every scale
# ---------------------------------------------------------------------------

#: Named sizes for CLI/bench convenience; ``large`` is the 100K+ point.
SCALES: dict[str, int] = {"tiny": 1, "small": 4, "medium": 32, "large": 256}

CATEGORIES = ("electronics", "mechanical", "raw", "fastener",
              "optics", "polymer", "alloy", "coating")
CERTIFICATIONS = ("iso9001", "iso14001", "rohs", "reach", "as9100", "itar")
TIERS = ("tier1", "tier2", "tier3")
BANDS = ("low", "mid", "high")
REGIONS = ("amer", "emea", "apac", "anz")
FACILITIES = ("f0", "f1", "f2", "f3", "f4")

#: Parts per block; each block is one ternary BOM tree of this size.
_BLOCK = 40
#: Internal (assembly) nodes per block: local indices 0..12 have children.
_BLOCK_INTERNAL = 13
#: BOM edges per block: every non-root node has exactly one parent.
_BLOCK_EDGES = _BLOCK - 1
#: Ancestor pairs per block: sum of node depths (3*1 + 9*2 + 27*3).
_BLOCK_CLOSURE = 102


def supply_chain_schema() -> DatabaseSchema:
    """The 10-relation nested supply-chain schema (see module docs)."""
    return database_schema(
        Part=["U", "U"],
        PartCert=["U", "{U}"],
        Assembly=["U", "{U}"],
        BOM=["U", "U"],
        Supplier=["U", "U"],
        SupplierEdge=["U", "U"],
        PartSupplier=["U", "U"],
        Customer=["U", "U"],
        Order=["U", "U", "U"],
        Inventory=["U", "U", "U"],
    )


def _tier_counts(scale: int) -> tuple[int, int, int]:
    """(tier1, tier2, tier3) supplier counts: 5*scale total."""
    return scale, 2 * scale, 2 * scale


def supply_chain_rows(scale: int) -> dict[str, int]:
    """Exact per-relation row counts at ``scale`` — the documented
    formulas the generator and the property tests both pin."""
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    tier1, tier2, tier3 = _tier_counts(scale)
    return {
        "Part": _BLOCK * scale,
        "PartCert": _BLOCK * scale,
        "Assembly": _BLOCK_INTERNAL * scale,
        "BOM": _BLOCK_EDGES * scale,
        "Supplier": tier1 + tier2 + tier3,
        "SupplierEdge": tier2 * min(2, tier1) + tier3 * min(2, tier2),
        "PartSupplier": 2 * _BLOCK * scale,
        "Customer": 10 * scale,
        "Order": 100 * scale,
        "Inventory": 2 * _BLOCK * scale,
    }


def bom_closure_rows(scale: int) -> int:
    """|TC(BOM)| at ``scale``: ancestor/descendant pairs, 102 per block."""
    return _BLOCK_CLOSURE * scale


def supply_chain_instance(scale: int, seed: int = 0) -> Instance:
    """The deterministic supply-chain instance at ``scale``.

    Labels use scale-independent widths (``p000000``, ``s0000``,
    ``c00000``, ``o000000``), so the named test entities the question
    inventory references — the apex assembly ``p000000``, the tier-1
    supplier ``s0000``, the customer ``c00000`` — exist at every scale.
    Supports ``scale <= 1999`` (label-width headroom).
    """
    if not 1 <= scale <= 1999:
        raise ValueError(f"scale must be in 1..1999, got {scale}")
    rng = Random(f"supply-chain:{scale}:{seed}")
    n_parts = _BLOCK * scale
    parts = [Atom(f"p{i:06d}") for i in range(n_parts)]
    tier1, tier2, tier3 = _tier_counts(scale)
    suppliers = [Atom(f"s{i:04d}") for i in range(tier1 + tier2 + tier3)]
    tiers = ([Atom("tier1")] * tier1 + [Atom("tier2")] * tier2
             + [Atom("tier3")] * tier3)
    customers = [Atom(f"c{i:05d}") for i in range(10 * scale)]
    orders = [Atom(f"o{i:06d}") for i in range(100 * scale)]
    categories = [Atom(c) for c in CATEGORIES]
    certs = [Atom(c) for c in CERTIFICATIONS]
    bands = [Atom(b) for b in BANDS]
    regions = [Atom(r) for r in REGIONS]
    facilities = [Atom(f) for f in FACILITIES]

    part_rows = [(p, rng.choice(categories)) for p in parts]
    part_cert_rows = [
        (p, CSet(rng.sample(certs, rng.randint(0, 3)))) for p in parts
    ]

    # BOM: per 40-part block, a ternary tree (local parent = (i-1)//3).
    bom_rows: list[tuple[Atom, Atom]] = []
    assembly_rows: list[tuple[Atom, CSet]] = []
    for block in range(scale):
        base = _BLOCK * block
        for local in range(1, _BLOCK):
            bom_rows.append((parts[base + (local - 1) // 3],
                             parts[base + local]))
        for local in range(_BLOCK_INTERNAL):
            children = [parts[base + 3 * local + k] for k in (1, 2, 3)]
            assembly_rows.append((parts[base + local], CSet(children)))

    supplier_rows = list(zip(suppliers, tiers))
    tier1_pool = suppliers[:tier1]
    tier2_pool = suppliers[tier1:tier1 + tier2]
    tier3_pool = suppliers[tier1 + tier2:]
    edge_rows = []
    for seller in tier2_pool:
        for buyer in rng.sample(tier1_pool, min(2, len(tier1_pool))):
            edge_rows.append((seller, buyer))
    for seller in tier3_pool:
        for buyer in rng.sample(tier2_pool, min(2, len(tier2_pool))):
            edge_rows.append((seller, buyer))

    part_supplier_rows = [
        (p, s) for p in parts for s in rng.sample(suppliers, 2)
    ]
    # First cycle through the regions so every region is inhabited at
    # every scale (the inventory has per-region questions), then draw.
    customer_rows = [
        (c, regions[i] if i < len(regions) else rng.choice(regions))
        for i, c in enumerate(customers)
    ]
    order_rows = [
        (o, rng.choice(customers), rng.choice(parts)) for o in orders
    ]
    inventory_rows = [
        (f, p, rng.choice(bands))
        for p in parts for f in rng.sample(facilities, 2)
    ]

    return Instance(supply_chain_schema(), {
        "Part": part_rows,
        "PartCert": part_cert_rows,
        "Assembly": assembly_rows,
        "BOM": bom_rows,
        "Supplier": supplier_rows,
        "SupplierEdge": edge_rows,
        "PartSupplier": part_supplier_rows,
        "Customer": customer_rows,
        "Order": order_rows,
        "Inventory": inventory_rows,
    })


# ---------------------------------------------------------------------------
# The golden question inventory
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Question:
    """One inventory question with its declared routing verdict.

    ``kind`` is ``"datalog"`` (``source`` holds a ``.dl`` program whose
    ``?-`` predicate is the answer relation) or ``"calc"`` (``build``
    constructs the :class:`~repro.core.syntax.Query`, evaluated under
    range restriction).  ``verdict`` uses virt-graph's scheme — GREEN =
    nonrecursive lookup/join (LOGSPACE), YELLOW = linear-recursive
    fixpoint (PTIME), RED = PFP (PSPACE) — and is asserted stable
    against the lint/adornment passes by :func:`question_verdict`.
    """

    name: str
    title: str
    kind: str  # "datalog" | "calc"
    verdict: str  # "GREEN" | "YELLOW" | "RED"
    source: str = ""
    build: Callable[[], Query] | None = None

    @property
    def recursive(self) -> bool:
        return self.verdict in ("YELLOW", "RED")


@dataclass(frozen=True)
class QuestionAnswer:
    """One question's answer under one lane: canonical rows, the
    order-independent checksum the goldens commit, and the fixpoint
    stage count (0 for nonrecursive questions)."""

    rows: frozenset
    checksum: int
    stages: int


def _dl(name: str, title: str, verdict: str, source: str) -> Question:
    return Question(name=name, title=title, kind="datalog",
                    verdict=verdict, source=source)


def _calc(name: str, title: str, verdict: str,
          build: Callable[[], Query]) -> Question:
    return Question(name=name, title=title, kind="calc",
                    verdict=verdict, build=build)


def _calc_cert_pairs() -> Query:
    """{(p, c) | exists s: PartCert(p, s) and c in s} — flatten the
    nested certification sets (GREEN: one nested unnest join)."""
    from ..core.builder import V, exists, member, query, rel

    p, c, s = V("p", "U"), V("c", "U"), V("s", "{U}")
    return query([p, c], exists(s, rel("PartCert")(p, s) & member(c, s)))


def _calc_certified_parts() -> Query:
    """{p | exists s: PartCert(p, s) and exists c in s} — parts holding
    at least one certification (GREEN: nested nonemptiness test)."""
    from ..core.builder import V, exists, member, query, rel

    p, c, s = V("p", "U"), V("c", "U"), V("s", "{U}")
    return query(
        [p], exists([s, c], rel("PartCert")(p, s) & member(c, s)))


def _calc_order_nest() -> Query:
    """{(c, s) | s = the set of parts customer c ordered} via an IFP
    term (Example 5.3's nest idiom on the Order relation — YELLOW)."""
    from ..core.builder import V, eq, exists, ifp, query, rel

    c, s = V("c", "U"), V("s", "{U}")
    o, p, o2 = V("o", "U"), V("p", "U"), V("o2", "U")
    yv = V("yv", "U")
    collected = ifp("Q", [("yv", "U")],
                    exists(o2, rel("Order")(o2, c, yv)) | rel("Q")(yv))
    return query([c, s],
                 exists([o, p], rel("Order")(o, c, p))
                 & eq(s, collected.as_term()))


def _calc_bom_tc() -> Query:
    from .queries import transitive_closure_query

    return transitive_closure_query("U", relation="BOM")


def _calc_supplier_tc() -> Query:
    from .queries import transitive_closure_query

    return transitive_closure_query("U", relation="SupplierEdge")


def _calc_supplier_pfp() -> Query:
    from .queries import pfp_transitive_closure_query

    return pfp_transitive_closure_query("U", relation="SupplierEdge")


#: The golden inventory: ~30 questions spanning GREEN/YELLOW (+1 RED).
QUESTIONS: tuple[Question, ...] = (
    # -- GREEN: lookups and joins (nonrecursive, LOGSPACE) ----------------
    _dl("parts-electronics", "Parts in the electronics category", "GREEN", """
        idb Q(U).
        Q(p) :- Part(p, 'electronics').
        ?- Q(p).
    """),
    _dl("cert-iso9001", "Parts certified iso9001 (nested membership)",
        "GREEN", """
        idb Q(U).
        Q(p) :- PartCert(p, cs), 'iso9001' in cs.
        ?- Q(p).
    """),
    _dl("dual-cert", "Parts certified both iso9001 and rohs", "GREEN", """
        idb Q(U).
        Q(p) :- PartCert(p, cs), 'iso9001' in cs, 'rohs' in cs.
        ?- Q(p).
    """),
    _dl("uncertified-parts", "Parts with an empty certification set",
        "GREEN", """
        idb Q(U).
        Q(p) :- PartCert(p, cs), cs = {}.
        ?- Q(p).
    """),
    _dl("tier1-suppliers", "Tier-1 suppliers", "GREEN", """
        idb Q(U).
        Q(s) :- Supplier(s, 'tier1').
        ?- Q(s).
    """),
    _dl("suppliers-of-part", "Approved suppliers of part p000013",
        "GREEN", """
        idb Q(U).
        Q(s) :- PartSupplier('p000013', s).
        ?- Q(s).
    """),
    _dl("apex-components", "Direct components of the apex assembly "
        "(nested set value)", "GREEN", """
        idb Q(U).
        Q(c) :- Assembly('p000000', cs), c in cs.
        ?- Q(c).
    """),
    _dl("customers-emea", "Customers in region emea", "GREEN", """
        idb Q(U).
        Q(c) :- Customer(c, 'emea').
        ?- Q(c).
    """),
    _dl("orders-of-customer", "Order lines of customer c00000", "GREEN", """
        idb Q(U, U).
        Q(o, p) :- Order(o, 'c00000', p).
        ?- Q(o, p).
    """),
    _dl("parts-ordered-emea", "Parts ordered by emea customers (join)",
        "GREEN", """
        idb Q(U).
        Q(p) :- Order(o, c, p), Customer(c, 'emea').
        ?- Q(p).
    """),
    _dl("low-stock", "Low-stock (part, facility) pairs", "GREEN", """
        idb Q(U, U).
        Q(p, f) :- Inventory(f, p, 'low').
        ?- Q(p, f).
    """),
    _dl("electronics-suppliers", "Suppliers approved for electronics "
        "parts (join)", "GREEN", """
        idb Q(U).
        Q(s) :- Part(p, 'electronics'), PartSupplier(p, s).
        ?- Q(s).
    """),
    _dl("co-suppliers", "Supplier pairs approved for a shared part",
        "GREEN", """
        idb Q(U, U).
        Q(a, b) :- PartSupplier(p, a), PartSupplier(p, b), a != b.
        ?- Q(a, b).
    """),
    _dl("itar-suppliers", "Suppliers of itar-certified parts "
        "(nested membership + join)", "GREEN", """
        idb Q(U).
        Q(s) :- PartSupplier(p, s), PartCert(p, cs), 'itar' in cs.
        ?- Q(s).
    """),
    _dl("high-stock-assemblies", "Assemblies held at band high somewhere",
        "GREEN", """
        idb Q(U).
        Q(a) :- Assembly(a, cs), Inventory(f, a, 'high').
        ?- Q(a).
    """),
    # -- YELLOW: multi-hop fixpoints (linear-recursive, PTIME) -----------
    _dl("bom-closure", "Full BOM ancestor/descendant closure", "YELLOW", """
        idb T(U, U).
        T(x, y) :- BOM(x, y).
        T(x, y) :- T(x, z), BOM(z, y).
        ?- T(x, y).
    """),
    _dl("bom-explosion-apex", "BOM explosion of the apex assembly "
        "p000000", "YELLOW", """
        idb R(U).
        R(c) :- BOM('p000000', c).
        R(c) :- R(z), BOM(z, c).
        ?- R(c).
    """),
    _dl("where-used-leaf", "Where-used: ancestors of leaf part p000039",
        "YELLOW", """
        idb A(U).
        A(x) :- BOM(x, 'p000039').
        A(x) :- BOM(x, z), A(z).
        ?- A(x).
    """),
    _dl("upstream-of-s0000", "Suppliers upstream of tier-1 supplier "
        "s0000 (tier reachability)", "YELLOW", """
        idb R(U).
        R(x) :- SupplierEdge(x, 's0000').
        R(x) :- SupplierEdge(x, z), R(z).
        ?- R(x).
    """),
    _dl("supplier-network-closure", "Transitive closure of the supplier "
        "network", "YELLOW", """
        idb T(U, U).
        T(x, y) :- SupplierEdge(x, y).
        T(x, y) :- T(x, z), SupplierEdge(z, y).
        ?- T(x, y).
    """),
    _dl("itar-exposure", "Assemblies transitively containing an "
        "itar-certified part", "YELLOW", """
        idb Bad(U).
        idb Up(U).
        Bad(p) :- PartCert(p, cs), 'itar' in cs.
        Up(x) :- BOM(x, p), Bad(p).
        Up(x) :- BOM(x, z), Up(z).
        ?- Up(x).
    """),
    _dl("reach-exposed-customers", "Customers whose ordered parts "
        "transitively contain a reach-certified part", "YELLOW", """
        idb Has(U).
        idb Q(U).
        Has(p) :- PartCert(p, cs), 'reach' in cs.
        Has(x) :- BOM(x, z), Has(z).
        Q(c) :- Order(o, c, p), Has(p).
        ?- Q(c).
    """),
    _dl("apex-component-suppliers", "Suppliers of any transitive "
        "component of the apex assembly", "YELLOW", """
        idb R(U).
        idb Q(U).
        R(c) :- BOM('p000000', c).
        R(c) :- R(z), BOM(z, c).
        Q(s) :- R(p), PartSupplier(p, s).
        ?- Q(s).
    """),
    _dl("shared-subcomponents", "Assembly pairs sharing a transitive "
        "subcomponent", "YELLOW", """
        idb T(U, U).
        idb Q(U, U).
        T(x, y) :- BOM(x, y).
        T(x, y) :- T(x, z), BOM(z, y).
        Q(a, b) :- T(a, z), T(b, z), a != b.
        ?- Q(a, b).
    """),
    # -- CALC: the calculus lanes over the same instance ------------------
    _calc("calc-cert-pairs", "Unnest the certification sets "
          "(CALC, range-restricted)", "GREEN", _calc_cert_pairs),
    _calc("calc-certified-parts", "Parts with a nonempty certification "
          "set (CALC)", "GREEN", _calc_certified_parts),
    _calc("calc-order-nest", "Nest ordered parts per customer via an "
          "IFP term (Example 5.3 idiom)", "YELLOW", _calc_order_nest),
    _calc("calc-bom-tc", "BOM closure via CALC+IFP (Example 3.1)",
          "YELLOW", _calc_bom_tc),
    _calc("calc-supplier-tc", "Supplier reachability via CALC+IFP",
          "YELLOW", _calc_supplier_tc),
    _calc("calc-supplier-pfp", "Supplier reachability via CALC+PFP "
          "(the PSPACE lane)", "RED", _calc_supplier_pfp),
)


def question_by_name(name: str) -> Question:
    for q in QUESTIONS:
        if q.name == name:
            return q
    known = ", ".join(q.name for q in QUESTIONS)
    raise KeyError(f"unknown question {name!r}; known: {known}")


def _parse_datalog(question: Question):
    from ..datalog import parse_program

    program, query = parse_program(question.source)
    if query is None:  # pragma: no cover - inventory invariant
        raise ValueError(f"question {question.name} has no ?- literal")
    return program, query


def answer_question(question: Question, inst: Instance,
                    strategy: str = "seminaive",
                    intern: bool = False) -> QuestionAnswer:
    """Evaluate one inventory question under one engine lane.

    Datalog questions run through :func:`evaluate_inflationary`; CALC
    questions run range-restricted (Theorem 5.1) so every lane is
    data-bounded.  The checksum is the shared ledger/bench quantity
    (:func:`repro.obs.ledger.rows_checksum`), so goldens, bench
    agreement checks and the result cache all key on the same number.
    """
    from ..obs import Tracer, get_tracer, rows_checksum, use_tracer

    outer = get_tracer()
    tracer = outer if outer.enabled else Tracer()
    with use_tracer(tracer):
        before = (tracer.counters.get("ifp.stages", 0),
                  tracer.counters.get("pfp.stages", 0))
        if question.kind == "datalog":
            from ..datalog import evaluate_inflationary

            program, query = _parse_datalog(question)
            result = evaluate_inflationary(program, inst,
                                           strategy=strategy, intern=intern)
            rows = frozenset(tuple(row) for row in result[query.predicate])
        elif question.kind == "calc":
            from ..core.safety import evaluate_range_restricted

            assert question.build is not None
            report = evaluate_range_restricted(
                question.build(), inst, strategy=strategy, intern=intern)
            rows = frozenset(tuple(row.items) for row in report.answer)
        else:  # pragma: no cover - inventory invariant
            raise ValueError(f"unknown question kind {question.kind!r}")
        after = (tracer.counters.get("ifp.stages", 0),
                 tracer.counters.get("pfp.stages", 0))
    stages = (after[0] - before[0]) + (after[1] - before[1])
    return QuestionAnswer(rows=rows, checksum=rows_checksum(rows),
                          stages=stages)


# ---------------------------------------------------------------------------
# Verdict stability: lint/adornment agree with the declared colors
# ---------------------------------------------------------------------------

#: Route severity order for multi-SCC programs (worst live SCC wins).
_ROUTE_ORDER = ("nonrecursive", "linear-recursive",
                "stratified-recursive", "unstratified")


def question_verdict(question: Question,
                     schema: DatabaseSchema | None = None) -> str:
    """The analyzer-derived color of a question, recomputed from the
    lint passes — GREEN/YELLOW/RED exactly when the program analyzer's
    routing verdict (Datalog) or the CPX001 complexity bound (CALC)
    lands on the matching tier.  The tests assert this equals the
    declared :attr:`Question.verdict` for every inventory entry."""
    schema = schema or supply_chain_schema()
    if question.kind == "datalog":
        from ..lint import analyze_program

        program, query = _parse_datalog(question)
        analysis = analyze_program(program, schema, query=query)
        routes = [v.route for v in analysis.routing
                  if set(v.scc) & analysis.reachable]
        worst = max(routes, key=_ROUTE_ORDER.index, default="nonrecursive")
        if worst == "nonrecursive":
            return "GREEN"
        if worst == "linear-recursive":
            return "YELLOW"
        return "RED"
    from ..lint import lint_query

    assert question.build is not None
    report = lint_query(question.build(), schema)
    verdicts = [d for d in report.diagnostics if d.code == "CPX001"]
    if not verdicts:
        return "RED"  # not range-restricted: no tractability guarantee
    message = verdicts[0].message
    if "LOGSPACE" in message:
        return "GREEN"
    if "PTIME" in message:
        return "YELLOW"
    return "RED"


# ---------------------------------------------------------------------------
# Committed goldens
# ---------------------------------------------------------------------------

#: Schema stamp of the committed golden document.
GOLDEN_SCHEMA = 1
#: The pinned generator seed the goldens were computed at.
GOLDEN_SEED = 0
#: The pinned scales the goldens cover.
GOLDEN_SCALES = (1, 4)
#: Where the committed goldens live (next to this module).
GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "supply_chain_golden.json")


def _golden_scale(inst: Instance, scale: int) -> dict:
    from ..obs import instance_checksum

    questions = {}
    for question in QUESTIONS:
        answer = answer_question(question, inst)
        questions[question.name] = {
            "rows": len(answer.rows),
            "checksum": answer.checksum,
            "stages": answer.stages if question.recursive else None,
            "verdict": question.verdict,
        }
    return {
        "instance_checksum": instance_checksum(inst),
        "relation_rows": {name: len(inst.relation(name))
                          for name in inst.schema.relation_names},
        "questions": questions,
    }


def write_golden(path: str = GOLDEN_PATH,
                 scales: tuple[int, ...] = GOLDEN_SCALES,
                 seed: int = GOLDEN_SEED) -> dict:
    """Recompute and write the golden document (seminaive lane).

    Run only when the generator or the inventory deliberately changes;
    the conformance tests then hold every other lane to these numbers.
    """
    document = {
        "schema": GOLDEN_SCHEMA,
        "seed": seed,
        "scales": {
            str(scale): _golden_scale(supply_chain_instance(scale, seed),
                                      scale)
            for scale in scales
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def load_golden(path: str = GOLDEN_PATH) -> dict:
    """Load the committed golden document."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"golden schema {document.get('schema')!r} != {GOLDEN_SCHEMA}")
    return document


def iter_golden_questions(
        document: Mapping) -> Iterator[tuple[int, Question, dict]]:
    """Yield ``(scale, question, expected)`` triples from a golden doc."""
    for scale_text, payload in sorted(document["scales"].items(),
                                      key=lambda kv: int(kv[0])):
        for name, expected in sorted(payload["questions"].items()):
            yield int(scale_text), question_by_name(name), expected
