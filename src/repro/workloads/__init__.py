"""Workload generators and canonical paper queries."""

from .queries import (
    bipartite_query,
    cyclic_nodes_query,
    nest_query,
    nest_query_ifp,
    pfp_transitive_closure_query,
    same_members_query,
    transitive_closure_query,
    transitive_closure_term_query,
)
from .generators import (
    all_subsets_instance,
    atoms_universe,
    bipartite_graph,
    chain_graph,
    course_catalog_dense,
    course_catalog_sparse,
    cycle_graph,
    dense_family,
    flat_graph_schema,
    full_domain_instance,
    random_graph,
    schedule_instance,
    set_chain_graph,
    set_graph_schema,
    set_random_graph,
    sparse_chain_family,
    verso_family,
    verso_instance,
)

__all__ = [
    "bipartite_query", "cyclic_nodes_query", "nest_query",
    "nest_query_ifp", "pfp_transitive_closure_query",
    "same_members_query", "transitive_closure_query",
    "transitive_closure_term_query",
    "all_subsets_instance", "atoms_universe", "bipartite_graph",
    "chain_graph", "course_catalog_dense", "course_catalog_sparse",
    "cycle_graph", "dense_family", "flat_graph_schema",
    "full_domain_instance", "random_graph", "schedule_instance",
    "set_chain_graph",
    "set_graph_schema", "set_random_graph", "sparse_chain_family",
    "verso_family", "verso_instance",
]
