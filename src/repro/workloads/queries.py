"""Canonical queries from the paper, as reusable constructors.

Each returns a :class:`repro.core.syntax.Query` over the corresponding
workload schema; examples, tests and benchmarks all share these.

* :func:`transitive_closure_query` — Example 3.1 (three variants);
* :func:`cyclic_nodes_query` — Example 3.1's "nodes on a cycle";
* :func:`bipartite_query` — the Section 3 bipartiteness test;
* :func:`nest_query` / :func:`nest_query_ifp` — Examples 5.1 and 5.3;
* :func:`same_members_query` — a pure set-comparison query;
* :func:`pfp_transitive_closure_query` — the PFP variant.
"""

from __future__ import annotations

from ..core.builder import V, eq, exists, forall, ifp, member, pfp, proj, query, rel
from ..core.syntax import Query
from ..objects.types import TypeLike

__all__ = [
    "transitive_closure_query",
    "transitive_closure_term_query",
    "pfp_transitive_closure_query",
    "cyclic_nodes_query",
    "bipartite_query",
    "nest_query",
    "nest_query_ifp",
    "same_members_query",
]


def transitive_closure_query(node_type: TypeLike = "{U}",
                             relation: str = "G") -> Query:
    """Example 3.1: TC of a graph via ``IFP`` used as a predicate.

    ``{(x, y) | IFP(phi(S), S)(x, y)}`` with
    ``phi(S) = G(x, y) or exists z (S(x, z) and G(z, y))``.
    """
    x, y, z = V("x", node_type), V("y", node_type), V("z", node_type)
    G, S = rel(relation), rel("S")
    fixpoint = ifp("S", [x, y], G(x, y) | exists(z, S(x, z) & G(z, y)))
    return query([x, y], fixpoint(x, y))


def transitive_closure_term_query(node_type: TypeLike = "{U}",
                                  relation: str = "G") -> Query:
    """Example 3.1's second variant: the whole closure as one set object.

    ``{x | x = IFP(phi(S), S)}`` — a ``CALC_2^2 + IFP`` query when the
    node type is ``{U}``.
    """
    from ..objects.types import SetType, TupleType, as_type

    node = as_type(node_type)
    x, y, z = V("x", node), V("y", node), V("z", node)
    G, S = rel(relation), rel("S")
    fixpoint = ifp("S", [x, y], G(x, y) | exists(z, S(x, z) & G(z, y)))
    result_type = SetType(TupleType((node, node)))
    w = V("w", result_type)
    return query([w], eq(w, fixpoint.as_term()))


def pfp_transitive_closure_query(node_type: TypeLike = "{U}",
                                 relation: str = "G") -> Query:
    """TC via PFP (the stage must re-assert S to converge)."""
    x, y, z = V("x", node_type), V("y", node_type), V("z", node_type)
    G, S = rel(relation), rel("S")
    fixpoint = pfp(
        "S", [x, y],
        S(x, y) | G(x, y) | exists(z, S(x, z) & G(z, y)),
    )
    return query([x, y], fixpoint(x, y))


def cyclic_nodes_query(node_type: TypeLike = "{U}",
                       relation: str = "G") -> Query:
    """Example 3.1's third query: nodes belonging to some cycle."""
    x, y, z = V("x", node_type), V("y", node_type), V("z", node_type)
    G, S = rel(relation), rel("S")
    fixpoint = ifp("S", [x, y], G(x, y) | exists(z, S(x, z) & G(z, y)))
    return query([x], exists(y, fixpoint(x, y) & eq(x, y)))


def bipartite_query(relation: str = "G") -> Query:
    """The Section 3 example: the graph itself if bipartite, else empty.

    ``{t : [U,U] | G(t) and exists X, Y (disjoint and every edge crosses)}``.
    """
    t, v = V("t", "[U,U]"), V("v", "[U,U]")
    X, Y, n = V("X", "{U}"), V("Y", "{U}"), V("n", "U")
    G = rel(relation)
    crossing = forall(v, G(proj(v, 1), proj(v, 2)).implies(
        (member(proj(v, 1), X) & member(proj(v, 2), Y))
        | (member(proj(v, 1), Y) & member(proj(v, 2), X))
    ))
    disjoint = ~exists(n, member(n, X) & member(n, Y))
    return query(
        [t],
        G(proj(t, 1), proj(t, 2)) & exists([X, Y], disjoint & crossing),
    )


def nest_query(relation: str = "P") -> Query:
    """Example 5.1: nest the second column of a binary flat relation,
    range-restricted through rule 9 (the ``<->`` form)."""
    x, s, y, z = V("x", "U"), V("s", "{U}"), V("y", "U"), V("z", "U")
    P = rel(relation)
    return query(
        [x, s],
        exists(z, P(x, z)) & forall(y, member(y, s).iff(P(x, y))),
    )


def nest_query_ifp(relation: str = "P") -> Query:
    """Example 5.3: the same nest via an IFP term (rule 9 not needed)."""
    x, s, z = V("x", "U"), V("s", "{U}"), V("z", "U")
    P, Q = rel(relation), rel("Q")
    fixpoint = ifp("Q", [("yv", "U")], P(x, V("yv")) | Q(V("yv")))
    return query([x, s], exists(z, P(x, z)) & eq(s, fixpoint.as_term()))


def same_members_query(relation: str = "R") -> Query:
    """Pairs of stored sets with the same members (trivially equal):
    a sanity query exercising the set primitives on ``R[{U}]``."""
    x, y = V("x", "{U}"), V("y", "{U}")
    R = rel(relation)
    from ..core.builder import subset

    return query([x, y], R(x) & R(y) & subset(x, y) & subset(y, x))
