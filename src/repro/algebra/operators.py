"""Nested relational algebra — the baseline language family ([AB87, AB86]).

The paper's Section 7 observes that fixpoint operators "provide a
tractable form of recursion, unlike the powerset operation": algebras
for complex objects (Abiteboul-Beeri style) express recursion by taking
powersets, at exponential cost.  This package implements that baseline
so the benchmarks can compare powerset-based and fixpoint-based
evaluation head to head.

Expressions are immutable trees evaluated against an
:class:`repro.objects.instance.Instance`; relations are positionally
addressed (columns 1..n, matching the calculus's ``x.i``).

Operators: base relation, selection (by condition AST), projection,
cartesian product, natural-style equijoin, union, difference,
intersection, renaming is positional (projection reorders), **nest**,
**unnest**, **powerset**, and tuple/set restructuring maps.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..obs import get_tracer
from ..objects.instance import Instance
from ..objects.values import CSet, CTuple, Value

__all__ = [
    "AlgebraError",
    "Expr",
    "BaseRel",
    "Select",
    "Project",
    "Product",
    "Join",
    "Union",
    "Difference",
    "Intersection",
    "Nest",
    "Unnest",
    "Powerset",
    "Condition",
    "ColEqCol",
    "ColEqConst",
    "ColInCol",
    "ColSubsetCol",
    "NotCond",
    "AndCond",
    "OrCond",
]

Rows = frozenset  # of tuple[Value, ...]


class AlgebraError(Exception):
    """Raised for malformed algebra expressions."""


# ---------------------------------------------------------------------------
# Selection conditions
# ---------------------------------------------------------------------------

class Condition:
    """Abstract selection condition over a positional row."""

    def holds(self, row: tuple) -> bool:
        raise NotImplementedError


class ColEqCol(Condition):
    """``row[i] == row[j]`` (1-indexed)."""

    def __init__(self, i: int, j: int):
        self.i, self.j = i, j

    def holds(self, row: tuple) -> bool:
        return row[self.i - 1] == row[self.j - 1]


class ColEqConst(Condition):
    """``row[i] == value``."""

    def __init__(self, i: int, value: Value):
        self.i, self.value = i, value

    def holds(self, row: tuple) -> bool:
        return row[self.i - 1] == self.value


class ColInCol(Condition):
    """``row[i] in row[j]`` (column j set-valued)."""

    def __init__(self, i: int, j: int):
        self.i, self.j = i, j

    def holds(self, row: tuple) -> bool:
        container = row[self.j - 1]
        if not isinstance(container, CSet):
            raise AlgebraError(f"column {self.j} is not set-valued")
        return row[self.i - 1] in container


class ColSubsetCol(Condition):
    """``row[i] sub row[j]`` (both set-valued)."""

    def __init__(self, i: int, j: int):
        self.i, self.j = i, j

    def holds(self, row: tuple) -> bool:
        left, right = row[self.i - 1], row[self.j - 1]
        if not isinstance(left, CSet) or not isinstance(right, CSet):
            raise AlgebraError("subset condition needs set-valued columns")
        return left.issubset(right)


class NotCond(Condition):
    def __init__(self, inner: Condition):
        self.inner = inner

    def holds(self, row: tuple) -> bool:
        return not self.inner.holds(row)


class AndCond(Condition):
    def __init__(self, *conditions: Condition):
        self.conditions = conditions

    def holds(self, row: tuple) -> bool:
        return all(c.holds(row) for c in self.conditions)


class OrCond(Condition):
    def __init__(self, *conditions: Condition):
        self.conditions = conditions

    def holds(self, row: tuple) -> bool:
        return any(c.holds(row) for c in self.conditions)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Abstract algebra expression.

    ``evaluate`` reports each operator application to the active
    :mod:`repro.obs` tracer (a span per node, with its output
    cardinality); subclasses implement :meth:`_compute`.  Recursion
    through child ``evaluate`` calls makes the trace mirror the
    expression tree — an EXPLAIN plan with actual row counts.
    """

    def evaluate(self, inst: Instance) -> Rows:
        tracer = get_tracer()
        if not tracer.enabled:
            return self._compute(inst)
        with tracer.span(f"algebra.{type(self).__name__}") as span:
            rows = self._compute(inst)
            span.set(rows=len(rows))
            tracer.count("algebra.operator_applications")
            tracer.observe("space.algebra.rows", len(rows))
            tracer.gauge_max("space.peak_algebra_rows", len(rows))
        return rows

    def _compute(self, inst: Instance) -> Rows:
        raise NotImplementedError

    def arity(self) -> int | None:
        """Output arity if statically known."""
        return None


class BaseRel(Expr):
    """A database relation."""

    def __init__(self, name: str):
        self.name = name

    def _compute(self, inst: Instance) -> Rows:
        return frozenset(tuple(row.items)
                         for row in inst.relation(self.name).tuples)


class Select(Expr):
    def __init__(self, child: Expr, condition: Condition):
        self.child, self.condition = child, condition

    def _compute(self, inst: Instance) -> Rows:
        return frozenset(row for row in self.child.evaluate(inst)
                         if self.condition.holds(row))


class Project(Expr):
    """Projection/reordering onto 1-indexed columns."""

    def __init__(self, child: Expr, columns: Iterable[int]):
        self.child = child
        self.columns = tuple(columns)
        if not self.columns:
            raise AlgebraError("projection needs at least one column")

    def _compute(self, inst: Instance) -> Rows:
        return frozenset(
            tuple(row[i - 1] for i in self.columns)
            for row in self.child.evaluate(inst)
        )


class Product(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left, self.right = left, right

    def _compute(self, inst: Instance) -> Rows:
        return frozenset(
            l + r for l in self.left.evaluate(inst)
            for r in self.right.evaluate(inst)
        )


class Join(Expr):
    """Equijoin on 1-indexed column pairs ``(left_col, right_col)``."""

    def __init__(self, left: Expr, right: Expr,
                 on: Iterable[tuple[int, int]]):
        self.left, self.right = left, right
        self.on = tuple(on)

    def _compute(self, inst: Instance) -> Rows:
        right_rows = list(self.right.evaluate(inst))
        index: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            key = tuple(row[j - 1] for _, j in self.on)
            index.setdefault(key, []).append(row)
        result = set()
        for left_row in self.left.evaluate(inst):
            key = tuple(left_row[i - 1] for i, _ in self.on)
            for right_row in index.get(key, ()):
                result.add(left_row + right_row)
        return frozenset(result)


class Union(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left, self.right = left, right

    def _compute(self, inst: Instance) -> Rows:
        return self.left.evaluate(inst) | self.right.evaluate(inst)


class Difference(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left, self.right = left, right

    def _compute(self, inst: Instance) -> Rows:
        return self.left.evaluate(inst) - self.right.evaluate(inst)


class Intersection(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left, self.right = left, right

    def _compute(self, inst: Instance) -> Rows:
        return self.left.evaluate(inst) & self.right.evaluate(inst)


class Nest(Expr):
    """Group by ``group_columns`` and collect ``nest_columns`` into a set.

    Output rows: group columns followed by one set-valued column holding
    the nested tuples (a single value if one column is nested, tuples
    otherwise) — the operator of [AB86]'s restructuring algebra and of
    the paper's Example 5.1.
    """

    def __init__(self, child: Expr, group_columns: Iterable[int],
                 nest_columns: Iterable[int]):
        self.child = child
        self.group_columns = tuple(group_columns)
        self.nest_columns = tuple(nest_columns)
        if not self.nest_columns:
            raise AlgebraError("nest needs at least one nested column")

    def _compute(self, inst: Instance) -> Rows:
        groups: dict[tuple, set[Value]] = {}
        for row in self.child.evaluate(inst):
            key = tuple(row[i - 1] for i in self.group_columns)
            if len(self.nest_columns) == 1:
                nested: Value = row[self.nest_columns[0] - 1]
            else:
                nested = CTuple(row[i - 1] for i in self.nest_columns)
            groups.setdefault(key, set()).add(nested)
        return frozenset(
            key + (CSet(members),) for key, members in groups.items()
        )


class Unnest(Expr):
    """Flatten a set-valued column: one output row per member."""

    def __init__(self, child: Expr, column: int):
        self.child, self.column = child, column

    def _compute(self, inst: Instance) -> Rows:
        result = set()
        for row in self.child.evaluate(inst):
            container = row[self.column - 1]
            if not isinstance(container, CSet):
                raise AlgebraError(f"column {self.column} is not set-valued")
            prefix = row[:self.column - 1]
            suffix = row[self.column:]
            for member in container:
                if isinstance(member, CTuple):
                    result.add(prefix + tuple(member.items) + suffix)
                else:
                    result.add(prefix + (member,) + suffix)
        return frozenset(result)


class Powerset(Expr):
    """All subsets of the child relation, as a unary set-valued relation.

    The exponential operator: ``|output| = 2**|child|``.  Guarded by
    ``max_subsets`` so benchmarks fail fast instead of hanging.
    """

    def __init__(self, child: Expr, max_subsets: int = 1_000_000):
        self.child = child
        self.max_subsets = max_subsets

    def _compute(self, inst: Instance) -> Rows:
        rows = list(self.child.evaluate(inst))
        if 2 ** len(rows) > self.max_subsets:
            raise AlgebraError(
                f"powerset of {len(rows)} rows exceeds cap {self.max_subsets}"
            )
        result = set()
        for size in range(len(rows) + 1):
            for combo in itertools.combinations(rows, size):
                result.add((CSet(CTuple(row) for row in combo),))
        return frozenset(result)
