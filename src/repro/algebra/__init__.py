"""Nested relational algebra baseline (powerset vs fixpoint recursion)."""

from .operators import (
    AlgebraError,
    AndCond,
    BaseRel,
    ColEqCol,
    ColEqConst,
    ColInCol,
    ColSubsetCol,
    Condition,
    Difference,
    Expr,
    Intersection,
    Join,
    Nest,
    NotCond,
    OrCond,
    Powerset,
    Product,
    Project,
    Select,
    Union,
    Unnest,
)
from .queries import is_transitive, tc_via_loop, tc_via_powerset

__all__ = [
    "AlgebraError", "AndCond", "BaseRel", "ColEqCol", "ColEqConst",
    "ColInCol", "ColSubsetCol", "Condition", "Difference", "Expr",
    "Intersection", "Join", "Nest", "NotCond", "OrCond", "Powerset",
    "Product", "Project", "Select", "Union", "Unnest",
    "is_transitive", "tc_via_loop", "tc_via_powerset",
]
