"""Derived algebra queries, including the powerset-based recursion baseline.

The centrepiece is transitive closure three ways:

* :func:`tc_via_powerset` — the algebra-with-powerset formulation:
  enumerate all subsets of the candidate pair space, select those that
  are transitive and contain G, take the least.  Exponential by design:
  this is the baseline the paper's conclusion contrasts with fixpoints.
* :func:`tc_via_loop` — a hand-rolled semi-naive loop (the "native"
  polynomial algorithm, the yardstick benchmarks measure engines
  against).
* CALC+IFP's version lives in :func:`repro.workloads.queries` /
  the examples; benchmarks race all three.
"""

from __future__ import annotations

import itertools

from ..obs import get_tracer
from ..objects.instance import Instance
from ..objects.values import Value
from .operators import AlgebraError

__all__ = ["tc_via_loop", "tc_via_powerset", "is_transitive"]

Pair = tuple
Pairs = frozenset


def _edges(inst: Instance, relation: str = "G") -> Pairs:
    return frozenset(
        (row.component(1), row.component(2))
        for row in inst.relation(relation).tuples
    )


def tc_via_loop(inst: Instance, relation: str = "G",
                strategy: str = "seminaive") -> Pairs:
    """Transitive closure by a native loop (polynomial baseline).

    ``strategy="seminaive"`` (default) extends only the frontier of
    newly discovered pairs each round; ``strategy="naive"`` recomposes
    the whole closure with the edge relation every round — the algebra
    counterpart of the engines' two strategies, raced in benchmarks.
    """
    if strategy not in ("naive", "seminaive"):
        raise AlgebraError(f"unknown strategy {strategy!r}")
    tracer = get_tracer()
    edges = _edges(inst, relation)
    successors: dict[Value, set[Value]] = {}
    for source, target in edges:
        successors.setdefault(source, set()).add(target)
    closure = set(edges)
    if strategy == "naive":
        while True:
            new = {
                (source, target)
                for source, middle in closure
                for target in successors.get(middle, ())
            } | edges
            if tracer.enabled:
                tracer.observe("space.loop.round_rows", len(new | closure))
                tracer.gauge_max("space.peak_loop_rows", len(new | closure))
            if new <= closure:
                return frozenset(closure)
            closure |= new
    frontier = set(edges)
    while frontier:
        new_frontier = set()
        for source, middle in frontier:
            for target in successors.get(middle, ()):
                pair = (source, target)
                if pair not in closure:
                    closure.add(pair)
                    new_frontier.add(pair)
        frontier = new_frontier
        if tracer.enabled:
            tracer.observe("space.loop.round_rows", len(closure))
            tracer.gauge_max("space.peak_loop_rows", len(closure))
    return frozenset(closure)


def is_transitive(pairs: Pairs) -> bool:
    """Is the pair set closed under composition?"""
    successors: dict[Value, set[Value]] = {}
    for source, target in pairs:
        successors.setdefault(source, set()).add(target)
    for source, middle in pairs:
        for target in successors.get(middle, ()):
            if (source, target) not in pairs:
                return False
    return True


def tc_via_powerset(inst: Instance, relation: str = "G",
                    max_subsets: int = 5_000_000) -> Pairs:
    """Transitive closure via the powerset operator (exponential baseline).

    Materialises every subset of the candidate pair space (nodes of G
    crossed), selects the transitive supersets of G, and intersects them
    — the smallest is the closure.  Candidate space is restricted to
    pairs reachable-node x reachable-node, the best case for the
    powerset formulation; it is still ``2**(n^2)``-ish.
    """
    tracer = get_tracer()
    edges = _edges(inst, relation)
    nodes = sorted({v for pair in edges for v in pair}, key=repr)
    candidates = [
        (u, v) for u in nodes for v in nodes
    ]
    extra = [pair for pair in candidates if pair not in edges]
    if 2 ** len(extra) > max_subsets:
        raise AlgebraError(
            f"powerset TC needs 2**{len(extra)} subsets (cap {max_subsets})"
        )
    examined = 0
    best: frozenset | None = None
    for size in range(len(extra) + 1):
        for combo in itertools.combinations(extra, size):
            examined += 1
            subset = edges | frozenset(combo)
            if is_transitive(subset):
                if best is None or len(subset) < len(best):
                    best = subset
        if best is not None:
            # Subsets are enumerated by increasing size, so the first
            # transitive superset found at the smallest size is minimal.
            break
    if tracer.enabled:
        tracer.count("algebra.powerset_subsets", examined)
    assert best is not None  # the full candidate space is transitive
    return frozenset(best)
