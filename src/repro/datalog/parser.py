"""A textual format for inf-Datalog programs.

Programs as text, so the CLI and ``examples/`` can carry them the way
``.repro`` files carry CALC queries::

    # transitive closure over G[{U}, {U}]
    idb T({U}, {U}).

    T(x, y) :- G(x, y).
    T(x, y) :- T(x, z), G(z, y).

    ?- T(x, y).

Grammar (whitespace and ``#``-to-end-of-line comments ignored):

* ``idb NAME(TYPE, ...).`` — one declaration per IDB predicate; TYPE is
  the paper's type notation (``U``, ``{T}``, ``[T1,...,Tn]``).
* ``HEAD :- LIT, ..., LIT.`` or ``HEAD.`` — a rule.  Body literals are
  ``P(t, ...)``, ``not P(t, ...)``, or built-ins ``t = t``, ``t != t``,
  ``t in t``, ``t not in t``, ``t sub t``, ``t not sub t``.
* ``?- P(t, ...).`` — at most one query literal; its constants seed the
  adornment analysis.
* Terms: a lowercase-initial bare name is a variable; constants are
  quoted atoms ``'a'``, numbers, sets ``{'a', 'b'}`` and tuples
  ``['a', {'b'}]`` (nested freely).

:func:`parse_program` returns ``(Program, query | None)``; errors raise
:class:`DatalogParseError` with 1-based line/column.
"""

from __future__ import annotations

from .syntax import (
    BuiltinLiteral,
    DConst,
    DVar,
    DatalogError,
    Literal,
    Program,
    Rule,
)

__all__ = ["DatalogParseError", "parse_program"]


class DatalogParseError(DatalogError):
    """A syntax error in a textual Datalog program."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


_PUNCT = ("?-", ":-", "!=", "(", ")", "{", "}", "[", "]", ",", ".", "=")


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.tokens: list[tuple[str, str, int, int]] = []
        self._lex()
        self.index = 0

    def _position(self, pos: int) -> tuple[int, int]:
        line = self.text.count("\n", 0, pos) + 1
        column = pos - (self.text.rfind("\n", 0, pos) + 1) + 1
        return line, column

    def _error(self, message: str, pos: int) -> DatalogParseError:
        line, column = self._position(pos)
        return DatalogParseError(message, line, column)

    def _lex(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
                continue
            if ch == "#":
                end = text.find("\n", self.pos)
                self.pos = n if end < 0 else end + 1
                continue
            start = self.pos
            if ch == "'":
                end = text.find("'", start + 1)
                if end < 0:
                    raise self._error("unterminated atom quote", start)
                self.tokens.append(("atom", text[start + 1:end],
                                    *self._position(start)))
                self.pos = end + 1
                continue
            two = text[start:start + 2]
            if two in _PUNCT:
                self.tokens.append(("punct", two, *self._position(start)))
                self.pos += 2
                continue
            if ch in _PUNCT:
                self.tokens.append(("punct", ch, *self._position(start)))
                self.pos += 1
                continue
            if ch.isdigit() or (ch == "-" and text[start + 1:start + 2].isdigit()):
                end = start + 1
                while end < n and text[end].isdigit():
                    end += 1
                self.tokens.append(("number", text[start:end],
                                    *self._position(start)))
                self.pos = end
                continue
            if ch.isalpha() or ch == "_":
                end = start
                while end < n and (text[end].isalnum() or text[end] == "_"):
                    end += 1
                self.tokens.append(("name", text[start:end],
                                    *self._position(start)))
                self.pos = end
                continue
            raise self._error(f"unexpected character {ch!r}", start)

    # -- token cursor ---------------------------------------------------
    def peek(self) -> tuple[str, str, int, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str, int, int]:
        token = self.peek()
        if token is None:
            line, column = self._position(len(self.text))
            raise DatalogParseError("unexpected end of program",
                                    line, column)
        self.index += 1
        return token

    def expect(self, value: str) -> tuple[str, str, int, int]:
        token = self.next()
        if token[1] != value:
            raise DatalogParseError(
                f"expected {value!r}, found {token[1]!r}",
                token[2], token[3])
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False


class _Parser:
    def __init__(self, text: str):
        self.lexer = _Lexer(text)

    def _fail(self, message: str,
              token: tuple[str, str, int, int]) -> DatalogParseError:
        return DatalogParseError(message, token[2], token[3])

    # -- types ----------------------------------------------------------
    def _type_text(self) -> str:
        """Consume one type expression, returning it as text for
        :func:`repro.objects.types.parse_type` (via Program's coercion)."""
        token = self.lexer.next()
        if token[1] == "U":
            return "U"
        if token[1] == "{":
            inner = self._type_text()
            self.lexer.expect("}")
            return "{" + inner + "}"
        if token[1] == "[":
            parts = [self._type_text()]
            while self.lexer.accept(","):
                parts.append(self._type_text())
            self.lexer.expect("]")
            return "[" + ",".join(parts) + "]"
        raise self._fail(f"expected a type, found {token[1]!r}", token)

    # -- terms ----------------------------------------------------------
    def _const_value(self) -> object:
        token = self.lexer.next()
        kind, value = token[0], token[1]
        if kind == "atom":
            return value
        if kind == "number":
            return int(value)
        if value == "{":
            elements = []
            if not self.lexer.accept("}"):
                elements.append(self._const_value())
                while self.lexer.accept(","):
                    elements.append(self._const_value())
                self.lexer.expect("}")
            return frozenset(elements)
        if value == "[":
            items = [self._const_value()]
            while self.lexer.accept(","):
                items.append(self._const_value())
            self.lexer.expect("]")
            return tuple(items)
        raise self._fail(f"expected a constant, found {value!r}", token)

    def _term(self) -> DVar | DConst:
        token = self.lexer.peek()
        if token is None:
            return DConst(self._const_value())  # raises end-of-program
        if token[0] == "name" and token[1][:1].islower():
            self.lexer.next()
            return DVar(token[1])
        if token[0] == "name":
            raise self._fail(
                f"{token[1]!r} reads as a predicate here; variables are "
                "lowercase-initial and atoms are quoted ('a')", token)
        return DConst(self._const_value())

    # -- literals -------------------------------------------------------
    def _relation_literal(self, positive: bool) -> Literal:
        token = self.lexer.next()
        if token[0] != "name":
            raise self._fail(
                f"expected a predicate name, found {token[1]!r}", token)
        predicate = token[1]
        self.lexer.expect("(")
        terms = [self._term()]
        while self.lexer.accept(","):
            terms.append(self._term())
        self.lexer.expect(")")
        try:
            return Literal(predicate, terms, positive)
        except DatalogError as exc:
            raise self._fail(str(exc), token)

    def _body_literal(self) -> Literal | BuiltinLiteral:
        token = self.lexer.peek()
        assert token is not None
        negated = False
        if token[0] == "name" and token[1] == "not":
            after = (self.lexer.tokens[self.lexer.index + 1]
                     if self.lexer.index + 1 < len(self.lexer.tokens)
                     else None)
            # ``not P(...)`` — but ``not in``/``not sub`` belongs to a
            # builtin and is handled after the left term below.
            if (after is not None and after[0] == "name"
                    and after[1] not in ("in", "sub")
                    and not after[1][:1].islower()):
                self.lexer.next()
                negated = True
                token = self.lexer.peek()
                assert token is not None
        if (not negated and token[0] == "name"
                and not token[1][:1].islower()):
            after = (self.lexer.tokens[self.lexer.index + 1]
                     if self.lexer.index + 1 < len(self.lexer.tokens)
                     else None)
            if after is not None and after[1] == "(":
                return self._relation_literal(True)
        if negated:
            return self._relation_literal(False)
        # Builtin: TERM [not] (= | != | in | sub) TERM
        left = self._term()
        op_token = self.lexer.next()
        positive = True
        op = op_token[1]
        if op == "not":
            positive = False
            op_token = self.lexer.next()
            op = op_token[1]
        if op == "!=":
            op, positive = "=", not positive
        if op not in ("=", "in", "sub"):
            raise self._fail(
                f"expected a builtin operator, found {op!r}", op_token)
        right = self._term()
        return BuiltinLiteral(op, left, right, positive)

    # -- statements -----------------------------------------------------
    def parse(self) -> tuple[Program, Literal | None]:
        idb_types: dict[str, list[str]] = {}
        rules: list[Rule] = []
        query: Literal | None = None
        while True:
            token = self.lexer.peek()
            if token is None:
                break
            if token[0] == "name" and token[1] == "idb":
                self.lexer.next()
                name_token = self.lexer.next()
                if name_token[0] != "name":
                    raise self._fail(
                        "expected a predicate name after 'idb'", name_token)
                if name_token[1] in idb_types:
                    raise self._fail(
                        f"duplicate idb declaration for {name_token[1]!r}",
                        name_token)
                self.lexer.expect("(")
                types = [self._type_text()]
                while self.lexer.accept(","):
                    types.append(self._type_text())
                self.lexer.expect(")")
                self.lexer.expect(".")
                idb_types[name_token[1]] = types
                continue
            if token[1] == "?-":
                self.lexer.next()
                if query is not None:
                    raise self._fail("only one ?- query is allowed", token)
                query = self._relation_literal(True)
                self.lexer.expect(".")
                continue
            head = self._relation_literal(True)
            body: list[Literal | BuiltinLiteral] = []
            if self.lexer.accept(":-"):
                body.append(self._body_literal())
                while self.lexer.accept(","):
                    body.append(self._body_literal())
            self.lexer.expect(".")
            try:
                rules.append(Rule(head, body))
            except DatalogError as exc:
                raise self._fail(str(exc), token)
        try:
            program = Program(rules, {name: tuple(types)
                                      for name, types in idb_types.items()})
        except DatalogError as exc:
            raise DatalogParseError(str(exc), 1, 1)
        return program, query


def parse_program(text: str) -> tuple[Program, Literal | None]:
    """Parse a textual Datalog program; see the module docstring.

    Returns ``(program, query)`` where ``query`` is the optional ``?-``
    literal (None when the text declares none).
    """
    return _Parser(text).parse()


def looks_like_program(text: str) -> bool:
    """Heuristic: does ``text`` read as a Datalog program rather than a
    CALC query?  Used by the CLI to route bare query arguments."""
    stripped = text.lstrip()
    return (":-" in text or stripped.startswith("idb ")
            or stripped.startswith("?-"))
