"""Complex-object Datalog with inflationary semantics (inf-Datalog)."""

from .syntax import (
    BuiltinLiteral,
    DatalogError,
    DConst,
    DepEdge,
    DTerm,
    DVar,
    Literal,
    Program,
    Rule,
)
from .engine import (
    STRATEGIES,
    evaluate_inflationary,
    evaluate_partial,
    inflationary_stages,
)
from .parser import DatalogParseError, parse_program
from .translation import program_to_query

__all__ = [
    "BuiltinLiteral", "DatalogError", "DatalogParseError", "DConst",
    "DepEdge", "DTerm", "DVar", "Literal",
    "Program", "Rule", "STRATEGIES",
    "evaluate_inflationary", "evaluate_partial", "inflationary_stages",
    "parse_program", "program_to_query",
]
