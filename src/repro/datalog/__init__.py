"""Complex-object Datalog with inflationary semantics (inf-Datalog)."""

from .syntax import (
    BuiltinLiteral,
    DatalogError,
    DConst,
    DTerm,
    DVar,
    Literal,
    Program,
    Rule,
)
from .engine import (
    STRATEGIES,
    evaluate_inflationary,
    evaluate_partial,
    inflationary_stages,
)
from .translation import program_to_query

__all__ = [
    "BuiltinLiteral", "DatalogError", "DConst", "DTerm", "DVar", "Literal",
    "Program", "Rule", "STRATEGIES",
    "evaluate_inflationary", "evaluate_partial", "inflationary_stages",
    "program_to_query",
]
