"""Syntax of complex-object Datalog (inf-Datalog, Section 3).

The paper relates ``CALC_i^k + IFP`` to inflationary Datalog with
complex objects and negation (``inf-Datalog^{i,k}_¬``), the style of
deductive languages of [AG91, Kup87, BNR+87].  Programs are sets of
rules::

    T(x, y) :- G(x, y)
    T(x, y) :- T(x, z), G(z, y)

over complex-object relations, with negated literals and the built-ins
``=``, ``in`` and ``sub`` in rule bodies.  Head predicates (IDB) are
disjoint from database predicates (EDB); variables are typed (types
declared per predicate).

Rules must be *safe*: the engine requires every variable to be bindable
by positive literals (see :mod:`repro.datalog.engine`'s planner), which
is the deductive cousin of Section 5's range restriction.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Union

from ..objects.types import TypeLike, as_type
from ..objects.values import make_value

__all__ = [
    "DatalogError",
    "DepEdge",
    "DVar",
    "DConst",
    "DTerm",
    "Literal",
    "BuiltinLiteral",
    "Rule",
    "Program",
]


class DepEdge(NamedTuple):
    """One edge of the predicate dependency graph: the rule head
    ``source`` depends on the body predicate ``target``; ``positive``
    records the polarity of the body occurrence.  Both polarities can
    coexist for the same (source, target) pair."""

    source: str
    target: str
    positive: bool


class DatalogError(Exception):
    """Raised for malformed programs or unsafe rules."""


class DVar:
    """A Datalog variable (untyped at the syntax level; types come from
    the predicate declarations)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise DatalogError(f"bad variable name {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DVar is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DVar) and self.name == other.name

    def __hash__(self) -> int:
        return hash((DVar, self.name))

    def __repr__(self) -> str:
        return self.name


class DConst:
    """A complex-object constant in a rule."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        object.__setattr__(self, "value", make_value(value))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DConst is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DConst) and self.value == other.value

    def __hash__(self) -> int:
        return hash((DConst, self.value))

    def __repr__(self) -> str:
        return repr(self.value)


DTerm = Union[DVar, DConst]


def _coerce_term(term: object) -> DTerm:
    if isinstance(term, (DVar, DConst)):
        return term
    if isinstance(term, str) and term[:1].islower():
        # Bare lowercase strings read as variables for rule ergonomics.
        return DVar(term)
    return DConst(term)


class Literal:
    """A (possibly negated) relation literal ``[not] P(t1, ..., tn)``."""

    __slots__ = ("predicate", "terms", "positive")

    def __init__(self, predicate: str, terms: Iterable[object],
                 positive: bool = True):
        terms = tuple(_coerce_term(t) for t in terms)
        if not terms:
            raise DatalogError(f"literal {predicate!r} needs arguments")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", terms)
        object.__setattr__(self, "positive", bool(positive))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    def negated(self) -> "Literal":
        return Literal(self.predicate, self.terms, not self.positive)

    def variables(self) -> frozenset[str]:
        return frozenset(t.name for t in self.terms if isinstance(t, DVar))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Literal)
                and self.predicate == other.predicate
                and self.terms == other.terms
                and self.positive == other.positive)

    def __hash__(self) -> int:
        return hash((Literal, self.predicate, self.terms, self.positive))

    def __repr__(self) -> str:
        sign = "" if self.positive else "not "
        return f"{sign}{self.predicate}({', '.join(map(repr, self.terms))})"


class BuiltinLiteral:
    """A built-in comparison ``t1 op t2`` with op in ``=``, ``in``, ``sub``,
    possibly negated."""

    __slots__ = ("op", "left", "right", "positive")

    OPS = ("=", "in", "sub")

    def __init__(self, op: str, left: object, right: object,
                 positive: bool = True):
        if op not in self.OPS:
            raise DatalogError(f"unknown builtin {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", _coerce_term(left))
        object.__setattr__(self, "right", _coerce_term(right))
        object.__setattr__(self, "positive", bool(positive))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BuiltinLiteral is immutable")

    def variables(self) -> frozenset[str]:
        return frozenset(
            t.name for t in (self.left, self.right) if isinstance(t, DVar)
        )

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BuiltinLiteral) and self.op == other.op
                and self.left == other.left and self.right == other.right
                and self.positive == other.positive)

    def __hash__(self) -> int:
        return hash((BuiltinLiteral, self.op, self.left, self.right,
                     self.positive))

    def __repr__(self) -> str:
        sign = "" if self.positive else "not "
        return f"{sign}({self.left!r} {self.op} {self.right!r})"


BodyLiteral = Union[Literal, BuiltinLiteral]


class Rule:
    """A rule ``head :- body``; the head must be a positive literal."""

    __slots__ = ("head", "body")

    def __init__(self, head: Literal, body: Iterable[BodyLiteral] = ()):
        if not isinstance(head, Literal) or not head.positive:
            raise DatalogError(f"rule head must be a positive literal: {head!r}")
        body = tuple(body)
        for literal in body:
            if not isinstance(literal, (Literal, BuiltinLiteral)):
                raise DatalogError(f"bad body literal {literal!r}")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rule is immutable")

    def variables(self) -> frozenset[str]:
        result = self.head.variables()
        for literal in self.body:
            result |= literal.variables()
        return result

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rule) and self.head == other.head
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((Rule, self.head, self.body))

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


class Program:
    """A Datalog program: rules plus IDB predicate type declarations.

    ``idb_types`` maps each intensional predicate to its column types.
    EDB predicates (anything else appearing in bodies) take their types
    from the database schema at evaluation time.
    """

    __slots__ = ("rules", "idb_types")

    def __init__(self, rules: Iterable[Rule],
                 idb_types: dict[str, Iterable[TypeLike]]):
        rules = tuple(rules)
        declared = {
            name: tuple(as_type(t) for t in types)
            for name, types in idb_types.items()
        }
        for rule in rules:
            if rule.head.predicate not in declared:
                raise DatalogError(
                    f"undeclared IDB predicate {rule.head.predicate!r} "
                    f"in head of {rule!r}"
                )
            if len(rule.head.terms) != len(declared[rule.head.predicate]):
                raise DatalogError(
                    f"head arity mismatch in {rule!r}"
                )
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "idb_types", declared)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Program is immutable")

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(self.idb_types)

    def edb_predicates(self) -> frozenset[str]:
        result: set[str] = set()
        for rule in self.rules:
            for literal in rule.body:
                if (isinstance(literal, Literal)
                        and literal.predicate not in self.idb_types):
                    result.add(literal.predicate)
        return frozenset(result)

    def predicates(self) -> frozenset[str]:
        """Every predicate name the program mentions (IDB and EDB)."""
        return self.idb_predicates | self.edb_predicates() | frozenset(
            rule.head.predicate for rule in self.rules
        )

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """The rules whose head is ``predicate`` (program order)."""
        return tuple(rule for rule in self.rules
                     if rule.head.predicate == predicate)

    def dependency_edges(self) -> frozenset[DepEdge]:
        """The labelled predicate dependency graph.

        ``DepEdge(P, Q, positive)`` is present when some rule with head
        ``P`` has a (possibly negated) body literal over ``Q``.
        Built-in literals contribute no edges: they relate values, not
        predicates.
        """
        edges: set[DepEdge] = set()
        for rule in self.rules:
            for literal in rule.body:
                if isinstance(literal, Literal):
                    edges.add(DepEdge(rule.head.predicate,
                                      literal.predicate, literal.positive))
        return frozenset(edges)

    def level(self) -> tuple[int, int]:
        """Max set height / tuple width among declared IDB column types
        (the ``<i,k>`` of inf-Datalog^{i,k})."""
        heights = [t.set_height for ts in self.idb_types.values() for t in ts]
        widths = [t.tuple_width for ts in self.idb_types.values() for t in ts]
        return (max(heights, default=0), max(widths, default=0))

    def __repr__(self) -> str:
        return "\n".join(repr(rule) for rule in self.rules)
