"""Bottom-up evaluation of complex-object Datalog.

Two semantics, mirroring the paper's fixpoint operators:

* **inflationary** (:func:`evaluate_inflationary`) — the semantics the
  paper's inf-Datalog carries: all rules fire simultaneously against the
  previous stage (negative IDB literals read the previous stage too),
  and the results are unioned in.  This matches CALC+IFP.
* **partial** (:func:`evaluate_partial`) — each stage *replaces* the IDB
  (the PFP analogue); may diverge, reported like
  :class:`repro.core.fixpoint.PFPDivergenceError`.

Rule bodies are evaluated by a greedy binding planner: at each point the
engine picks an evaluable literal — a positive relation literal (join),
an equality with one side bound, a membership with bound container, or
any fully-bound literal used as a filter.  If no literal is evaluable the
rule is *unsafe* and :class:`DatalogError` is raised: this is the
deductive counterpart of range restriction, and it keeps evaluation
polynomial per stage.

Inflationary evaluation supports two strategies:

* ``strategy="naive"`` — every stage re-fires every rule against the
  full previous IDB, re-deriving everything derived before (the oracle
  the differential tests compare against);
* ``strategy="seminaive"`` (default) — true semi-naive firing: each rule
  is rewritten into *delta versions*, one per positive IDB body literal,
  where that literal reads only the rows derived at the previous stage.
  Because the inflationary IDB only grows, a derivation that is new at
  stage ``i`` must have some positive IDB literal matching a stage
  ``i-1`` delta row (negative IDB literals can only flip from true to
  false as the IDB grows, never enable a new derivation), so firing only
  the delta versions after stage 1 is exact — including for programs
  with negation.

Orthogonally to the strategy, ``intern=True`` runs the same plans over
the **interned columnar kernel**: the instance is interned once into a
:class:`repro.objects.intern.ValueStore` (rows become tuples of dense
ids, EDB relations ``array('q')``-backed column tables), and positive
literals probe :class:`repro.core.fixpoint.IndexPool` hash indexes keyed
on their bound positions instead of scanning.  EDB indexes persist for
the whole evaluation; IDB/delta views get a fresh pool per stage (their
rows change).  Because interning is a bijection on the values in play,
the packed states the generic fixpoint engines see are element-wise
renamed but structurally identical — stage counts, derivation counters
and PFP divergence (period, stage) all coincide with the object engines,
which therefore remain the differential oracle.  Results are uninterned
at the API boundary.

Partial (PFP) semantics replaces the IDB wholesale each stage, so no
derivation can be carried over; ``strategy`` is accepted for interface
symmetry but both values evaluate identically.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from ..core.fixpoint import (
    IndexPool,
    iterate_ifp,
    iterate_ifp_delta,
    iterate_pfp,
)
from ..obs import get_tracer
from ..objects.instance import Instance
from ..objects.intern import ValueStore, intern_instance
from ..objects.values import CSet, Value
from .syntax import (
    BuiltinLiteral,
    DatalogError,
    DConst,
    DVar,
    Literal,
    Program,
    Rule,
)

__all__ = [
    "STRATEGIES",
    "evaluate_inflationary",
    "evaluate_partial",
    "inflationary_stages",
]

Row = tuple
Env = dict[str, Value]

#: Recognised evaluation strategies (mirrors repro.core.evaluation).
STRATEGIES = ("naive", "seminaive")

#: Prefix marking a delta view of an IDB predicate in rewritten rules.
#: Rewrites are engine-internal; user predicates never carry the prefix.
_DELTA = "Δ::"


class _Database:
    """Uniform view of EDB relations and the current IDB state, over
    plain nested values (the differential oracle).

    ``delta`` (when given) holds the per-predicate rows derived at the
    previous stage; rewritten rules address it through predicates named
    ``Δ::P``.  The matching/builtin methods shared with
    :class:`_InternedDatabase` form the protocol the planner drives.
    """

    def __init__(self, inst: Instance, idb: Mapping[str, frozenset[Row]],
                 program: Program,
                 delta: Mapping[str, frozenset[Row]] | None = None):
        self.inst = inst
        self.idb = idb
        self.program = program
        self.delta = delta

    def rows(self, predicate: str) -> frozenset[Row]:
        if predicate.startswith(_DELTA):
            assert self.delta is not None
            return self.delta.get(predicate[len(_DELTA):], frozenset())
        if predicate in self.program.idb_types:
            return self.idb.get(predicate, frozenset())
        relation = self.inst.relation(predicate)
        return frozenset(tuple(row.items) for row in relation.tuples)

    def term_value(self, term, env: Env):
        if isinstance(term, DConst):
            return term.value
        assert isinstance(term, DVar)
        return env.get(term.name)

    def match_positive(self, literal: Literal, env: Env) -> Iterator[Env]:
        """Join a positive relation literal against the database."""
        for row in self.rows(literal.predicate):
            if len(row) != len(literal.terms):
                raise DatalogError(
                    f"arity mismatch matching {literal!r} against a "
                    f"{len(row)}-tuple"
                )
            extended = dict(env)
            ok = True
            for term, value in zip(literal.terms, row):
                if isinstance(term, DConst):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound = extended.get(term.name)
                    if bound is None:
                        extended[term.name] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                yield extended

    def check_builtin(self, literal: BuiltinLiteral, env: Env) -> bool:
        left = self.term_value(literal.left, env)
        right = self.term_value(literal.right, env)
        assert left is not None and right is not None
        if literal.op == "=":
            result = left == right
        elif literal.op == "in":
            if not isinstance(right, CSet):
                raise DatalogError(f"'in' against non-set value {right!r}")
            result = left in right
        else:  # sub
            if not isinstance(left, CSet) or not isinstance(right, CSet):
                raise DatalogError("'sub' needs set values")
            result = left.issubset(right)
        return result == literal.positive

    def generate_builtin(self, literal: BuiltinLiteral,
                         env: Env) -> Iterator[Env] | None:
        """Use a positive builtin as a generator if it can bind a variable.

        ``x = t`` with t bound binds x; ``x in s`` with s bound
        enumerates x.  Returns None if not applicable.
        """
        if not literal.positive:
            return None
        left_val = self.term_value(literal.left, env)
        right_val = self.term_value(literal.right, env)
        if literal.op == "=":
            if left_val is None and right_val is not None \
                    and isinstance(literal.left, DVar):
                name = literal.left.name
                return iter([{**env, name: right_val}])
            if right_val is None and left_val is not None \
                    and isinstance(literal.right, DVar):
                name = literal.right.name
                return iter([{**env, name: left_val}])
            return None
        if literal.op == "in":
            if left_val is None and right_val is not None \
                    and isinstance(literal.left, DVar):
                members = self._set_members(right_val)
                if members is None:
                    raise DatalogError(
                        f"'in' against non-set value "
                        f"{self._display(right_val)!r}")
                name = literal.left.name
                return iter([{**env, name: element} for element in members])
            return None
        return None

    def _set_members(self, value):
        return value.elements if isinstance(value, CSet) else None

    def _display(self, value):
        return value


class _InternedEngine:
    """Per-evaluation interned state: the :class:`ValueStore`, the
    columnar EDB, and the persistent EDB index pool."""

    def __init__(self, program: Program, inst: Instance, tracer):
        self.program = program
        self.inst = inst
        self.tracer = tracer
        self.store, tables = intern_instance(inst)
        self.edb_rows = {name: table.to_frozenset()
                         for name, table in tables.items()}
        self.edb_pool = IndexPool(tracer)

    def database(self, idb: Mapping[str, frozenset[Row]],
                 delta: Mapping[str, frozenset[Row]] | None = None
                 ) -> "_InternedDatabase":
        return _InternedDatabase(self, idb, delta)

    def unintern_result(
        self, result: Mapping[str, frozenset[Row]]
    ) -> dict[str, frozenset[Row]]:
        return {
            name: frozenset(self.store.unintern_row(row) for row in rows)
            for name, rows in result.items()
        }


class _InternedDatabase:
    """The interned twin of :class:`_Database`: rows are tuples of dense
    ids and positive literals probe hash indexes on bound positions.

    Each stage builds a fresh instance, and with it a fresh index pool
    for the IDB/delta views — that is the per-delta-stage invalidation;
    the immutable EDB keeps its indexes in the engine's persistent pool.
    """

    def __init__(self, engine: _InternedEngine,
                 idb: Mapping[str, frozenset[Row]],
                 delta: Mapping[str, frozenset[Row]] | None = None):
        self.engine = engine
        self.store: ValueStore = engine.store
        self.program = engine.program
        self.idb = idb
        self.delta = delta
        self.stage_pool = IndexPool(engine.tracer)

    def _source(self, predicate: str):
        """``(index source key, rows, owning pool)`` for a predicate."""
        if predicate.startswith(_DELTA):
            assert self.delta is not None
            rows = self.delta.get(predicate[len(_DELTA):], frozenset())
            return predicate, rows, self.stage_pool
        if predicate in self.program.idb_types:
            return predicate, self.idb.get(predicate, frozenset()), \
                self.stage_pool
        rows = self.engine.edb_rows.get(predicate)
        if rows is None:
            self.engine.inst.relation(predicate)  # raises the usual error
            raise AssertionError("unreachable")
        return predicate, rows, self.engine.edb_pool

    def rows(self, predicate: str) -> frozenset[Row]:
        _, rows, _ = self._source(predicate)
        return rows

    def term_value(self, term, env: Env):
        if isinstance(term, DConst):
            return self.store.intern(term.value)
        assert isinstance(term, DVar)
        return env.get(term.name)

    def match_positive(self, literal: Literal, env: Env) -> Iterator[Env]:
        """Join a positive literal by probing the index on its bound
        positions (constants and env-bound variables); a literal with
        no bound position scans, exactly like the object engine."""
        bound_positions: list[int] = []
        bound_key: list[int] = []
        out_positions: list[tuple[str, int]] = []
        eq_checks: list[tuple[int, int]] = []
        first_seen: dict[str, int] = {}
        for position, term in enumerate(literal.terms):
            value = self.term_value(term, env)
            if value is not None:
                bound_positions.append(position)
                bound_key.append(value)
            elif term.name in first_seen:
                eq_checks.append((position, first_seen[term.name]))
            else:
                first_seen[term.name] = position
                out_positions.append((term.name, position))
        source_key, rows, pool = self._source(literal.predicate)
        for row in rows:
            if len(row) != len(literal.terms):
                raise DatalogError(
                    f"arity mismatch matching {literal!r} against a "
                    f"{len(row)}-tuple"
                )
            break
        if bound_positions:
            candidates = pool.probe(source_key, rows,
                                    tuple(bound_positions),
                                    tuple(bound_key))
        else:
            candidates = rows
        for row in candidates:
            if any(row[p] != row[q] for p, q in eq_checks):
                continue
            extended = dict(env)
            for name, position in out_positions:
                extended[name] = row[position]
            yield extended

    def check_builtin(self, literal: BuiltinLiteral, env: Env) -> bool:
        left = self.term_value(literal.left, env)
        right = self.term_value(literal.right, env)
        assert left is not None and right is not None
        if literal.op == "=":
            result = left == right
        elif literal.op == "in":
            members = self.store.set_members(right)
            if members is None:
                raise DatalogError(
                    f"'in' against non-set value {self.store.value(right)!r}")
            result = left in members
        else:  # sub
            left_members = self.store.set_members(left)
            right_members = self.store.set_members(right)
            if left_members is None or right_members is None:
                raise DatalogError("'sub' needs set values")
            result = left_members <= right_members
        return result == literal.positive

    generate_builtin = _Database.generate_builtin

    def _set_members(self, value):
        return self.store.set_members(value)

    def _display(self, value):
        return self.store.value(value)


def _is_bound(literal, env: Env, db) -> bool:
    return all(
        db.term_value(t, env) is not None
        for t in (literal.terms if isinstance(literal, Literal)
                  else (literal.left, literal.right))
    )


def _rule_bindings(rule: Rule, db) -> Iterator[Env]:
    """All satisfying bindings of a rule body, via the greedy planner.

    ``db`` is either database flavour; the planner only speaks the
    shared matching protocol."""

    def extend(env: Env, remaining: list) -> Iterator[Env]:
        if not remaining:
            yield env
            return
        # Pick the first evaluable literal.
        for position, literal in enumerate(remaining):
            rest = remaining[:position] + remaining[position + 1:]
            if isinstance(literal, Literal) and literal.positive:
                for extended in db.match_positive(literal, env):
                    yield from extend(extended, rest)
                return
            if _is_bound(literal, env, db):
                if isinstance(literal, Literal):
                    row = tuple(db.term_value(t, env) for t in literal.terms)
                    holds = row in db.rows(literal.predicate)
                    if holds == literal.positive:
                        yield from extend(env, rest)
                else:
                    if db.check_builtin(literal, env):
                        yield from extend(env, rest)
                return
            if isinstance(literal, BuiltinLiteral):
                generated = db.generate_builtin(literal, env)
                if generated is not None:
                    for extended in generated:
                        yield from extend(extended, rest)
                    return
        raise DatalogError(
            f"unsafe rule: no literal evaluable with bindings "
            f"{sorted(env)} among {remaining!r}"
        )

    yield from extend({}, list(rule.body))


def _derive(rules, db,
            idb: Mapping[str, frozenset[Row]]) -> dict[str, frozenset[Row]]:
    """Fire the given rules once against ``db``; collect head rows.

    When tracing, counts rows derived and *dedup hits* — derivations of
    a row already produced this stage or already present in the previous
    IDB (the re-derivations semi-naive evaluation skips).
    """
    tracer = get_tracer()
    program = db.program
    derived: dict[str, set[Row]] = {name: set() for name in program.idb_types}
    for rule in rules:
        tracer.heartbeat()
        for env in _rule_bindings(rule, db):
            row = []
            for term in rule.head.terms:
                value = db.term_value(term, env)
                if value is None:
                    raise DatalogError(
                        f"head variable unbound by body in {rule!r}"
                    )
                row.append(value)
            head_row = tuple(row)
            predicate = rule.head.predicate
            if tracer.enabled:
                tracer.count("datalog.rows_derived")
                if (head_row in derived[predicate]
                        or head_row in idb.get(predicate, frozenset())):
                    tracer.count("datalog.dedup_hits")
            derived[predicate].add(head_row)
    return {name: frozenset(rows) for name, rows in derived.items()}


#: A database factory: ``make_db(idb, delta=None)`` builds the per-stage
#: database view (object-valued or interned).
_DbFactory = Callable[..., object]


def _delta_rules(program: Program) -> tuple[Rule, ...]:
    """The semi-naive rewriting: one variant of each rule per positive
    IDB body literal, with that occurrence reading the ``Δ::`` view.

    Rules with no positive IDB literal have no variant — their
    derivations cannot depend on newly derived rows, so they fire only
    at the first stage.
    """
    variants: list[Rule] = []
    for rule in program.rules:
        for position, literal in enumerate(rule.body):
            if (isinstance(literal, Literal) and literal.positive
                    and literal.predicate in program.idb_types):
                body = list(rule.body)
                body[position] = Literal(_DELTA + literal.predicate,
                                         literal.terms)
                variants.append(Rule(rule.head, body))
    return tuple(variants)


def _check_strategy(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown evaluation strategy {strategy!r}; "
            f"expected one of {STRATEGIES}"
        )


def _naive_stage(program: Program, make_db: _DbFactory):
    """Build a naive stage function: all rules against the full IDB."""

    def stage(packed: frozenset) -> frozenset:
        idb = _unpack(packed, program)
        return _pack(_derive(program.rules, make_db(idb), idb))

    return stage


def _seminaive_stage(program: Program, make_db: _DbFactory,
                     delta_rules: tuple[Rule, ...]):
    """Build a delta-protocol stage function for the packed IDB state.

    The first call (empty state, empty delta) fires every original rule;
    subsequent calls fire only the delta variants against the previous
    stage's fresh rows.  ``datalog.delta_rows`` counts the fresh rows a
    stage contributes; ``datalog.refires_avoided`` counts, per delta
    stage, the rows already settled in the IDB — each is at least one
    re-derivation the naive engine would perform and this stage skips.
    """
    tracer = get_tracer()

    def stage(packed: frozenset, packed_delta: frozenset) -> frozenset:
        idb = _unpack(packed, program)
        if not packed and not packed_delta:
            derived = _derive(program.rules, make_db(idb), idb)
        else:
            delta = _unpack(packed_delta, program)
            derived = _derive(delta_rules, make_db(idb, delta), idb)
        packed_derived = _pack(derived)
        if tracer.enabled:
            tracer.count("datalog.delta_rows",
                         len(packed_derived - packed))
            if packed:
                tracer.count("datalog.refires_avoided", len(packed))
        return packed_derived

    return stage


def _pack(idb: Mapping[str, frozenset[Row]]) -> frozenset:
    """Pack a multi-predicate IDB state into one frozenset for the
    generic fixpoint engines (rows are tagged with their predicate)."""
    return frozenset(
        (name, row) for name, rows in idb.items() for row in rows
    )


def _unpack(packed: frozenset, program: Program) -> dict[str, frozenset[Row]]:
    result: dict[str, set[Row]] = {name: set() for name in program.idb_types}
    for name, row in packed:
        result[name].add(row)
    return {name: frozenset(rows) for name, rows in result.items()}


def _factory(program: Program, inst: Instance, intern: bool,
             tracer) -> tuple[_DbFactory, _InternedEngine | None]:
    """The per-stage database factory for the chosen kernel."""
    if not intern:
        def make_db(idb, delta=None):
            return _Database(inst, idb, program, delta)

        return make_db, None
    engine = _InternedEngine(program, inst, tracer)
    return engine.database, engine


def evaluate_inflationary(
    program: Program, inst: Instance,
    max_stages: int | None = 100_000,
    strategy: str = "seminaive",
    intern: bool = False,
) -> dict[str, frozenset[Row]]:
    """Inflationary semantics: ``J_i = T(J_{i-1}) ∪ J_{i-1}``.

    ``strategy="seminaive"`` (default) fires delta-rewritten rules after
    the first stage; ``strategy="naive"`` re-fires every rule against
    the full IDB each stage.  Both produce identical results and stage
    counts (see the module docstring for why the rewriting is exact).
    ``intern=True`` runs the chosen strategy over the interned columnar
    kernel with indexed joins; the answer (and every counter except the
    index telemetry) is identical.
    """
    _check_strategy(strategy)
    tracer = get_tracer()
    with tracer.span("datalog.inflationary",
                     idb=sorted(program.idb_types),
                     strategy=strategy, intern=intern) as span:
        make_db, engine = _factory(program, inst, intern, tracer)
        if strategy == "seminaive":
            final = iterate_ifp_delta(
                _seminaive_stage(program, make_db, _delta_rules(program)),
                max_stages, tracer)
        else:
            final = iterate_ifp(_naive_stage(program, make_db),
                                max_stages, tracer)
        span.set(rows=len(final))
        result = _unpack(final, program)
        if engine is not None:
            result = engine.unintern_result(result)
            if tracer.enabled:
                tracer.gauge("space.interned_values", len(engine.store))
        if tracer.enabled:
            for name in sorted(result):
                tracer.gauge(f"space.idb[{name}]", len(result[name]))
    return result


def evaluate_partial(
    program: Program, inst: Instance,
    max_stages: int | None = 100_000,
    strategy: str = "seminaive",
    intern: bool = False,
) -> dict[str, frozenset[Row]]:
    """Partial (non-inflationary) semantics: ``J_i = T(J_{i-1})``.

    Raises :class:`repro.core.fixpoint.PFPDivergenceError` on cycles.
    ``strategy`` is validated for interface symmetry, but the stage
    *replaces* the IDB, so there is no delta to exploit: both strategies
    evaluate identically.  ``intern=True`` selects the interned kernel;
    interning is a bijection on the values in play, so the state
    sequence — and hence any divergence period and stage — coincides
    with the object engine's.
    """
    _check_strategy(strategy)
    tracer = get_tracer()
    with tracer.span("datalog.partial",
                     idb=sorted(program.idb_types),
                     strategy=strategy, intern=intern) as span:
        make_db, engine = _factory(program, inst, intern, tracer)
        final = iterate_pfp(_naive_stage(program, make_db),
                            max_stages, tracer)
        span.set(rows=len(final))
        result = _unpack(final, program)
        if engine is not None:
            result = engine.unintern_result(result)
            if tracer.enabled:
                tracer.gauge("space.interned_values", len(engine.store))
        if tracer.enabled:
            for name in sorted(result):
                tracer.gauge(f"space.idb[{name}]", len(result[name]))
    return result


def inflationary_stages(
    program: Program, inst: Instance,
    strategy: str = "seminaive",
    intern: bool = False,
) -> Iterator[dict[str, frozenset[Row]]]:
    """Yield the successive inflationary stages (for tests/inspection).

    The stage sequence is strategy- and kernel-independent; exposing the
    parameters lets the differential tests assert exactly that.
    """
    from ..core.fixpoint import ifp_delta_stages, ifp_stages

    _check_strategy(strategy)
    make_db, engine = _factory(program, inst, intern, get_tracer())
    if strategy == "seminaive":
        packed_stages = ifp_delta_stages(
            _seminaive_stage(program, make_db, _delta_rules(program)))
    else:
        packed_stages = ifp_stages(_naive_stage(program, make_db))
    for packed in packed_stages:
        stage = _unpack(packed, program)
        yield engine.unintern_result(stage) if engine is not None else stage
