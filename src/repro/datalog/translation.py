"""Translation between Datalog programs and CALC+IFP (Section 3).

"The connection between fixpoint calculi and Datalog-like languages for
complex objects is similar to that in the flat case": an inflationary
Datalog program with a single IDB predicate S translates to the
``CALC_i^k + IFP`` query whose fixpoint body is the disjunction of the
rule bodies (variables other than the head's existentially quantified).

:func:`program_to_query` implements that translation for single-IDB
programs (multi-IDB simultaneous induction can always be reduced to this
case by padding/tagging; we keep the translation minimal and test the
languages' agreement through the engine instead).
"""

from __future__ import annotations

from ..core.builder import ifp, query
from ..core.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Formula,
    In,
    Not,
    Or,
    Query,
    RelAtom,
    Subset,
    Var,
)
from ..objects.schema import DatabaseSchema
from ..objects.types import Type
from .syntax import BuiltinLiteral, DatalogError, DConst, DVar, Literal, Program

__all__ = ["program_to_query"]


def _term_to_calc(term, types: dict[str, Type]):
    if isinstance(term, DConst):
        return Const(term.value)
    assert isinstance(term, DVar)
    return Var(term.name, types.get(term.name))


def _literal_to_calc(literal, types: dict[str, Type]) -> Formula:
    if isinstance(literal, Literal):
        atom = RelAtom(
            literal.predicate,
            [_term_to_calc(t, types) for t in literal.terms],
        )
        return atom if literal.positive else Not(atom)
    assert isinstance(literal, BuiltinLiteral)
    left = _term_to_calc(literal.left, types)
    right = _term_to_calc(literal.right, types)
    if literal.op == "=":
        formula: Formula = Equals(left, right)
    elif literal.op == "in":
        formula = In(left, right)
    else:
        formula = Subset(left, right)
    return formula if literal.positive else Not(formula)


def _infer_variable_types(program: Program, schema: DatabaseSchema,
                          rule) -> dict[str, Type]:
    """Assign types to a rule's variables from predicate signatures."""
    types: dict[str, Type] = {}

    def note(name: str, typ: Type, where: str) -> None:
        existing = types.get(name)
        if existing is not None and existing != typ:
            raise DatalogError(
                f"variable {name!r} used at types {existing!r} and {typ!r} "
                f"({where})"
            )
        types[name] = typ

    def predicate_types(predicate: str) -> tuple[Type, ...]:
        if predicate in program.idb_types:
            return program.idb_types[predicate]
        return schema[predicate].column_types

    for literal in (rule.head, *rule.body):
        if isinstance(literal, Literal):
            signature = predicate_types(literal.predicate)
            for term, typ in zip(literal.terms, signature):
                if isinstance(term, DVar):
                    note(term.name, typ, repr(literal))
    # Built-ins can type remaining variables from the other side.
    changed = True
    while changed:
        changed = False
        for literal in rule.body:
            if not isinstance(literal, BuiltinLiteral):
                continue
            left, right = literal.left, literal.right
            left_t = (types.get(left.name) if isinstance(left, DVar)
                      else left.value.infer_type())
            right_t = (types.get(right.name) if isinstance(right, DVar)
                       else right.value.infer_type())
            if literal.op == "=":
                if left_t and not right_t and isinstance(right, DVar):
                    note(right.name, left_t, repr(literal))
                    changed = True
                if right_t and not left_t and isinstance(left, DVar):
                    note(left.name, right_t, repr(literal))
                    changed = True
            elif literal.op == "in":
                from ..objects.types import SetType

                if right_t and isinstance(right_t, SetType) \
                        and not left_t and isinstance(left, DVar):
                    note(left.name, right_t.element, repr(literal))
                    changed = True
    missing = rule.variables() - set(types)
    if missing:
        raise DatalogError(
            f"cannot type variables {sorted(missing)} in {rule!r}"
        )
    return types


def program_to_query(program: Program, schema: DatabaseSchema) -> Query:
    """Translate a single-IDB inflationary program to a CALC+IFP query.

    The query's answer equals the program's IDB relation under
    inflationary semantics (tested in ``tests/test_datalog.py``).
    """
    idb_names = sorted(program.idb_types)
    if len(idb_names) != 1:
        raise DatalogError(
            "translation supports single-IDB programs; "
            f"got {idb_names}"
        )
    name = idb_names[0]
    column_types = program.idb_types[name]
    column_vars = [Var(f"_c{index}", typ)
                   for index, typ in enumerate(column_types, start=1)]

    disjuncts: list[Formula] = []
    for rule_index, rule in enumerate(program.rules):
        types = _infer_variable_types(program, schema, rule)
        # Rename the rule apart and equate head terms with column vars.
        renamed = {
            var_name: Var(f"_r{rule_index}_{var_name}", types[var_name])
            for var_name in rule.variables()
        }

        def rename_term(term):
            if isinstance(term, DConst):
                return Const(term.value)
            return renamed[term.name]

        conjuncts: list[Formula] = []
        for column_var, head_term in zip(column_vars, rule.head.terms):
            conjuncts.append(Equals(column_var, rename_term(head_term)))
        for literal in rule.body:
            if isinstance(literal, Literal):
                atom = RelAtom(
                    literal.predicate,
                    [rename_term(t) for t in literal.terms],
                )
                conjuncts.append(atom if literal.positive else Not(atom))
            else:
                left = rename_term(literal.left)
                right = rename_term(literal.right)
                if literal.op == "=":
                    formula: Formula = Equals(left, right)
                elif literal.op == "in":
                    formula = In(left, right)
                else:
                    formula = Subset(left, right)
                conjuncts.append(formula if literal.positive else Not(formula))
        body: Formula = (conjuncts[0] if len(conjuncts) == 1
                         else And(conjuncts))
        for var in sorted(renamed.values(), key=lambda v: v.name,
                          reverse=True):
            body = Exists(var, body)
        disjuncts.append(body)

    fixpoint_body: Formula = (disjuncts[0] if len(disjuncts) == 1
                              else Or(disjuncts))
    fixpoint = ifp(name, [(v.name, v.typ) for v in column_vars],
                   fixpoint_body)
    return query([(v.name, v.typ) for v in column_vars],
                 fixpoint(*column_vars))
