"""Deterministic single-tape Turing machines.

The substrate for Section 4's simulation results: queries are defined via
Turing machines that read a standard encoding ``enc(I)`` of the input
instance from the tape and leave ``enc(q(I))`` behind (Theorem 4.1's
proof).  This module provides the machine model itself plus a small
library of machines used by the tests and benchmarks.

The tape is right-infinite with a designated blank.  Transitions map
``(state, symbol) -> (state', symbol', move)`` with moves ``L``, ``R``,
``S``; missing transitions halt the machine (useful for acceptors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "BLANK",
    "LEFT",
    "RIGHT",
    "STAY",
    "TMError",
    "Transition",
    "TuringMachine",
    "Configuration",
    "RunResult",
    "copy_machine",
    "identity_machine",
    "erase_machine",
    "parity_machine",
    "binary_increment_machine",
]

BLANK = "_"
LEFT = "L"
RIGHT = "R"
STAY = "S"


class TMError(Exception):
    """Raised for malformed machines or runaway runs."""


@dataclass(frozen=True)
class Transition:
    """One machine instruction."""

    new_state: str
    write: str
    move: str

    def __post_init__(self) -> None:
        if self.move not in (LEFT, RIGHT, STAY):
            raise TMError(f"bad move {self.move!r}")


@dataclass
class Configuration:
    """A machine configuration: tape, head position, current state.

    The tape is stored sparsely (position -> non-blank symbol).
    """

    state: str
    head: int = 0
    tape: dict[int, str] = field(default_factory=dict)

    def read(self) -> str:
        return self.tape.get(self.head, BLANK)

    def write(self, symbol: str) -> None:
        if symbol == BLANK:
            self.tape.pop(self.head, None)
        else:
            self.tape[self.head] = symbol

    def tape_string(self) -> str:
        """Non-blank tape contents from cell 0 to the last non-blank cell."""
        if not self.tape:
            return ""
        last = max(self.tape)
        first = min(0, min(self.tape))
        return "".join(self.tape.get(i, BLANK) for i in range(first, last + 1)).rstrip(BLANK)

    def snapshot(self, width: int) -> tuple[str, ...]:
        """The first ``width`` cells as a tuple (for trace comparisons)."""
        return tuple(self.tape.get(i, BLANK) for i in range(width))


@dataclass(frozen=True)
class RunResult:
    """Outcome of a run: halting state, final tape, and step count."""

    state: str
    output: str
    steps: int
    accepted: bool


class TuringMachine:
    """A deterministic single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to a :class:`Transition`.
    ``accept_states`` / ``reject_states`` halt immediately when entered;
    a missing transition also halts (in whatever state the machine is).
    """

    def __init__(
        self,
        name: str,
        transitions: Mapping[tuple[str, str], Transition | tuple[str, str, str]],
        initial_state: str,
        accept_states: frozenset[str] | set[str] = frozenset(),
        reject_states: frozenset[str] | set[str] = frozenset(),
    ):
        normalised: dict[tuple[str, str], Transition] = {}
        for key, value in transitions.items():
            if not isinstance(value, Transition):
                value = Transition(*value)
            normalised[key] = value
        self.name = name
        self.transitions = normalised
        self.initial_state = initial_state
        self.accept_states = frozenset(accept_states)
        self.reject_states = frozenset(reject_states)

    @property
    def states(self) -> frozenset[str]:
        result = {self.initial_state} | self.accept_states | self.reject_states
        for (state, _), transition in self.transitions.items():
            result.add(state)
            result.add(transition.new_state)
        return frozenset(result)

    @property
    def alphabet(self) -> frozenset[str]:
        result = {BLANK}
        for (_, symbol), transition in self.transitions.items():
            result.add(symbol)
            result.add(transition.write)
        return frozenset(result)

    def initial_configuration(self, tape_input: str) -> Configuration:
        tape = {i: s for i, s in enumerate(tape_input) if s != BLANK}
        return Configuration(state=self.initial_state, head=0, tape=tape)

    def step(self, config: Configuration) -> bool:
        """Apply one transition in place; False if the machine has halted."""
        if (config.state in self.accept_states
                or config.state in self.reject_states):
            return False
        transition = self.transitions.get((config.state, config.read()))
        if transition is None:
            return False
        config.write(transition.write)
        if transition.move == LEFT:
            config.head -= 1
        elif transition.move == RIGHT:
            config.head += 1
        config.state = transition.new_state
        return True

    def run(self, tape_input: str, max_steps: int = 1_000_000) -> RunResult:
        """Run to halt; raise :class:`TMError` past ``max_steps``."""
        config = self.initial_configuration(tape_input)
        steps = 0
        while self.step(config):
            steps += 1
            if steps > max_steps:
                raise TMError(
                    f"machine {self.name!r} exceeded {max_steps} steps"
                )
        return RunResult(
            state=config.state,
            output=config.tape_string(),
            steps=steps,
            accepted=config.state in self.accept_states,
        )

    def trace(self, tape_input: str,
              max_steps: int = 100_000) -> Iterator[Configuration]:
        """Yield successive configurations (including the initial one).

        Each yielded configuration is an independent snapshot.
        """
        config = self.initial_configuration(tape_input)
        yield Configuration(config.state, config.head, dict(config.tape))
        steps = 0
        while self.step(config):
            yield Configuration(config.state, config.head, dict(config.tape))
            steps += 1
            if steps > max_steps:
                raise TMError(f"trace exceeded {max_steps} steps")

    def __repr__(self) -> str:
        return (f"TuringMachine({self.name!r}, {len(self.states)} states, "
                f"{len(self.transitions)} transitions)")


# ---------------------------------------------------------------------------
# Library machines
# ---------------------------------------------------------------------------

def identity_machine(alphabet: frozenset[str] | set[str]) -> TuringMachine:
    """Halts immediately, leaving the input unchanged (the identity query)."""
    return TuringMachine(
        "identity", {}, initial_state="halt", accept_states={"halt"}
    )


def erase_machine(alphabet: frozenset[str] | set[str]) -> TuringMachine:
    """Erases the tape (the empty-answer query)."""
    transitions = {
        ("scan", symbol): Transition("scan", BLANK, RIGHT)
        for symbol in alphabet if symbol != BLANK
    }
    transitions[("scan", BLANK)] = Transition("done", BLANK, STAY)
    return TuringMachine(
        "erase", transitions, initial_state="scan", accept_states={"done"}
    )


def copy_machine(alphabet: frozenset[str] | set[str]) -> TuringMachine:
    """Copies the input word after a separator: ``w`` becomes ``w:w``.

    A classic quadratic-time machine, used to exercise the simulation on
    something that actually moves both ways.  The tape stays one-way
    infinite: cell 0 gets a left-end marker ``M<s>``, already-copied
    symbols are shadowed as ``m<s>``, and rewinds anchor on the marked
    prefix instead of searching for a left blank.
    """
    symbols = sorted(s for s in alphabet if s != BLANK and s != ":")
    transitions: dict[tuple[str, str], Transition] = {}
    for s in symbols:
        # Start: mark cell 0 as left end and carry its symbol.
        transitions[("start", s)] = Transition(f"carry_{s}", f"M{s}", RIGHT)
        # Carry right over the unmarked suffix; at the first blank the
        # separator is not yet written — write it, then place the symbol.
        for t in symbols:
            transitions[(f"carry_{s}", t)] = Transition(f"carry_{s}", t, RIGHT)
            transitions[(f"carry2_{s}", t)] = Transition(f"carry2_{s}", t, RIGHT)
        transitions[(f"carry_{s}", ":")] = Transition(f"carry2_{s}", ":", RIGHT)
        transitions[(f"carry_{s}", BLANK)] = Transition(f"place_{s}", ":", RIGHT)
        transitions[(f"place_{s}", BLANK)] = Transition("rewind", s, LEFT)
        transitions[(f"carry2_{s}", BLANK)] = Transition("rewind", s, LEFT)
        # Find: step right off the marked prefix onto the next symbol.
        transitions[("find", f"m{s}")] = Transition("find", f"m{s}", RIGHT)
        transitions[("find", f"M{s}")] = Transition("find", f"M{s}", RIGHT)
        transitions[("find", s)] = Transition(f"carry_{s}", f"m{s}", RIGHT)
        # Rewind: left until a marked symbol anchors us.
        transitions[("rewind", s)] = Transition("rewind", s, LEFT)
        transitions[("rewind", f"m{s}")] = Transition("find", f"m{s}", RIGHT)
        transitions[("rewind", f"M{s}")] = Transition("find", f"M{s}", RIGHT)
        # Unmark: restore the input once everything is copied.
        transitions[("unmark", f"m{s}")] = Transition("unmark", s, LEFT)
        transitions[("unmark", f"M{s}")] = Transition("done", s, STAY)
    transitions[("rewind", ":")] = Transition("rewind", ":", LEFT)
    transitions[("find", ":")] = Transition("unmark", ":", LEFT)
    transitions[("start", BLANK)] = Transition("done", BLANK, STAY)
    return TuringMachine(
        "copy", transitions, initial_state="start", accept_states={"done"}
    )


def parity_machine() -> TuringMachine:
    """Accepts binary words with an even number of 1s, leaving ``1`` at
    cell 0 iff the parity is even (a boolean query).

    Cell 0 is marked on the first step so the machine can rewind on a
    one-way-infinite tape; the scanned symbols are erased on the way
    back, so the final tape is exactly the verdict bit.
    """
    transitions = {
        # Mark the left end, record the first symbol's contribution.
        ("start", "0"): Transition("even", "L", RIGHT),
        ("start", "1"): Transition("odd", "L", RIGHT),
        ("start", BLANK): Transition("yes", "1", STAY),  # empty word
        # Scan right, tracking parity, shadowing symbols with x.
        ("even", "0"): Transition("even", "x", RIGHT),
        ("even", "1"): Transition("odd", "x", RIGHT),
        ("odd", "0"): Transition("odd", "x", RIGHT),
        ("odd", "1"): Transition("even", "x", RIGHT),
        # End of input: rewind, erasing the shadow symbols.
        ("even", BLANK): Transition("rew_even", BLANK, LEFT),
        ("odd", BLANK): Transition("rew_odd", BLANK, LEFT),
        ("rew_even", "x"): Transition("rew_even", BLANK, LEFT),
        ("rew_odd", "x"): Transition("rew_odd", BLANK, LEFT),
        # Back at the left marker: write the verdict.
        ("rew_even", "L"): Transition("yes", "1", STAY),
        ("rew_odd", "L"): Transition("no", BLANK, STAY),
    }
    return TuringMachine(
        "parity", transitions, initial_state="start",
        accept_states={"yes"}, reject_states={"no"},
    )


def binary_increment_machine() -> TuringMachine:
    """Increments a binary number written LSB-first starting at cell 0."""
    transitions = {
        ("inc", "0"): Transition("done", "1", STAY),
        ("inc", "1"): Transition("inc", "0", RIGHT),
        ("inc", BLANK): Transition("done", "1", STAY),
    }
    return TuringMachine(
        "increment", transitions, initial_state="inc", accept_states={"done"}
    )
