"""The constructive proof of Theorem 4.1: simulating PTIME TMs in CALC+IFP.

Theorem 4.1(2) shows ``CALC_i^k + IFP`` expresses every PTIME query on
dense inputs by (i) postulating an order ``<_U`` on the atoms, (ii)
encoding the input instance on a simulated Turing machine tape, (iii)
running the machine inside an inflationary fixpoint over a relation
``R_M`` whose rows are

    [ timestamp (m-tuple) | cell id (m-tuple) | symbol | state-if-head ]

— timestamps are needed because IFP can only *add* tuples — and (iv)
decoding ``enc(q(I))`` from the final configuration.

This module executes that construction end-to-end:

* ``R_M`` rows are exactly the paper's (2m+2)-ary tuples, with m-tuples
  of atoms (ordered by the induced lexicographic order) as timestamps
  and cell identifiers;
* phase (†) builds the initial configuration from ``enc(I)``
  (:func:`initial_configuration_rows`);
* phase (‡) is a genuine inflationary fixpoint: the stage function
  implements the proof's step cases (a)-(c) — copy unchanged cells,
  rewrite the head cell, move the head — and is iterated by
  :func:`repro.core.fixpoint.iterate_ifp` until the machine halts (the
  stage adds nothing once a final state is reached, which *is* the
  fixpoint condition);
* decoding reuses :func:`repro.objects.encoding.decode_instance`.

The stage function manipulates the R_M rows relationally (match on the
latest timestamp, apply the transition disjunct), mirroring the formulas
of the proof one-for-one; the per-type order/successor arithmetic comes
from Lemma 4.3's machinery (:mod:`repro.objects.ordering`).  Tests
cross-check every intermediate configuration against the native TM run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fixpoint import ifp_stages, iterate_ifp
from ..objects.encoding import decode_instance, encode_instance
from ..objects.instance import Instance
from ..objects.ordering import AtomOrder, tuple_rank, tuple_unrank
from ..objects.schema import DatabaseSchema
from ..objects.types import U
from ..objects.values import Atom
from .turing import BLANK, TuringMachine

__all__ = [
    "RMRow",
    "SimulationError",
    "SimulationResult",
    "TMSimulation",
    "PFPSimulation",
    "initial_configuration_rows",
    "simulate_query",
    "simulate_query_pfp",
]

#: Marker in the state column for "head is not here".
NO_HEAD = ""


class SimulationError(Exception):
    """Raised when the relational simulation cannot be carried out."""


#: An R_M row: (timestamp m-tuple, cell m-tuple, symbol, state-or-marker).
RMRow = tuple


@dataclass
class SimulationResult:
    """Outcome of a relational TM simulation.

    Attributes:
        output: the decoded output instance (None if decoding was not
            requested or the machine rejected).
        final_state: the machine's halting state.
        steps: number of machine steps simulated.
        index_arity: m — the arity of timestamp/cell identifier tuples.
        rows: the final (inflationary) content of R_M.
        final_tape: the tape string at the final configuration.
    """

    output: Instance | None
    final_state: str
    steps: int
    index_arity: int
    rows: frozenset[RMRow]
    final_tape: str

    @property
    def rm_cardinality(self) -> int:
        return len(self.rows)


class TMSimulation:
    """Relational simulation of one machine on one instance.

    Parameters:
        machine: the Turing machine to simulate.
        inst: the input instance (its encoding is the initial tape).
        order: enumeration of ``atom(I)`` standing for the postulated
            ``<_U`` (defaults to the canonical label order; Theorem 4.1
            existentially quantifies it — genericity of the final answer
            over the choice is checked in the tests).
        max_steps: safety cap on the simulated run.
    """

    def __init__(
        self,
        machine: TuringMachine,
        inst: Instance,
        order: AtomOrder | None = None,
        max_steps: int = 50_000,
    ):
        self.machine = machine
        self.inst = inst
        self.order = order or AtomOrder.sorted_by_label(inst.atoms())
        if len(self.order) == 0:
            raise SimulationError("cannot simulate over an empty atom universe")
        self.max_steps = max_steps
        self.tape_input = encode_instance(inst, self.order)

        # Dry-run the machine natively to learn the resources it needs;
        # the paper instead assumes a known polynomial bound h with
        # n^m >= ||I||^h — the dry run computes the same m honestly.
        result = machine.run(self.tape_input, max_steps=max_steps)
        self._native_steps = result.steps
        cells_needed = max(
            len(self.tape_input),
            self._max_head_excursion() + 1,
            1,
        )
        self.index_arity = self._choose_m(max(result.steps + 1, cells_needed))
        self._index_types = [U] * self.index_arity
        self._capacity = len(self.order) ** self.index_arity
        self._tuple_cache: dict[int, tuple[Atom, ...]] = {}
        self._rank_cache: dict[tuple[Atom, ...], int] = {}

    def _max_head_excursion(self) -> int:
        position = 0
        largest = 0
        config = self.machine.initial_configuration(self.tape_input)
        steps = 0
        while self.machine.step(config):
            largest = max(largest, config.head)
            position = config.head
            steps += 1
            if steps > self.max_steps:
                raise SimulationError("machine exceeded the step cap")
            if config.head < 0:
                raise SimulationError(
                    "machine moved left of cell 0; the standard encoding "
                    "convention requires a one-way-infinite tape"
                )
        return largest

    def _choose_m(self, needed: int) -> int:
        n = len(self.order)
        if n == 1:
            raise SimulationError(
                "a single atom cannot index multiple cells; the paper's "
                "construction needs |D| >= 2 (density makes inputs large)"
            )
        m = 1
        capacity = n
        while capacity < needed:
            m += 1
            capacity *= n
        return m

    # -- m-tuple arithmetic --------------------------------------------------
    #
    # Ranks are consulted once per R_M row per stage; memoise both
    # directions (the index space is at most n^m, far smaller than the
    # number of lookups).

    def index_tuple(self, position: int) -> tuple[Atom, ...]:
        """The ``position``-th m-tuple in the induced lexicographic order."""
        cache = self._tuple_cache
        cached = cache.get(position)
        if cached is not None:
            return cached
        if position >= self._capacity:
            raise SimulationError(
                f"position {position} exceeds m-tuple capacity {self._capacity}"
            )
        result = tuple(tuple_unrank(position, self._index_types, self.order))
        cache[position] = result  # type: ignore[assignment]
        self._rank_cache[result] = position  # type: ignore[index]
        return result  # type: ignore[return-value]

    def index_rank(self, index: tuple[Atom, ...]) -> int:
        cached = self._rank_cache.get(index)
        if cached is not None:
            return cached
        result = tuple_rank(index, self._index_types, self.order)
        self._rank_cache[index] = result
        return result

    # -- phase (†): initial configuration -------------------------------------

    def initial_rows(self) -> frozenset[RMRow]:
        """R_M rows for the configuration at timestamp 0.

        One row per tape cell holding a symbol, plus the head/state
        marker on cell 0 (the paper's representation figure).
        """
        timestamp = self.index_tuple(0)
        rows: set[RMRow] = set()
        for position, symbol in enumerate(self.tape_input):
            state = self.machine.initial_state if position == 0 else NO_HEAD
            rows.add((timestamp, self.index_tuple(position), symbol, state))
        if not self.tape_input:
            rows.add((timestamp, self.index_tuple(0), BLANK,
                      self.machine.initial_state))
        return frozenset(rows)

    # -- phase (‡): the inflationary step --------------------------------------

    def _configuration(self, rows: frozenset[RMRow]):
        """Extract the latest configuration: (timestamp rank, cells, head, state).

        ``cells`` maps cell rank -> symbol for explicitly stored cells.
        """
        latest = max((self.index_rank(row[0]) for row in rows), default=None)
        if latest is None:
            return None
        cells: dict[int, str] = {}
        head = None
        state = None
        for row in rows:
            if self.index_rank(row[0]) != latest:
                continue
            cell_rank = self.index_rank(row[1])
            cells[cell_rank] = row[2]
            if row[3] != NO_HEAD:
                head = cell_rank
                state = row[3]
        if head is None or state is None:
            raise SimulationError(
                f"configuration at timestamp {latest} has no head marker"
            )
        return latest, cells, head, state

    def stage(self, rows: frozenset[RMRow]) -> frozenset[RMRow]:
        """One application of the proof's step formula.

        Empty input seeds the initial configuration (†).  Otherwise the
        latest configuration is advanced by one machine move, stamped
        with the successor timestamp — cases (a) copy, (b) rewrite, and
        (c) head move of the proof.  Once the machine has halted the
        stage adds nothing, so the IFP converges.
        """
        if not rows:
            return self.initial_rows()
        extracted = self._configuration(rows)
        assert extracted is not None
        timestamp, cells, head, state = extracted
        if (state in self.machine.accept_states
                or state in self.machine.reject_states):
            return frozenset()
        symbol = cells.get(head, BLANK)
        transition = self.machine.transitions.get((state, symbol))
        if transition is None:
            return frozenset()  # implicit halt
        new_timestamp = self.index_tuple(timestamp + 1)
        new_head = head + {"L": -1, "R": 1, "S": 0}[transition.move]
        if new_head < 0:
            raise SimulationError("head moved left of cell 0")
        if new_head >= self._capacity:
            raise SimulationError("head moved past the m-tuple capacity")
        new_rows: set[RMRow] = set()
        touched_cells = set(cells) | {head, new_head}
        for cell_rank in touched_cells:
            if cell_rank == head:
                content = transition.write  # case (b): rewrite
            else:
                content = cells.get(cell_rank, BLANK)  # case (a): copy
            marker = transition.new_state if cell_rank == new_head else NO_HEAD
            # case (c): the head marker moves to the successor cell.
            new_rows.add((new_timestamp, self.index_tuple(cell_rank),
                          content, marker))
        return frozenset(new_rows)

    # -- the full pipeline ------------------------------------------------------

    def run(self, output_schema: DatabaseSchema | None = None) -> SimulationResult:
        """Execute (†), (‡) and the decoding phase.

        If ``output_schema`` is given the final tape is decoded as an
        instance of it (the machine must leave a standard encoding).
        """
        rows = iterate_ifp(self.stage, max_stages=self.max_steps + 2)
        extracted = self._configuration(rows)
        assert extracted is not None
        final_timestamp, cells, head, state = extracted
        tape = self._tape_string(cells)
        output = None
        if output_schema is not None:
            output = decode_instance(tape, output_schema, self.order)
        return SimulationResult(
            output=output,
            final_state=state,
            steps=final_timestamp,
            index_arity=self.index_arity,
            rows=rows,
            final_tape=tape,
        )

    def stages(self):
        """Yield the successive R_M contents (for trace cross-checks)."""
        yield from ifp_stages(self.stage)

    @staticmethod
    def _tape_string(cells: dict[int, str]) -> str:
        if not cells:
            return ""
        last = max(rank for rank, symbol in cells.items() if symbol != BLANK) \
            if any(s != BLANK for s in cells.values()) else -1
        return "".join(cells.get(rank, BLANK) for rank in range(last + 1))


class PFPSimulation(TMSimulation):
    """Theorem 4.1(3): the PSPACE simulation via the *partial* fixpoint.

    The paper notes the PFP case "simplifies the simulation: only the
    tuples corresponding to the current configuration of M are kept in
    R_M, so no timestamping is required."  Rows here are (2m+1)-ary:
    ``(cell m-tuple, symbol, state-or-marker)`` — each stage *replaces*
    the relation with the next configuration, and the fixed point is
    reached exactly when the machine halts (the stage then reproduces
    its input).
    """

    def initial_rows(self) -> frozenset[RMRow]:
        rows: set[RMRow] = set()
        for position, symbol in enumerate(self.tape_input):
            state = self.machine.initial_state if position == 0 else NO_HEAD
            rows.add((self.index_tuple(position), symbol, state))
        if not self.tape_input:
            rows.add((self.index_tuple(0), BLANK,
                      self.machine.initial_state))
        return frozenset(rows)

    def _configuration(self, rows: frozenset[RMRow]):
        cells: dict[int, str] = {}
        head = None
        state = None
        for cell, symbol, marker in rows:
            cell_rank = self.index_rank(cell)
            cells[cell_rank] = symbol
            if marker != NO_HEAD:
                head = cell_rank
                state = marker
        if head is None or state is None:
            raise SimulationError("configuration has no head marker")
        return None, cells, head, state

    def stage(self, rows: frozenset[RMRow]) -> frozenset[RMRow]:
        if not rows:
            return self.initial_rows()
        _, cells, head, state = self._configuration(rows)
        if (state in self.machine.accept_states
                or state in self.machine.reject_states):
            return rows  # fixed point: the halting configuration
        symbol = cells.get(head, BLANK)
        transition = self.machine.transitions.get((state, symbol))
        if transition is None:
            return rows
        new_head = head + {"L": -1, "R": 1, "S": 0}[transition.move]
        if new_head < 0:
            raise SimulationError("head moved left of cell 0")
        if new_head >= self._capacity:
            raise SimulationError("head moved past the m-tuple capacity")
        new_rows: set[RMRow] = set()
        for cell_rank in set(cells) | {head, new_head}:
            content = transition.write if cell_rank == head \
                else cells.get(cell_rank, BLANK)
            marker = (transition.new_state if cell_rank == new_head
                      else NO_HEAD)
            new_rows.add((self.index_tuple(cell_rank), content, marker))
        return frozenset(new_rows)

    def run(self, output_schema: DatabaseSchema | None = None) -> SimulationResult:
        from ..core.fixpoint import iterate_pfp

        rows = iterate_pfp(self.stage, max_stages=self.max_steps + 2)
        _, cells, head, state = self._configuration(rows)
        tape = self._tape_string(cells)
        output = None
        if output_schema is not None:
            output = decode_instance(tape, output_schema, self.order)
        return SimulationResult(
            output=output,
            final_state=state,
            steps=self._native_steps,
            index_arity=self.index_arity,
            rows=rows,
            final_tape=tape,
        )


def initial_configuration_rows(
    machine: TuringMachine,
    inst: Instance,
    order: AtomOrder | None = None,
) -> frozenset[RMRow]:
    """Phase (†) on its own: the paper's configuration-representation
    figure for an instance (R_M at time 0)."""
    return TMSimulation(machine, inst, order).initial_rows()


def simulate_query(
    machine: TuringMachine,
    inst: Instance,
    output_schema: DatabaseSchema | None = None,
    order: AtomOrder | None = None,
    max_steps: int = 50_000,
) -> SimulationResult:
    """End-to-end Theorem 4.1 pipeline: encode, simulate via IFP, decode."""
    simulation = TMSimulation(machine, inst, order, max_steps)
    return simulation.run(output_schema)


def simulate_query_pfp(
    machine: TuringMachine,
    inst: Instance,
    output_schema: DatabaseSchema | None = None,
    order: AtomOrder | None = None,
    max_steps: int = 50_000,
) -> SimulationResult:
    """Theorem 4.1(3)'s PSPACE pipeline: simulate via PFP (no timestamps)."""
    simulation = PFPSimulation(machine, inst, order, max_steps)
    return simulation.run(output_schema)
