"""Turing machine substrate and the Theorem 4.1 simulation pipeline."""

from .turing import (
    BLANK,
    LEFT,
    RIGHT,
    STAY,
    Configuration,
    RunResult,
    TMError,
    Transition,
    TuringMachine,
    binary_increment_machine,
    copy_machine,
    erase_machine,
    identity_machine,
    parity_machine,
)
from .code_relations import (
    CodeRelation,
    CodeRow,
    code_relation,
    code_u_table,
    code_word,
    index_arity,
)
from .simulation import (
    NO_HEAD,
    PFPSimulation,
    RMRow,
    SimulationError,
    SimulationResult,
    TMSimulation,
    initial_configuration_rows,
    simulate_query,
    simulate_query_pfp,
)

__all__ = [
    "BLANK", "LEFT", "RIGHT", "STAY", "Configuration", "RunResult",
    "TMError", "Transition", "TuringMachine", "binary_increment_machine",
    "copy_machine", "erase_machine", "identity_machine", "parity_machine",
    "CodeRelation", "CodeRow", "code_relation", "code_u_table", "code_word",
    "index_arity",
    "NO_HEAD", "PFPSimulation", "RMRow", "SimulationError",
    "SimulationResult", "TMSimulation", "initial_configuration_rows",
    "simulate_query", "simulate_query_pfp",
]
