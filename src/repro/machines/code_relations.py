"""CODE relations: dictionaries from objects to their encodings (Lemma 4.4).

Lemma 4.4 shows that for every ``<i,k>``-type T there is a
``CALC_i^k + IFP`` formula defining a relation ``CODE_T`` holding, for
every object ``o`` of type T, the positioned symbols of ``enc(o)``:
a tuple ``[o, i, x]`` says the ``i``-th symbol of ``enc(o)`` is ``x``,
with positions ``i`` drawn from (tuples of) domain elements ordered by
the induced order.

Two constructions are provided:

* :func:`code_u_table` — the paper's exact inductive construction for
  ``CODE_U`` with *minimal-length* binary codes (the worked 5-constant
  table in the Lemma 4.4 figure), built stepwise by the successor rule
  described in the proof (increment the previous constant's code);
* :func:`code_relation` — ``CODE_T`` for arbitrary types under the
  *standard* (Figure 2, fixed-width) encoding used by the simulation,
  with positions represented as m-tuples of atoms in induced order.

Both are genuinely computed by iteration (an inflationary construction),
not by shortcutting through Python's ``format``; tests cross-check them
against the direct encodings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..objects.domains import domain_cardinality
from ..objects.encoding import encode_value
from ..objects.ordering import AtomOrder, ordered_domain, tuple_unrank
from ..objects.types import Type, U
from ..objects.values import Atom, Value

__all__ = [
    "CodeRow",
    "code_u_table",
    "code_word",
    "code_relation",
    "CodeRelation",
    "index_arity",
]


@dataclass(frozen=True)
class CodeRow:
    """One CODE tuple: (object, position index, symbol).

    ``index`` is a tuple of atoms — the m-tuple position identifier of
    the lemma (m = 1 for CODE_U).
    """

    obj: Value
    index: tuple[Atom, ...]
    symbol: str


def code_u_table(order: AtomOrder) -> list[CodeRow]:
    """The paper's CODE_U: minimal binary codes built by the successor rule.

    Reproduces the Lemma 4.4 figure exactly: for the order ``abcde`` the
    code of ``a`` is ``0``, of ``b`` is ``1``, of ``c`` is ``10``, ...;
    the j-th (most significant first) digit of a constant's code is
    indexed by the j-th atom of the order.

    Built inductively: start with ``[a, a, 0]``; to pass from constant
    alpha to its successor beta, binary-increment alpha's digit word —
    exactly the case analysis in the proof (find the largest index
    gamma with digit 0, flip it to 1, zero everything after; if none,
    the word is all 1s and grows by one digit).
    """
    atoms = list(order.atoms)
    if not atoms:
        return []
    rows: list[CodeRow] = []
    # digits of the current constant: list of "0"/"1", MSB first.
    digits = ["0"]
    rows.append(CodeRow(atoms[0], (atoms[0],), "0"))
    for constant in atoms[1:]:
        # Binary increment of the digit word (the proof's successor step).
        position = len(digits) - 1
        while position >= 0 and digits[position] == "1":
            digits[position] = "0"
            position -= 1
        if position >= 0:
            digits[position] = "1"
        else:
            digits = ["1"] + digits
        for digit_index, digit in enumerate(digits):
            rows.append(CodeRow(constant, (atoms[digit_index],), digit))
    return rows


def index_arity(word_length: int, n_atoms: int) -> int:
    """Smallest m with ``n_atoms**m >= word_length`` (m >= 1)."""
    if n_atoms < 1:
        raise ValueError("need at least one atom to index positions")
    arity = 1
    capacity = n_atoms
    while capacity < word_length:
        arity += 1
        capacity *= n_atoms
    return arity


def code_word(value: Value, order: AtomOrder) -> str:
    """The word ``enc(o)`` a CODE_T relation spells out for ``o``."""
    return encode_value(value, order)


@dataclass
class CodeRelation:
    """``CODE_T`` for a type under an atom order.

    Attributes:
        typ: the object type T.
        index_arity: m — positions are m-tuples of atoms.
        rows: the CODE tuples.
    """

    typ: Type
    order: AtomOrder
    index_arity: int
    rows: list[CodeRow]

    def word_of(self, obj: Value) -> str:
        """Reassemble ``enc(obj)`` from the rows (positions in order)."""
        entries = sorted(
            ((row.index, row.symbol) for row in self.rows if row.obj == obj),
            key=lambda pair: tuple(self.order.index(a) for a in pair[0]),
        )
        return "".join(symbol for _, symbol in entries)


def code_relation(typ: Type, order: AtomOrder,
                  max_objects: int = 10_000) -> CodeRelation:
    """Build ``CODE_T`` for the standard encoding over a finite universe.

    Enumerates ``dom(typ, D)`` in induced order; each object's encoding
    is laid out at consecutive m-tuple positions (m-tuples of atoms in
    the induced lexicographic order), mirroring the lemma's construction
    of the dictionary for higher types (smallest element first, then
    ``#``, and so on — which is exactly what the canonical encoding
    spells).
    """
    n = len(order)
    total = domain_cardinality(typ, n)
    if total > max_objects:
        raise ValueError(
            f"|dom({typ!r})| = {total} exceeds cap {max_objects}"
        )
    # Longest word determines the index arity.
    objects = list(ordered_domain(typ, order, max_objects))
    words = [code_word(obj, order) for obj in objects]
    longest = max((len(w) for w in words), default=1)
    arity = index_arity(longest, n)
    atom_types = [U] * arity
    rows: list[CodeRow] = []
    for obj, word in zip(objects, words):
        for position, symbol in enumerate(word):
            index = tuple_unrank(position, atom_types, order)
            rows.append(CodeRow(obj, tuple(index), symbol))  # type: ignore[arg-type]
    return CodeRelation(typ=typ, order=order, index_arity=arity, rows=rows)
