"""Cross-PR trend reports: stitch per-PR observatory documents into
per-suite trajectories.

Each PR commits one ``BENCH_PR<N>.json``; this module loads any mix of
those documents — the current ``schema: 1`` layout and the retired
pre-observatory flat layout of ``BENCH_PR3.json`` (this is the **only**
remaining parser for that layout; baselines now require ``schema: 1``,
see :class:`repro.bench.report.LegacyBaselineError`) — aligns suites,
strategies and counters across PRs, and reports:

* per-suite **trajectories**: one row per (metric, strategy) at the
  suite's headline size, one column per PR, with explicit holes
  (``None`` / ``—``) where a PR predates or dropped a suite;
* **deltas** against the previous PR that has a value;
* **regression flags**: deterministic counters are checked against the
  suite's declared :class:`~repro.bench.registry.Tolerance`, and
  checksums against exact equality.  Wall seconds are *never* flagged
  (they do not compare across machines) — they appear as informational
  rows only, so a clean trajectory means zero unexplained regressions.

``convert_legacy`` rewrites a legacy document in the ``schema: 1``
layout (CLI: ``repro bench --trend FILE --migrate``), which is the
sanctioned path off the retired format.
"""

from __future__ import annotations

import re
from typing import Any

from ..obs.render import align_table
from .registry import SUITES

__all__ = [
    "TrendError",
    "is_legacy",
    "convert_legacy",
    "label_for_path",
    "load_documents",
    "build_trend",
    "render_trend",
    "migrated_path",
]


class TrendError(Exception):
    """A trend input that cannot be read as an observatory document."""


#: Legacy flat-layout section name -> the registry suite it became.
LEGACY_SECTION_SUITES = {
    "datalog": "seminaive-smoke",
    "calc_ifp": "calc-ifp-dense",
    "algebra_loop": "algebra-loop",
}

#: Legacy per-strategy field name -> observatory counter name.
LEGACY_FIELD_COUNTERS = {
    "rows_derived": "datalog.rows_derived",
    "dedup_hits": "datalog.dedup_hits",
    "refires_avoided": "datalog.refires_avoided",
    "stages": "ifp.stages",
    "delta_rows": "eval.delta_rows",
    "stage_skips": "eval.stage_skips",
}

#: Counters worth a trajectory row even without a declared tolerance.
TREND_COUNTERS = (
    "datalog.rows_derived",
    "eval.delta_rows",
    "space.domain_values",
    "space.peak_fixpoint_rows",
    "space.peak_range",
    "space.peak_loop_rows",
    "eval.quantifier_iterations",
    "collapse.domain_values",
    "lemma41.dense_dom_values",
)


def is_legacy(document: dict[str, Any]) -> bool:
    """True for the retired pre-schema-1 flat layout."""
    return "suites" not in document


def convert_legacy(document: dict[str, Any]) -> dict[str, Any]:
    """Rewrite a legacy flat document in the ``schema: 1`` layout.

    Sections map to the registry suites they became; per-strategy fields
    become observatory counter names; ``closure_rows`` becomes the
    point checksum.  Only measured facts are carried over — the legacy
    scripts declared no expectations or gates, so none are fabricated.
    """
    suites: dict[str, Any] = {}
    for section, suite_name in LEGACY_SECTION_SUITES.items():
        entries = document.get(section)
        if not isinstance(entries, list):
            continue
        points: list[dict[str, Any]] = []
        sizes: list[int] = []
        strategies: list[str] = []
        for entry in entries:
            n = entry.get("n")
            if n is None:
                continue
            sizes.append(n)
            for strategy, fields in entry.items():
                if not isinstance(fields, dict):
                    continue
                if strategy not in strategies:
                    strategies.append(strategy)
                counters = {
                    LEGACY_FIELD_COUNTERS.get(field, field): value
                    for field, value in fields.items()
                    if field != "seconds" and isinstance(value, (int, float))
                }
                points.append({
                    "n": n,
                    "strategy": strategy,
                    "seconds": fields.get("seconds"),
                    "checksum": entry.get("closure_rows"),
                    "counters": counters,
                    "histograms": {},
                })
        if points:
            suite = SUITES.get(suite_name)
            suites[suite_name] = {
                "name": suite_name,
                "title": suite.title if suite else section,
                "sizes": sizes,
                "strategies": strategies,
                "points": points,
                "fits": {},
                "expectations": [],
                "gates": [],
            }
    return {
        "schema": 1,
        "experiment": document.get("experiment", "repro-bench"),
        "converted_from": "legacy-pr3-flat",
        "suites": suites,
    }


def label_for_path(path: str) -> str:
    """``BENCH_PR3.json`` -> ``PR3``; otherwise the file stem."""
    import os

    stem = os.path.splitext(os.path.basename(path))[0]
    match = re.search(r"PR(\d+)", stem, re.IGNORECASE)
    if match:
        return f"PR{match.group(1)}"
    return stem


def migrated_path(path: str) -> str:
    """Where ``--migrate`` writes the schema-1 rewrite of ``path``."""
    import os

    stem, _ = os.path.splitext(path)
    return f"{stem}.schema1.json"


def load_documents(paths: list[str]) -> list[dict[str, Any]]:
    """Load and normalise trend inputs.

    Returns one record per input: ``{"label", "path", "document",
    "legacy"}`` with legacy documents already converted.  Inputs sort by
    PR number when every label carries one (so shell-glob order —
    ``PR10`` before ``PR3`` — cannot scramble the trajectory); otherwise
    the given order is kept.
    """
    import json

    records = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as error:
                raise TrendError(f"{path}: not JSON ({error})") from None
        if not isinstance(document, dict):
            raise TrendError(f"{path}: not an observatory document")
        legacy = is_legacy(document)
        records.append({
            "label": label_for_path(path),
            "path": path,
            "document": convert_legacy(document) if legacy else document,
            "legacy": legacy,
        })
    numbers = [re.fullmatch(r"PR(\d+)", record["label"])
               for record in records]
    if all(numbers):
        records.sort(key=lambda record: int(record["label"][2:]))
    return records


def _point_value(suite_doc: dict[str, Any], n: int, strategy: str,
                 metric: str) -> float | None:
    for point in suite_doc.get("points", ()):
        if point.get("n") != n or point.get("strategy") != strategy:
            continue
        if point.get("failed"):
            return None
        if metric in ("seconds", "checksum"):
            return point.get(metric)
        return point.get("counters", {}).get(metric)
    return None


def _suite_order(names: set[str]) -> list[str]:
    """Registry declaration order first, unknown suites alphabetically
    after — deterministic regardless of input order."""
    ordered = [name for name in SUITES if name in names]
    ordered.extend(sorted(names - set(SUITES)))
    return ordered


def _headline_n(docs: list[dict[str, Any] | None], strategy: str) -> int | None:
    """The largest size every PR that has the suite measured for this
    strategy; falls back to the newest PR's largest size (older PRs then
    show holes)."""
    per_doc: list[set[int]] = []
    for doc in docs:
        if doc is None:
            continue
        sizes = {point["n"] for point in doc.get("points", ())
                 if point.get("strategy") == strategy
                 and not point.get("failed")}
        if sizes:
            per_doc.append(sizes)
    if not per_doc:
        return None
    common = set.intersection(*per_doc)
    if common:
        return max(common)
    return max(per_doc[-1])


def _row_metrics(suite_name: str,
                 docs: list[dict[str, Any] | None],
                 full: bool = False) -> list[str]:
    """The metrics worth a trajectory row: seconds and checksum always,
    declared tolerance metrics, then headline counters any PR measured.
    ``full`` widens the last group to *every* counter seen in any input
    (sorted), for the long-form report."""
    metrics = ["seconds", "checksum"]
    suite = SUITES.get(suite_name)
    if suite is not None:
        for tolerance in suite.tolerances:
            if tolerance.metric not in metrics:
                metrics.append(tolerance.metric)
    seen_counters: set[str] = set()
    for doc in docs:
        if doc is None:
            continue
        for point in doc.get("points", ()):
            seen_counters.update(point.get("counters", {}))
    pool = sorted(seen_counters) if full else TREND_COUNTERS
    for name in pool:
        if name in seen_counters and name not in metrics:
            metrics.append(name)
    return metrics


def _tolerance_for(suite_name: str, metric: str) -> float | None:
    """The declared max regression ratio, or None when the metric never
    gates (seconds, undeclared counters)."""
    if metric == "checksum":
        return 0.0
    suite = SUITES.get(suite_name)
    if suite is None:
        return None
    for tolerance in suite.tolerances:
        if tolerance.metric == metric:
            return tolerance.max_ratio
    return None


def build_trend(records: list[dict[str, Any]],
                full: bool = False) -> dict[str, Any]:
    """Align loaded documents into one JSON-safe trend report.

    ``full`` (CLI: ``--trend --full``) adds a trajectory row for every
    counter any input measured — not just the curated
    :data:`TREND_COUNTERS` — and marks the document so the renderer adds
    sparkline columns."""
    labels = [record["label"] for record in records]
    suite_names: set[str] = set()
    for record in records:
        suite_names.update(record["document"].get("suites", {}))
    suites: dict[str, Any] = {}
    regressions: list[str] = []
    for name in _suite_order(suite_names):
        docs = [record["document"].get("suites", {}).get(name)
                for record in records]
        strategies: list[str] = []
        for doc in docs:
            if doc is None:
                continue
            for strategy in doc.get("strategies", ()):
                if strategy not in strategies:
                    strategies.append(strategy)
        rows: list[dict[str, Any]] = []
        for metric in _row_metrics(name, docs, full=full):
            for strategy in strategies:
                n = _headline_n(docs, strategy)
                if n is None:
                    continue
                values = [None if doc is None
                          else _point_value(doc, n, strategy, metric)
                          for doc in docs]
                if all(value is None for value in values):
                    continue
                deltas: list[float | None] = []
                previous: float | None = None
                for value in values:
                    if value is None or previous is None or previous == 0:
                        deltas.append(None)
                    else:
                        deltas.append(value / previous)
                    if value is not None:
                        previous = value
                row: dict[str, Any] = {
                    "metric": metric, "strategy": strategy, "n": n,
                    "values": values, "deltas": deltas,
                }
                max_ratio = _tolerance_for(name, metric)
                if max_ratio is not None:
                    flagged = []
                    previous = None
                    previous_label = None
                    for label, value in zip(labels, values):
                        if value is not None and previous is not None:
                            # Compare exactly at 0% tolerance: a float
                            # limit would misround big-int counters
                            # (e.g. 2**72-scale domain cardinalities).
                            if max_ratio == 0.0:
                                regressed = value != previous
                            else:
                                regressed = value > previous * (1.0
                                                                + max_ratio)
                            if regressed:
                                flagged.append(label)
                                regressions.append(
                                    f"{name}: {metric} ({strategy}, n={n}) "
                                    f"{previous_label}->{label}: {previous} "
                                    f"-> {value} (tolerance "
                                    f"{max_ratio:.0%})"
                                )
                        if value is not None:
                            previous = value
                            previous_label = label
                    if flagged:
                        row["regressions"] = flagged
                rows.append(row)
        suites[name] = {
            "present": [doc is not None for doc in docs],
            "rows": rows,
        }
    trend: dict[str, Any] = {
        "schema": 1,
        "kind": "bench-trend",
        "prs": labels,
        "inputs": [{"label": record["label"], "path": record["path"],
                    "legacy": record["legacy"]} for record in records],
        "suites": suites,
        "regressions": regressions,
    }
    if full:
        # Only stamped when requested, so curated-mode documents keep
        # their established shape byte-for-byte.
        trend["full"] = True
    return trend


def _format_value(metric: str, value: float | None) -> str:
    if value is None:
        return "—"
    if metric == "seconds":
        if value >= 1.0:
            return f"{value:.2f}s"
        return f"{value * 1000:.2f}ms"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def render_trend(trend: dict[str, Any]) -> str:
    """The trend report as aligned text tables, one per suite.

    A ``--full`` trend (``trend["full"]``) gains a sparkline column —
    the trajectory's shape at a glance, holes rendered as ``·`` — next
    to the per-PR value columns."""
    from ..obs.render import sparkline

    labels = trend["prs"]
    full = bool(trend.get("full"))
    lines: list[str] = []
    for name, suite in trend["suites"].items():
        presence = " ".join(
            label if present else f"({label}: absent)"
            for label, present in zip(labels, suite["present"]))
        lines.append(f"== {name}  [{presence}]")
        header: tuple[str, ...] = ("metric", "strategy", "n", *labels)
        if full:
            header += ("shape",)
        rows: list[tuple[str, ...]] = [(*header, "Δ last", "")]
        for row in suite["rows"]:
            last_delta = next(
                (delta for delta in reversed(row["deltas"])
                 if delta is not None), None)
            flag = "REGRESSED" if row.get("regressions") else ""
            cells: tuple[str, ...] = (
                row["metric"], row["strategy"], str(row["n"]),
                *(_format_value(row["metric"], value)
                  for value in row["values"]),
            )
            if full:
                cells += (sparkline(row["values"]),)
            rows.append((
                *cells,
                "—" if last_delta is None else f"{last_delta:.2f}x",
                flag,
            ))
        lines.extend("  " + line for line in align_table(rows))
        lines.append("")
    if trend["regressions"]:
        lines.append("regressions:")
        lines.extend(f"  FLAG: {entry}" for entry in trend["regressions"])
    else:
        lines.append("no regressions flagged across "
                     f"{' -> '.join(labels)}")
    return "\n".join(lines).rstrip("\n")
