"""Rendering and baseline diffing for observatory documents.

Two jobs:

* :func:`render_document` — the human-readable report: per suite, the
  measured points (time + headline space counters), the fitted curves,
  and PASS/FAIL lines for every declared expectation, speedup gate, and
  cross-strategy agreement check.  Points that failed in a sharded run
  render as explicit FAILED lines — a partial report never looks clean.
* :func:`diff_against_baseline` — the regression gate.  Deterministic
  counters (rows derived, stages, delta rows — never wall seconds,
  which do not compare across machines) are checked point-by-point
  against a committed ``schema: 1`` baseline within each suite's
  declared :class:`~repro.bench.registry.Tolerance`.

The pre-observatory flat ``BENCH_PR3.json`` baseline layout is
**retired** here: :func:`diff_against_baseline` raises
:class:`LegacyBaselineError` for it, pointing at ``repro bench --trend
FILE --migrate``, which rewrites a legacy document in the ``schema: 1``
layout (the trend tool keeps the only remaining legacy parser, since
trajectories must reach back to PR 3).
"""

from __future__ import annotations

from typing import Any

from .registry import Suite

__all__ = [
    "LegacyBaselineError",
    "render_document",
    "diff_against_baseline",
    "document_failures",
]


class LegacyBaselineError(Exception):
    """A baseline in the retired pre-schema-1 flat layout."""


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def _headline_counters(point: dict[str, Any]) -> str:
    counters = point.get("counters", {})
    shown = []
    for name in ("datalog.rows_derived", "eval.delta_rows",
                 "space.domain_values", "space.peak_fixpoint_rows",
                 "space.peak_range", "space.peak_loop_rows",
                 "eval.quantifier_iterations", "collapse.domain_values",
                 "lemma41.dense_dom_values"):
        if name in counters:
            shown.append(f"{name}={counters[name]}")
    return "  ".join(shown)


def render_document(document: dict[str, Any]) -> str:
    """The whole observatory document as a text report."""
    lines: list[str] = []
    for suite_doc in document.get("suites", {}).values():
        lines.append(f"== {suite_doc['name']}: {suite_doc['title']}")
        for point in suite_doc["points"]:
            if point.get("failed"):
                lines.append(
                    f"  n={point['n']:>4} {point['strategy']:<10} "
                    f"   FAILED  {point['error']}"
                )
                continue
            extra = _headline_counters(point)
            lines.append(
                f"  n={point['n']:>4} {point['strategy']:<10} "
                f"{_format_seconds(point['seconds']):>9}  "
                f"checksum={point['checksum']}"
                + (f"  {extra}" if extra else "")
            )
        for strategy, fits in sorted(suite_doc.get("fits", {}).items()):
            fit = fits.get("seconds")
            if fit:
                lines.append(
                    f"  fit[{strategy}] seconds ~ n^{fit['slope']:.2f} "
                    f"(r2={fit['r2']:.3f})"
                )
        for expectation in suite_doc.get("expectations", ()):
            status = "PASS" if expectation.get("ok") else "FAIL"
            detail = ""
            fit = expectation.get("fit")
            if fit is not None:
                detail = (f" detected={fit['kind']} "
                          f"degree={fit['degree']:.2f}")
            if "bound" in expectation:
                detail = f" bound={expectation['bound']}"
            lines.append(
                f"  [{status}] {expectation['kind']}:"
                f"{expectation['metric']} ({expectation['strategy']})"
                + detail
            )
        for gate in suite_doc.get("gates", ()):
            status = "PASS" if gate.get("ok") else "FAIL"
            metric = gate.get("metric", "seconds")
            if "ratio" in gate:
                lines.append(
                    f"  [{status}] {metric} gate {gate['slow']}/"
                    f"{gate['fast']} at n={gate['n']}: "
                    f"{gate['ratio']:.2f}x (need >= {gate['min_ratio']}x)"
                )
            else:
                lines.append(
                    f"  [{status}] {metric} gate {gate['slow']}/"
                    f"{gate['fast']}: {gate.get('reason', 'no data')}"
                )
        agreement = suite_doc.get("agreement")
        if agreement is not None:
            status = "PASS" if agreement["ok"] else "FAIL"
            lines.append(f"  [{status}] cross-strategy agreement")
        lines.append("")
    if document.get("partial"):
        lines.append("PARTIAL RUN: one or more points failed (see above)")
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def _baseline_value(baseline: dict[str, Any], suite: Suite, n: int,
                    strategy: str, metric: str) -> float | None:
    suite_doc = baseline.get("suites", {}).get(suite.name)
    if suite_doc is None:
        return None
    for point in suite_doc.get("points", ()):
        if point.get("n") == n and point.get("strategy") == strategy:
            if point.get("failed"):
                return None
            if metric in ("seconds", "checksum"):
                return point.get(metric)
            return point.get("counters", {}).get(metric)
    return None


def diff_against_baseline(
    document: dict[str, Any],
    baseline: dict[str, Any],
    suites: list[Suite],
) -> list[str]:
    """Check each suite's declared tolerances against a ``schema: 1``
    baseline document.

    Returns breach descriptions (empty = within tolerance).  Points the
    baseline does not cover (new sizes, new suites) are not breaches —
    the baseline only ever *gates*, it does not have to be complete.
    Failed points in either document are skipped (a degraded run is
    reported through the partial flag, not as a counter regression).
    """
    if "suites" not in baseline:
        raise LegacyBaselineError(
            "baseline is in the retired pre-schema-1 flat layout; "
            "rewrite it with: repro bench --trend FILE --migrate"
        )
    breaches: list[str] = []
    by_name = {suite.name: suite for suite in suites}
    for name, suite_doc in document.get("suites", {}).items():
        suite = by_name.get(name)
        if suite is None:
            continue
        for point in suite_doc["points"]:
            if point.get("failed"):
                continue
            n, strategy = point["n"], point["strategy"]
            for tolerance in suite.tolerances:
                base = _baseline_value(baseline, suite, n, strategy,
                                       tolerance.metric)
                if base is None:
                    continue
                new = point["counters"].get(tolerance.metric, 0)
                if tolerance.max_ratio == 0.0:
                    ok = new == base
                else:
                    ok = new <= base * (1.0 + tolerance.max_ratio)
                if not ok:
                    breaches.append(
                        f"{name}: {tolerance.metric} at n={n} "
                        f"({strategy}) regressed: {new} vs baseline "
                        f"{base} (tolerance {tolerance.max_ratio:.0%})"
                    )
            # Answer cardinality/checksum is exact.
            base_rows = _baseline_value(baseline, suite, n, strategy,
                                        "checksum")
            if base_rows is not None and point["checksum"] != base_rows:
                breaches.append(
                    f"{name}: checksum at n={n} ({strategy}) changed: "
                    f"{point['checksum']} vs baseline {base_rows}"
                )
    return breaches


def document_failures(document: dict[str, Any]) -> list[str]:
    """Every failed expectation/gate/agreement/point in a document, as
    text — anything here makes ``repro bench`` exit 1."""
    failures: list[str] = []
    for name, suite_doc in document.get("suites", {}).items():
        for expectation in suite_doc.get("expectations", ()):
            if not expectation.get("ok"):
                failures.append(
                    f"{name}: expectation {expectation['kind']}:"
                    f"{expectation['metric']} failed"
                )
        for gate in suite_doc.get("gates", ()):
            if not gate.get("ok"):
                failures.append(
                    f"{name}: {gate.get('metric', 'seconds')} gate "
                    f"{gate['slow']}/{gate['fast']} failed "
                    f"({gate.get('ratio', 'n/a')})"
                )
        agreement = suite_doc.get("agreement")
        if agreement is not None and not agreement["ok"]:
            failures.append(f"{name}: strategies disagree: "
                            f"{agreement['disagreements']}")
        for failed in suite_doc.get("failed_points", ()):
            failures.append(
                f"{name}: point n={failed['n']} ({failed['strategy']}) "
                f"failed: {failed['error']}"
            )
    return failures
