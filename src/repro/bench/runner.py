"""The measurement loop: run suites, collect time and space per point,
fit curves, evaluate expectations and gates.

Each point runs under a fresh :class:`repro.obs.Tracer`, so the flat
counters *and* the typed metrics (histograms of per-stage cardinalities,
peak gauges, deep node counts) are per-point — exactly the series the
fits consume.  Wall time is ``perf_counter`` around the suite's ``run``
callable; peak allocated bytes via ``tracemalloc`` are opt-in (the
tracing itself roughly doubles runtimes).
"""

from __future__ import annotations

import time
from typing import Any

from ..obs import Tracer, use_tracer
from ..obs.metrics import tracemalloc_peak
from .fit import Classification, classify, doubling_ratios, loglog_fit
from .registry import Suite

__all__ = ["BenchError", "run_suite", "run_suites", "series"]


class BenchError(Exception):
    """A suite failed structurally (bad sizes, missing series, checksum
    mismatch across strategies)."""


def _run_point(suite: Suite, n: int, strategy: str,
               tracemalloc: bool) -> dict[str, Any]:
    tracer = Tracer()
    if tracemalloc:
        with tracemalloc_peak() as peak:
            start = time.perf_counter()
            with use_tracer(tracer):
                result = suite.run(n, strategy)
            seconds = time.perf_counter() - start
        peak_bytes = peak.bytes
    else:
        start = time.perf_counter()
        with use_tracer(tracer):
            result = suite.run(n, strategy)
        seconds = time.perf_counter() - start
        peak_bytes = None
    point: dict[str, Any] = {
        "n": n,
        "strategy": strategy,
        "seconds": seconds,
        "checksum": result.get("checksum"),
        "counters": dict(tracer.counters),
        "histograms": {
            name: histogram.summary()
            for name, histogram in tracer.metrics.histograms()
        },
    }
    if peak_bytes is not None:
        point["tracemalloc_peak_bytes"] = peak_bytes
    return point


def series(points: list[dict[str, Any]], strategy: str,
           metric: str) -> tuple[list[int], list[float]]:
    """The (sizes, values) series of one metric for one strategy.

    ``metric`` is ``"seconds"``, ``"tracemalloc_peak_bytes"``, or a
    counter name; missing counters read as 0.
    """
    xs: list[int] = []
    ys: list[float] = []
    for point in points:
        if point["strategy"] != strategy:
            continue
        xs.append(point["n"])
        if metric in ("seconds", "tracemalloc_peak_bytes", "checksum"):
            ys.append(float(point.get(metric) or 0.0))
        else:
            ys.append(float(point["counters"].get(metric, 0)))
    return xs, ys


def _evaluate_expectations(suite: Suite,
                           points: list[dict[str, Any]]) -> list[dict[str, Any]]:
    results = []
    for expectation in suite.expectations:
        xs, ys = series(points, expectation.strategy, expectation.metric)
        entry: dict[str, Any] = {
            "metric": expectation.metric,
            "strategy": expectation.strategy,
            "kind": expectation.kind,
            "note": expectation.note,
        }
        if len(xs) < 2:
            entry.update(ok=False, reason=f"series too short ({len(xs)})")
            results.append(entry)
            continue
        if expectation.kind == "bound":
            degree = expectation.bound_degree or 1
            coefficient = expectation.bound_coefficient
            breaches = [
                (n, y) for n, y in zip(xs, ys)
                if y > coefficient * n**degree
            ]
            entry.update(
                ok=not breaches,
                bound=f"{coefficient} * n**{degree}",
                points=[{"n": n, "value": y} for n, y in zip(xs, ys)],
            )
            if breaches:
                entry["breaches"] = [
                    {"n": n, "value": y} for n, y in breaches
                ]
        else:
            detected: Classification = classify(xs, ys)
            entry["fit"] = detected.to_json()
            entry["doubling_ratios"] = doubling_ratios(xs, ys)
            if expectation.kind == "poly":
                ok = detected.kind == "poly"
                if ok and expectation.max_degree is not None:
                    ok = detected.degree <= expectation.max_degree
                    entry["max_degree"] = expectation.max_degree
                entry["ok"] = ok
            elif expectation.kind == "superpoly":
                entry["ok"] = detected.kind == "superpoly"
            else:
                entry.update(ok=False,
                             reason=f"unknown kind {expectation.kind!r}")
        results.append(entry)
    return results


def _evaluate_gates(suite: Suite,
                    points: list[dict[str, Any]]) -> list[dict[str, Any]]:
    results = []
    for gate in suite.gates:
        slow_xs, slow_ys = series(points, gate.slow, "seconds")
        fast_xs, fast_ys = series(points, gate.fast, "seconds")
        common = sorted(set(slow_xs) & set(fast_xs))
        entry: dict[str, Any] = {
            "slow": gate.slow, "fast": gate.fast,
            "min_ratio": gate.min_ratio,
        }
        if not common:
            entry.update(ok=False, reason="no common sizes")
            results.append(entry)
            continue
        n = common[-1]
        slow_seconds = slow_ys[slow_xs.index(n)]
        fast_seconds = fast_ys[fast_xs.index(n)]
        ratio = slow_seconds / fast_seconds if fast_seconds > 0 else float("inf")
        entry.update(n=n, slow_seconds=slow_seconds,
                     fast_seconds=fast_seconds, ratio=ratio,
                     ok=ratio >= gate.min_ratio)
        results.append(entry)
    return results


def _check_agreement(suite: Suite,
                     points: list[dict[str, Any]]) -> dict[str, Any]:
    """Cross-strategy checksum agreement per size (differential check)."""
    by_n: dict[int, set] = {}
    for point in points:
        by_n.setdefault(point["n"], set()).add(point["checksum"])
    disagreements = {n: sorted(sums) for n, sums in by_n.items()
                     if len(sums) > 1}
    return {
        "ok": not disagreements,
        "disagreements": {str(n): sums
                          for n, sums in sorted(disagreements.items())},
    }


def run_suite(
    suite: Suite,
    sizes: tuple[int, ...] | None = None,
    strategies: tuple[str, ...] | None = None,
    tracemalloc: bool = False,
) -> dict[str, Any]:
    """Run one suite; returns its JSON-safe result document."""
    sizes = sizes or suite.sizes
    strategies = strategies or suite.strategies
    unknown = [s for s in strategies if s not in suite.strategies]
    if unknown:
        raise BenchError(
            f"suite {suite.name!r} does not declare strategies {unknown}; "
            f"declared: {list(suite.strategies)}"
        )
    points = [
        _run_point(suite, n, strategy, tracemalloc)
        for n in sizes
        for strategy in strategies
    ]
    fits: dict[str, dict[str, Any]] = {}
    for strategy in strategies:
        xs, ys = series(points, strategy, "seconds")
        if len(xs) >= 2:
            fits[strategy] = {"seconds": loglog_fit(xs, ys).to_json()}
    document: dict[str, Any] = {
        "name": suite.name,
        "title": suite.title,
        "sizes": list(sizes),
        "strategies": list(strategies),
        "points": points,
        "fits": fits,
        "expectations": _evaluate_expectations(suite, points),
        "gates": _evaluate_gates(suite, points),
    }
    if suite.agree and len(strategies) > 1:
        document["agreement"] = _check_agreement(suite, points)
    return document


def run_suites(
    suites: list[Suite],
    sizes: tuple[int, ...] | None = None,
    strategy: str | None = None,
    tracemalloc: bool = False,
) -> dict[str, Any]:
    """Run several suites into one observatory document.

    ``sizes``/``strategy`` overrides apply to every suite (``repro bench
    --sizes --strategy``); a strategy a suite does not declare silently
    skips that suite rather than failing the sweep.
    """
    documents: dict[str, Any] = {}
    skipped: list[str] = []
    for suite in suites:
        strategies = None
        if strategy is not None:
            if strategy not in suite.strategies:
                skipped.append(suite.name)
                continue
            strategies = (strategy,)
        documents[suite.name] = run_suite(
            suite, sizes=sizes, strategies=strategies,
            tracemalloc=tracemalloc)
    result: dict[str, Any] = {
        "schema": 1,
        "experiment": "repro-bench",
        "suites": documents,
    }
    if skipped:
        result["skipped"] = skipped
    return result
