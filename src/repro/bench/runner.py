"""The measurement loop: run suites, collect time and space per point,
fit curves, evaluate expectations and gates.

Each point runs under a fresh :class:`repro.obs.Tracer`, so the flat
counters *and* the typed metrics (histograms of per-stage cardinalities,
peak gauges, deep node counts) are per-point — exactly the series the
fits consume.  Wall time is ``perf_counter`` around the suite's ``run``
callable; peak allocated bytes via ``tracemalloc`` are opt-in (the
tracing itself roughly doubles runtimes).

Measurement and document assembly are split so the sharded parallel
runner (:mod:`repro.bench.shard`) can farm points out to worker
processes and still produce the same document: :func:`point_specs`
enumerates a suite's (size, strategy) grid in declaration order,
:func:`run_point` measures one point, and :func:`build_suite_document`
turns an ordered point list back into the suite's result — so the merge
is deterministic no matter which worker finished first.  Points that
failed in a worker (raised, or exceeded the per-point timeout) appear
as ``{"failed": True, "error": ...}`` entries: every series/fit/
agreement computation skips them, and the document is flagged
``"partial": True`` so a degraded run can never pass silently.
"""

from __future__ import annotations

import time
from typing import Any

from ..obs import Tracer, use_tracer
from ..obs.metrics import tracemalloc_peak
from .fit import (
    Classification,
    bound_value,
    classify,
    doubling_ratios,
    format_bound,
    loglog_fit,
)
from .registry import Suite

__all__ = [
    "BenchError",
    "build_suite_document",
    "failed_point",
    "point_specs",
    "run_point",
    "run_suite",
    "run_suites",
    "series",
]


class BenchError(Exception):
    """A suite failed structurally (bad sizes, missing series, checksum
    mismatch across strategies)."""


def run_point(suite: Suite, n: int, strategy: str,
              tracemalloc: bool = False,
              memory: bool = False,
              stream: Any = None) -> dict[str, Any]:
    """Measure one (suite, size, strategy) point under a fresh tracer.

    ``memory=True`` runs the tracer with span-level memory attribution
    (:class:`repro.obs.MemoryAttributor`, ~2x slower) and records the
    root span's traced peak as the ``space.traced_peak`` counter, so the
    observatory's space series can be fit like any engine counter.

    ``stream`` (a text sink or :class:`repro.obs.StreamWriter`) makes
    the point's tracer emit live JSONL — sequential points append
    segments to the same sink, and a killed worker leaves a replayable
    partial trace (:func:`repro.obs.replay_stream`).
    """
    tracer = Tracer(memory=memory, stream=stream)
    if memory:
        # The attributor resets tracemalloc's peak at every span
        # boundary, so the global peak tracemalloc_peak() reads is
        # meaningless here; the root span's propagated peak is the
        # correct whole-run figure.
        start = time.perf_counter()
        with use_tracer(tracer):
            result = suite.run(n, strategy)
        seconds = time.perf_counter() - start
        tracer.close()
        peak_bytes = tracer.root.peak_bytes if tracemalloc else None
        if tracer.root.peak_bytes is not None:
            tracer.counters["space.traced_peak"] = tracer.root.peak_bytes
    elif tracemalloc:
        with tracemalloc_peak() as peak:
            start = time.perf_counter()
            with use_tracer(tracer):
                result = suite.run(n, strategy)
            seconds = time.perf_counter() - start
        tracer.close()
        peak_bytes = peak.bytes
    else:
        start = time.perf_counter()
        with use_tracer(tracer):
            result = suite.run(n, strategy)
        seconds = time.perf_counter() - start
        peak_bytes = None
    tracer.close()
    point: dict[str, Any] = {
        "n": n,
        "strategy": strategy,
        "seconds": seconds,
        "checksum": result.get("checksum"),
        "counters": dict(tracer.counters),
        "histograms": {
            name: histogram.summary()
            for name, histogram in tracer.metrics.histograms()
        },
    }
    if peak_bytes is not None:
        point["tracemalloc_peak_bytes"] = peak_bytes
    return point


def failed_point(n: int, strategy: str, error: str) -> dict[str, Any]:
    """The placeholder a worker failure leaves in a point list: same
    keys as a measured point (so consumers need no special cases beyond
    the ``failed`` flag), no data."""
    return {
        "n": n,
        "strategy": strategy,
        "failed": True,
        "error": error,
        "seconds": None,
        "checksum": None,
        "counters": {},
        "histograms": {},
    }


def point_specs(suite: Suite,
                sizes: tuple[int, ...] | None = None,
                strategies: tuple[str, ...] | None = None,
                ) -> list[tuple[int, str]]:
    """The suite's (size, strategy) grid in declaration order — the
    canonical point order every document uses, serial or sharded."""
    sizes = sizes or suite.sizes
    strategies = strategies or suite.strategies
    unknown = [s for s in strategies if s not in suite.strategies]
    if unknown:
        raise BenchError(
            f"suite {suite.name!r} does not declare strategies {unknown}; "
            f"declared: {list(suite.strategies)}"
        )
    return [(n, strategy) for n in sizes for strategy in strategies]


def series(points: list[dict[str, Any]], strategy: str,
           metric: str) -> tuple[list[int], list[float]]:
    """The (sizes, values) series of one metric for one strategy.

    ``metric`` is ``"seconds"``, ``"tracemalloc_peak_bytes"``, or a
    counter name; missing counters read as 0.  Failed points contribute
    nothing (they have no measurements, not zero-valued ones).
    """
    xs: list[int] = []
    ys: list[float] = []
    for point in points:
        if point["strategy"] != strategy or point.get("failed"):
            continue
        xs.append(point["n"])
        if metric in ("seconds", "tracemalloc_peak_bytes", "checksum"):
            ys.append(float(point.get(metric) or 0.0))
        else:
            ys.append(float(point["counters"].get(metric, 0)))
    return xs, ys


def _evaluate_expectations(suite: Suite,
                           points: list[dict[str, Any]]) -> list[dict[str, Any]]:
    results = []
    for expectation in suite.expectations:
        xs, ys = series(points, expectation.strategy, expectation.metric)
        entry: dict[str, Any] = {
            "metric": expectation.metric,
            "strategy": expectation.strategy,
            "kind": expectation.kind,
            "note": expectation.note,
        }
        if len(xs) < 2:
            entry.update(ok=False, reason=f"series too short ({len(xs)})")
            results.append(entry)
            continue
        if expectation.kind == "bound":
            degree = (1 if expectation.bound_degree is None
                      else expectation.bound_degree)
            coefficient = expectation.bound_coefficient
            base = expectation.bound_base
            breaches = [
                (n, y) for n, y in zip(xs, ys)
                if y > bound_value(n, coefficient, degree, base)
            ]
            entry.update(
                ok=not breaches,
                bound=format_bound(coefficient, degree, base),
                points=[{"n": n, "value": y} for n, y in zip(xs, ys)],
            )
            if breaches:
                entry["breaches"] = [
                    {"n": n, "value": y} for n, y in breaches
                ]
        else:
            detected: Classification = classify(xs, ys)
            entry["fit"] = detected.to_json()
            entry["doubling_ratios"] = doubling_ratios(xs, ys)
            if expectation.kind == "poly":
                ok = detected.kind == "poly"
                if ok and expectation.max_degree is not None:
                    ok = detected.degree <= expectation.max_degree
                    entry["max_degree"] = expectation.max_degree
                entry["ok"] = ok
            elif expectation.kind == "superpoly":
                entry["ok"] = detected.kind == "superpoly"
            else:
                entry.update(ok=False,
                             reason=f"unknown kind {expectation.kind!r}")
        results.append(entry)
    return results


def _evaluate_gates(suite: Suite,
                    points: list[dict[str, Any]]) -> list[dict[str, Any]]:
    results = []
    for gate in suite.gates:
        slow_xs, slow_ys = series(points, gate.slow, gate.metric)
        fast_xs, fast_ys = series(points, gate.fast, gate.metric)
        common = sorted(set(slow_xs) & set(fast_xs))
        entry: dict[str, Any] = {
            "slow": gate.slow, "fast": gate.fast,
            "metric": gate.metric, "min_ratio": gate.min_ratio,
        }
        if not common:
            entry.update(ok=False, reason="no common sizes")
            results.append(entry)
            continue
        n = common[-1]
        slow_value = slow_ys[slow_xs.index(n)]
        fast_value = fast_ys[fast_xs.index(n)]
        ratio = slow_value / fast_value if fast_value > 0 else float("inf")
        entry.update(n=n, slow_value=slow_value, fast_value=fast_value,
                     ratio=ratio, ok=ratio >= gate.min_ratio)
        results.append(entry)
    return results


def _check_agreement(suite: Suite,
                     points: list[dict[str, Any]]) -> dict[str, Any]:
    """Cross-strategy checksum agreement per size (differential check).
    Failed points have no checksum to compare — they are reported
    through the ``failed_points`` channel instead."""
    by_n: dict[int, set] = {}
    for point in points:
        if point.get("failed"):
            continue
        by_n.setdefault(point["n"], set()).add(point["checksum"])
    disagreements = {n: sorted(sums) for n, sums in by_n.items()
                     if len(sums) > 1}
    return {
        "ok": not disagreements,
        "disagreements": {str(n): sums
                          for n, sums in sorted(disagreements.items())},
    }


def build_suite_document(
    suite: Suite,
    sizes: tuple[int, ...],
    strategies: tuple[str, ...],
    points: list[dict[str, Any]],
) -> dict[str, Any]:
    """Assemble one suite's JSON-safe result from its measured (or
    failed) points.  Pure post-processing: given the same points this
    returns the same document, which is what makes the sharded runner's
    merge deterministic."""
    fits: dict[str, dict[str, Any]] = {}
    for strategy in strategies:
        xs, ys = series(points, strategy, "seconds")
        if len(xs) >= 2:
            fits[strategy] = {"seconds": loglog_fit(xs, ys).to_json()}
    document: dict[str, Any] = {
        "name": suite.name,
        "title": suite.title,
        "sizes": list(sizes),
        "strategies": list(strategies),
        "points": points,
        "fits": fits,
        "expectations": _evaluate_expectations(suite, points),
        "gates": _evaluate_gates(suite, points),
    }
    if suite.agree and len(strategies) > 1:
        document["agreement"] = _check_agreement(suite, points)
    failed = [point for point in points if point.get("failed")]
    if failed:
        document["failed_points"] = [
            {"n": point["n"], "strategy": point["strategy"],
             "error": point["error"]}
            for point in failed
        ]
    return document


def run_suite(
    suite: Suite,
    sizes: tuple[int, ...] | None = None,
    strategies: tuple[str, ...] | None = None,
    tracemalloc: bool = False,
    memory: bool = False,
    stream: Any = None,
) -> dict[str, Any]:
    """Run one suite serially; returns its JSON-safe result document."""
    specs = point_specs(suite, sizes, strategies)
    points = [
        run_point(suite, n, strategy, tracemalloc, memory=memory,
                  stream=stream)
        for n, strategy in specs
    ]
    return build_suite_document(suite, sizes or suite.sizes,
                                strategies or suite.strategies, points)


def _suite_plan(
    suites: list[Suite],
    strategy: str | None,
) -> tuple[list[tuple[Suite, tuple[str, ...] | None]], list[str]]:
    """Apply the global ``--strategy`` filter: per suite, the strategy
    tuple to run (None = the suite's own), plus the skipped names."""
    plan: list[tuple[Suite, tuple[str, ...] | None]] = []
    skipped: list[str] = []
    for suite in suites:
        strategies: tuple[str, ...] | None = None
        if strategy is not None:
            if strategy not in suite.strategies:
                skipped.append(suite.name)
                continue
            strategies = (strategy,)
        plan.append((suite, strategies))
    return plan, skipped


def run_suites(
    suites: list[Suite],
    sizes: tuple[int, ...] | None = None,
    strategy: str | None = None,
    tracemalloc: bool = False,
    jobs: int = 1,
    point_timeout: float | None = None,
    memory: bool = False,
    stream: Any = None,
) -> dict[str, Any]:
    """Run several suites into one observatory document.

    ``sizes``/``strategy`` overrides apply to every suite (``repro bench
    --sizes --strategy``); a strategy a suite does not declare silently
    skips that suite rather than failing the sweep.

    ``jobs=1`` with no ``point_timeout`` is the serial path — today's
    behaviour, bit for bit.  ``jobs > 1`` (or a timeout) shards the
    cross-suite point grid over a :mod:`repro.bench.shard` worker pool:
    results merge in registry declaration order regardless of completion
    order, and a point that raises or times out degrades to a flagged
    failure entry instead of sinking the whole run (the document is then
    marked ``"partial": True``).
    """
    if jobs < 1:
        raise BenchError(f"jobs must be >= 1, got {jobs}")
    plan, skipped = _suite_plan(suites, strategy)
    documents: dict[str, Any] = {}
    if jobs == 1 and point_timeout is None:
        for suite, strategies in plan:
            documents[suite.name] = run_suite(
                suite, sizes=sizes, strategies=strategies,
                tracemalloc=tracemalloc, memory=memory, stream=stream)
    else:
        if stream is not None:
            raise BenchError(
                "--stream applies to serial runs only; sharded workers "
                "stream through their result pipes instead")
        from .shard import run_sharded

        documents = run_sharded(plan, sizes=sizes, tracemalloc=tracemalloc,
                                jobs=jobs, point_timeout=point_timeout,
                                memory=memory)
    result: dict[str, Any] = {
        "schema": 1,
        "experiment": "repro-bench",
        "suites": documents,
    }
    if any(doc.get("failed_points") for doc in documents.values()):
        result["partial"] = True
    if skipped:
        result["skipped"] = skipped
    return result
