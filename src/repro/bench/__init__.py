"""repro.bench — the unified benchmark runner ("scaling observatory").

Declared sweeps (workload × size-series × strategy) live in
:mod:`repro.bench.registry`; :mod:`repro.bench.runner` measures each
point's wall time *and* space counters under a fresh tracer;
:mod:`repro.bench.fit` fits log-log slopes and doubling ratios and
classifies each curve poly-vs-superpolynomial; and
:mod:`repro.bench.report` renders the result and regression-gates it
against a committed baseline.  The CLI front end is ``repro bench``.

Typical use::

    from repro.bench import resolve_suites, run_suites, render_document

    document = run_suites(resolve_suites(["smoke"]))
    print(render_document(document))
"""

from .fit import Classification, Fit, classify, doubling_ratios, local_degrees, loglog_fit
from .registry import (
    GROUPS,
    SUITES,
    Expectation,
    SpeedupGate,
    Suite,
    Tolerance,
    resolve_suites,
)
from .report import diff_against_baseline, document_failures, render_document
from .runner import BenchError, run_suite, run_suites, series

__all__ = [
    "Fit",
    "Classification",
    "loglog_fit",
    "local_degrees",
    "doubling_ratios",
    "classify",
    "Expectation",
    "SpeedupGate",
    "Tolerance",
    "Suite",
    "SUITES",
    "GROUPS",
    "resolve_suites",
    "BenchError",
    "run_suite",
    "run_suites",
    "series",
    "render_document",
    "diff_against_baseline",
    "document_failures",
]
