"""repro.bench — the unified benchmark runner ("scaling observatory").

Declared sweeps (workload × size-series × strategy) live in
:mod:`repro.bench.registry`; :mod:`repro.bench.runner` measures each
point's wall time *and* space counters under a fresh tracer (serially,
or sharded over a process pool via :mod:`repro.bench.shard` with
``jobs > 1``); :mod:`repro.bench.fit` fits log-log slopes and doubling
ratios and classifies each curve poly-vs-superpolynomial;
:mod:`repro.bench.report` renders the result and regression-gates it
against a committed ``schema: 1`` baseline; and
:mod:`repro.bench.trend` stitches the per-PR ``BENCH_PR<N>.json``
documents into cross-PR trajectories.  The CLI front end is
``repro bench``.

Typical use::

    from repro.bench import resolve_suites, run_suites, render_document

    document = run_suites(resolve_suites(["smoke"]), jobs=4)
    print(render_document(document))
"""

from .fit import (
    Classification,
    Fit,
    bound_value,
    classify,
    doubling_ratios,
    format_bound,
    local_degrees,
    loglog_fit,
)
from .registry import (
    GROUPS,
    SUITES,
    Expectation,
    SpeedupGate,
    Suite,
    Tolerance,
    resolve_suites,
)
from .report import (
    LegacyBaselineError,
    diff_against_baseline,
    document_failures,
    render_document,
)
from .runner import (
    BenchError,
    build_suite_document,
    failed_point,
    point_specs,
    run_point,
    run_suite,
    run_suites,
    series,
)
from .shard import PointTask, run_sharded, run_tasks, strip_timing
from .trend import (
    TrendError,
    build_trend,
    convert_legacy,
    is_legacy,
    label_for_path,
    load_documents,
    migrated_path,
    render_trend,
)

__all__ = [
    "Fit",
    "Classification",
    "loglog_fit",
    "local_degrees",
    "doubling_ratios",
    "classify",
    "bound_value",
    "format_bound",
    "Expectation",
    "SpeedupGate",
    "Tolerance",
    "Suite",
    "SUITES",
    "GROUPS",
    "resolve_suites",
    "BenchError",
    "run_point",
    "failed_point",
    "point_specs",
    "build_suite_document",
    "run_suite",
    "run_suites",
    "series",
    "PointTask",
    "run_sharded",
    "run_tasks",
    "strip_timing",
    "LegacyBaselineError",
    "render_document",
    "diff_against_baseline",
    "document_failures",
    "TrendError",
    "is_legacy",
    "convert_legacy",
    "label_for_path",
    "load_documents",
    "migrated_path",
    "build_trend",
    "render_trend",
]
