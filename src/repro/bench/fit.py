"""Curve fitting and scaling-class detection for benchmark series.

The observatory's job is to check *measured* resource curves against the
paper's *predicted* shapes: transitive closure under semi-naive
evaluation on dense inputs must look polynomial of low degree
(Theorem 4.1's PTIME side), ``hyper(i, k)`` domain materialisation must
look superpolynomial (Section 2's hyperexponential lower bounds), and
range-restricted space must stay inside an explicit polynomial bound
(Theorem 5.1).  Everything here is exact arithmetic over the measured
points — no numpy, no fitting libraries.

Tools:

* :func:`loglog_fit` — least-squares slope/intercept on
  ``(log2 n, log2 y)``; for a clean ``y = c * n**d`` series the slope is
  ``d``.
* :func:`local_degrees` — the per-segment slopes
  ``log(y2/y1) / log(n2/n1)``: constant for polynomial series, strictly
  increasing for superpolynomial ones.  This is the discriminator:
  a global slope cannot tell ``n**8`` from ``2**n`` over a short range,
  the local-degree *trend* can.
* :func:`doubling_ratios` — ``y`` growth factors between consecutive
  points (``2**d`` per doubling for a degree-``d`` polynomial).
* :func:`classify` — poly-degree-d vs superpolynomial, with guards
  against noise promoting a polynomial curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "Fit",
    "Classification",
    "loglog_fit",
    "local_degrees",
    "doubling_ratios",
    "classify",
    "bound_value",
    "format_bound",
]

#: Floor applied to measured values before taking logs, so zero counters
#: and sub-microsecond timings do not blow up the arithmetic.
_EPSILON = 1e-12

#: Each local-degree step must grow by at least this much for a series
#: to count as superpolynomial...
SUPERPOLY_STEP = 0.25
#: ...and the total local-degree increase must reach this margin.  Both
#: conditions together keep noisy polynomial timings (whose local
#: degrees wobble) from being classified superpolynomial.
SUPERPOLY_MARGIN = 1.0


@dataclass(frozen=True)
class Fit:
    """A least-squares line through ``(log2 x, log2 y)``."""

    slope: float
    intercept: float
    r2: float

    def to_json(self) -> dict[str, float]:
        return {"slope": self.slope, "intercept": self.intercept,
                "r2": self.r2}


@dataclass(frozen=True)
class Classification:
    """The detected scaling class of a series.

    ``kind`` is ``"poly"`` (with ``degree`` the fitted log-log slope) or
    ``"superpoly"`` (local degrees monotonically increasing past the
    margin).  ``local_degrees`` is kept for reports.
    """

    kind: str
    degree: float
    r2: float
    local_degrees: tuple[float, ...]

    def to_json(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "degree": self.degree,
            "r2": self.r2,
            "local_degrees": list(self.local_degrees),
        }


def bound_value(n: float, coefficient: float, degree: int,
                base: float | None = None) -> float:
    """The declared envelope ``coefficient * base**n * n**degree`` at
    one size (``base=None`` drops the exponential factor: a pure
    polynomial bound)."""
    value = coefficient * float(n) ** degree
    if base is not None:
        value *= base ** n
    return value


def format_bound(coefficient: float, degree: int,
                 base: float | None = None) -> str:
    """Human form of the same envelope, for reports."""
    parts = [str(coefficient)]
    if base is not None:
        parts.append(f"{base}**n")
    parts.append(f"n**{degree}")
    return " * ".join(parts)


def _logs(values: Sequence[float]) -> list[float]:
    return [math.log2(max(float(v), _EPSILON)) for v in values]


def loglog_fit(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """Least-squares ``log2 y = slope * log2 x + intercept``.

    Needs at least two distinct ``x`` values; the slope of a pure
    power law ``y = c * x**d`` is exactly ``d``.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    lx, ly = _logs(xs), _logs(ys)
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("xs are all equal; slope is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    syy = sum((y - mean_y) ** 2 for y in ly)
    if syy == 0:
        r2 = 1.0  # a constant series is fit perfectly by slope 0
    else:
        residual = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly)
        )
        r2 = 1.0 - residual / syy
    return Fit(slope=slope, intercept=intercept, r2=r2)


def local_degrees(xs: Sequence[float], ys: Sequence[float]) -> list[float]:
    """Per-segment slopes ``log(y2/y1) / log(x2/x1)``.

    Constant (= the degree) for a polynomial series; strictly increasing
    for a superpolynomial one (each segment of ``2**n`` looks like a
    higher-degree polynomial than the last).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lx, ly = _logs(xs), _logs(ys)
    degrees = []
    for i in range(1, len(xs)):
        dx = lx[i] - lx[i - 1]
        if dx <= 0:
            raise ValueError("xs must be strictly increasing")
        degrees.append((ly[i] - ly[i - 1]) / dx)
    return degrees


def doubling_ratios(xs: Sequence[float], ys: Sequence[float]) -> list[float]:
    """``y`` growth factor between consecutive points, normalised to a
    per-doubling rate: ``(y2/y1) ** (1 / log2(x2/x1))``.

    For a degree-``d`` polynomial every entry is ``2**d`` regardless of
    the ``x`` spacing.
    """
    ratios = []
    for degree in local_degrees(xs, ys):
        ratios.append(2.0**degree)
    return ratios


def classify(
    xs: Sequence[float],
    ys: Sequence[float],
    superpoly_step: float = SUPERPOLY_STEP,
    superpoly_margin: float = SUPERPOLY_MARGIN,
) -> Classification:
    """Poly-degree-d vs superpolynomial.

    A series is superpolynomial when its local degrees increase
    monotonically with every step at least ``superpoly_step`` and a
    total increase of at least ``superpoly_margin``; otherwise it is
    polynomial with the fitted log-log slope as its degree.  The double
    condition makes the detector one-sided in the safe direction: noisy
    polynomial timings stay "poly", while any genuinely exponential
    series sampled over a growing range trips both conditions.
    """
    degrees = local_degrees(xs, ys)
    fit = loglog_fit(xs, ys)
    if len(degrees) >= 2:
        steps = [b - a for a, b in zip(degrees, degrees[1:])]
        monotone = all(step >= superpoly_step for step in steps)
        total = degrees[-1] - degrees[0]
        if monotone and total >= superpoly_margin:
            return Classification(
                kind="superpoly", degree=fit.slope, r2=fit.r2,
                local_degrees=tuple(degrees),
            )
    return Classification(
        kind="poly", degree=fit.slope, r2=fit.r2,
        local_degrees=tuple(degrees),
    )
