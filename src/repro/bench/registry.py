"""The suite registry: declared sweeps (workload × size-series × strategy).

This replaces the loose one-off benchmark scripts with declarations: a
:class:`Suite` names a workload, a size series, the strategies to race,
and — the part the scripts never had — the *predicted* resource shapes:

* :class:`Expectation` — the fitted curve of a metric must be
  polynomial of bounded degree (``kind="poly"``), superpolynomial
  (``kind="superpoly"``), or within an explicit per-point bound
  ``coefficient * n**degree`` (``kind="bound"``, Theorem 5.1 style);
* :class:`SpeedupGate` — one strategy must beat another by a factor at
  the largest size (the PR 3 ``>=2x`` semi-naive gate lives on as a
  declaration);
* :class:`Tolerance` — deterministic counters regress-gated against a
  committed baseline (``max_ratio=0`` means exact match).

Suites keep their ``run(n, strategy)`` callables tiny: build the
workload, evaluate, return a checksum.  All measurement (timing, space
counters, histograms) happens in :mod:`repro.bench.runner` around the
call, through the installed tracer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = [
    "Expectation",
    "SpeedupGate",
    "Tolerance",
    "Suite",
    "SUITES",
    "GROUPS",
    "resolve_suites",
]


@dataclass(frozen=True)
class Expectation:
    """A predicted curve shape for one metric of one strategy's series."""

    metric: str  # "seconds" or a tracer counter name
    kind: str  # "poly" | "superpoly" | "bound"
    strategy: str = "seminaive"
    max_degree: float | None = None  # poly: fitted slope must stay <=
    bound_degree: int | None = None  # bound: metric <= coeff * n**degree
    bound_coefficient: float = 1.0
    note: str = ""


@dataclass(frozen=True)
class SpeedupGate:
    """``slow`` strategy time over ``fast`` strategy time at the largest
    size must be at least ``min_ratio``."""

    slow: str = "naive"
    fast: str = "seminaive"
    min_ratio: float = 2.0


@dataclass(frozen=True)
class Tolerance:
    """Regression tolerance for a deterministic metric vs a baseline.

    Per size/strategy point, the new value may exceed the baseline by at
    most ``max_ratio`` (relative); ``0.0`` demands equality.  Counters
    only ever compare against the same machine-independent quantities —
    wall times are never diffed across runs (the speedup gates cover
    time, as within-run ratios).
    """

    metric: str
    max_ratio: float = 0.0


@dataclass(frozen=True)
class Suite:
    """One declared sweep."""

    name: str
    title: str
    sizes: tuple[int, ...]
    strategies: tuple[str, ...]
    run: Callable[[int, str], Mapping[str, Any]]
    expectations: tuple[Expectation, ...] = ()
    gates: tuple[SpeedupGate, ...] = ()
    tolerances: tuple[Tolerance, ...] = ()
    agree: bool = True  # checksums must match across strategies per size
    baseline_key: str | None = None  # section name in legacy baselines


# ---------------------------------------------------------------------------
# Workload runners (n, strategy) -> {"checksum": int, ...}
# ---------------------------------------------------------------------------

def _tc_program():
    """Datalog transitive closure over a flat (atom-node) graph."""
    from ..datalog import Literal, Program, Rule

    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["U", "U"]},
    )


def _chain_closure_rows(n: int) -> int:
    """|TC(chain_graph(n))| — all ordered pairs along the path."""
    return n * (n - 1) // 2


def _run_datalog_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..datalog import evaluate_inflationary
    from ..workloads import chain_graph

    result = evaluate_inflationary(_tc_program(), chain_graph(n),
                                   strategy=strategy)
    rows = len(result["T"])
    expected = _chain_closure_rows(n)
    if rows != expected:
        raise AssertionError(
            f"datalog TC on chain({n}) produced {rows} rows, "
            f"expected {expected}"
        )
    return {"checksum": rows}


def _run_calc_ifp_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..core.evaluation import evaluate
    from ..workloads import chain_graph, transitive_closure_query

    answer = evaluate(transitive_closure_query("U"), chain_graph(n),
                      strategy=strategy)
    return {"checksum": len(answer)}


def _run_loop_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..algebra import tc_via_loop
    from ..workloads import chain_graph

    pairs = tc_via_loop(chain_graph(n), strategy=strategy)
    return {"checksum": len(pairs)}


def _run_rr_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..core.safety import evaluate_range_restricted
    from ..workloads import chain_graph, transitive_closure_query

    report = evaluate_range_restricted(
        transitive_closure_query("U"), chain_graph(n), strategy=strategy)
    return {"checksum": len(report.answer)}


def _run_hyper_domain(n: int, strategy: str) -> dict[str, Any]:
    from ..workloads import full_domain_instance

    inst = full_domain_instance("{U}", n)
    return {"checksum": len(inst.relation("R").tuples)}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

SUITES: dict[str, Suite] = {}


def _register(suite: Suite) -> Suite:
    SUITES[suite.name] = suite
    return suite


_register(Suite(
    name="seminaive-smoke",
    title="Datalog TC on chains: naive vs semi-naive (the PR 3 gate)",
    sizes=(8, 16, 32, 64),
    strategies=("naive", "seminaive"),
    run=_run_datalog_tc,
    expectations=(
        Expectation(metric="datalog.rows_derived", kind="poly",
                    strategy="seminaive", max_degree=2.5,
                    note="semi-naive derives each closure row once-ish"),
    ),
    gates=(SpeedupGate(slow="naive", fast="seminaive", min_ratio=2.0),),
    tolerances=(
        Tolerance(metric="datalog.rows_derived", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
    baseline_key="datalog",
))

_register(Suite(
    name="tc-seminaive-dense",
    title="Dense PTIME curve: semi-naive Datalog TC, larger chains",
    sizes=(16, 32, 64, 128),
    strategies=("seminaive",),
    run=_run_datalog_tc,
    expectations=(
        Expectation(metric="seconds", kind="poly", strategy="seminaive",
                    max_degree=3.2,
                    note="Theorem 4.1 PTIME side: cubic-or-better"),
        Expectation(metric="datalog.rows_derived", kind="poly",
                    strategy="seminaive", max_degree=2.5),
    ),
    agree=False,  # single strategy
))

_register(Suite(
    name="hyper-domain",
    title="hyper(i,k) domain materialisation: the superpolynomial wall",
    sizes=(6, 8, 10, 12, 14),
    strategies=("seminaive",),
    run=_run_hyper_domain,
    expectations=(
        Expectation(metric="space.domain_values", kind="superpoly",
                    strategy="seminaive",
                    note="|dom({U}, D)| = 2**n — Section 2's bound"),
        Expectation(metric="space.domain_nodes", kind="superpoly",
                    strategy="seminaive"),
    ),
    agree=False,
))

_register(Suite(
    name="rr-space-chain",
    title="Range-restricted TC: space within the Theorem 5.1 bound",
    sizes=(8, 12, 16, 24),
    strategies=("seminaive",),
    run=_run_rr_tc,
    expectations=(
        Expectation(metric="space.peak_range", kind="bound",
                    strategy="seminaive", bound_degree=1,
                    bound_coefficient=2.0,
                    note="ranges stay linear in the chain length"),
        Expectation(metric="space.peak_fixpoint_rows", kind="bound",
                    strategy="seminaive", bound_degree=2,
                    bound_coefficient=1.0,
                    note="working set bounded by |TC| <= n^2"),
    ),
    agree=False,
))

_register(Suite(
    name="calc-ifp-dense",
    title="CALC+IFP TC on chains: naive vs semi-naive evaluator",
    sizes=(6, 8, 10, 12),
    strategies=("naive", "seminaive"),
    run=_run_calc_ifp_tc,
    tolerances=(
        Tolerance(metric="ifp.stages", max_ratio=0.0),
        Tolerance(metric="eval.delta_rows", max_ratio=0.0),
    ),
    baseline_key="calc_ifp",
))

_register(Suite(
    name="algebra-loop",
    title="Native TC loop: frontier semi-naive vs full recomposition",
    sizes=(32, 64, 128),
    strategies=("naive", "seminaive"),
    run=_run_loop_tc,
    expectations=(
        Expectation(metric="space.peak_loop_rows", kind="poly",
                    strategy="seminaive", max_degree=2.2,
                    note="closure cardinality is Theta(n^2) on a chain"),
    ),
    baseline_key="algebra_loop",
))


#: Named groups accepted by ``repro bench --suite``.
GROUPS: dict[str, tuple[str, ...]] = {
    "smoke": ("seminaive-smoke", "tc-seminaive-dense", "hyper-domain",
              "rr-space-chain", "calc-ifp-dense", "algebra-loop"),
    "all": tuple(SUITES),
}


def resolve_suites(names: list[str] | None) -> list[Suite]:
    """Expand suite and group names into Suite objects (order-preserving,
    deduplicated).  Unknown names raise ``KeyError`` with the candidates.
    """
    if not names:
        names = ["smoke"]
    resolved: list[Suite] = []
    seen: set[str] = set()
    for name in names:
        expanded = GROUPS.get(name, (name,))
        for suite_name in expanded:
            if suite_name not in SUITES:
                known = sorted(set(SUITES) | set(GROUPS))
                raise KeyError(
                    f"unknown suite {suite_name!r}; known: {', '.join(known)}"
                )
            if suite_name not in seen:
                seen.add(suite_name)
                resolved.append(SUITES[suite_name])
    return resolved
