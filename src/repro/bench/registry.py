"""The suite registry: declared sweeps (workload × size-series × strategy).

This replaces the loose one-off benchmark scripts with declarations: a
:class:`Suite` names a workload, a size series, the strategies to race,
and — the part the scripts never had — the *predicted* resource shapes:

* :class:`Expectation` — the fitted curve of a metric must be
  polynomial of bounded degree (``kind="poly"``), superpolynomial
  (``kind="superpoly"``), or within an explicit per-point bound
  ``coefficient * n**degree`` (``kind="bound"``, Theorem 5.1 style);
* :class:`SpeedupGate` — one strategy must beat another by a factor at
  the largest size (the PR 3 ``>=2x`` semi-naive gate lives on as a
  declaration);
* :class:`Tolerance` — deterministic counters regress-gated against a
  committed baseline (``max_ratio=0`` means exact match).

Suites keep their ``run(n, strategy)`` callables tiny: build the
workload, evaluate, return a checksum.  All measurement (timing, space
counters, histograms) happens in :mod:`repro.bench.runner` around the
call, through the installed tracer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = [
    "Expectation",
    "SpeedupGate",
    "Tolerance",
    "Suite",
    "SUITES",
    "GROUPS",
    "resolve_suites",
]


@dataclass(frozen=True)
class Expectation:
    """A predicted curve shape for one metric of one strategy's series.

    ``kind="bound"`` checks every point against
    ``coefficient * bound_base**n * n**degree``; with ``bound_base``
    unset the bound is purely polynomial (Theorem 5.1 style), with
    ``bound_base=2.0`` it is the paper's one-exponential ``P(hyper(1,k))``
    envelope (Theorem 6.1 style).
    """

    metric: str  # "seconds" or a tracer counter name
    kind: str  # "poly" | "superpoly" | "bound"
    strategy: str = "seminaive"
    max_degree: float | None = None  # poly: fitted slope must stay <=
    bound_degree: int | None = None  # bound: polynomial part's degree
    bound_coefficient: float = 1.0
    bound_base: float | None = None  # bound: exponential part's base
    note: str = ""


@dataclass(frozen=True)
class SpeedupGate:
    """The ``slow`` strategy's value over the ``fast`` strategy's value
    at the largest common size must be at least ``min_ratio``.

    ``metric`` defaults to wall ``"seconds"`` (a within-run ratio, so it
    is machine-independent enough to gate); a counter name instead makes
    the gate fully deterministic (e.g. the IFP-vs-PFP working-set ratio
    of Theorem 4.1(3))."""

    slow: str = "naive"
    fast: str = "seminaive"
    min_ratio: float = 2.0
    metric: str = "seconds"


@dataclass(frozen=True)
class Tolerance:
    """Regression tolerance for a deterministic metric vs a baseline.

    Per size/strategy point, the new value may exceed the baseline by at
    most ``max_ratio`` (relative); ``0.0`` demands equality.  Counters
    only ever compare against the same machine-independent quantities —
    wall times are never diffed across runs (the speedup gates cover
    time, as within-run ratios).
    """

    metric: str
    max_ratio: float = 0.0


@dataclass(frozen=True)
class Suite:
    """One declared sweep."""

    name: str
    title: str
    sizes: tuple[int, ...]
    strategies: tuple[str, ...]
    run: Callable[[int, str], Mapping[str, Any]]
    expectations: tuple[Expectation, ...] = ()
    gates: tuple[SpeedupGate, ...] = ()
    tolerances: tuple[Tolerance, ...] = ()
    agree: bool = True  # checksums must match across strategies per size


# ---------------------------------------------------------------------------
# Workload runners (n, strategy) -> {"checksum": int, ...}
# ---------------------------------------------------------------------------

def _tc_program():
    """Datalog transitive closure over a flat (atom-node) graph."""
    from ..datalog import Literal, Program, Rule

    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["U", "U"]},
    )


def _chain_closure_rows(n: int) -> int:
    """|TC(chain_graph(n))| — all ordered pairs along the path."""
    return n * (n - 1) // 2


def _run_datalog_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..datalog import evaluate_inflationary
    from ..workloads import chain_graph

    result = evaluate_inflationary(_tc_program(), chain_graph(n),
                                   strategy=strategy)
    rows = len(result["T"])
    expected = _chain_closure_rows(n)
    if rows != expected:
        raise AssertionError(
            f"datalog TC on chain({n}) produced {rows} rows, "
            f"expected {expected}"
        )
    return {"checksum": rows}


def _run_calc_ifp_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..core.evaluation import evaluate
    from ..workloads import chain_graph, transitive_closure_query

    answer = evaluate(transitive_closure_query("U"), chain_graph(n),
                      strategy=strategy)
    return {"checksum": len(answer)}


def _run_loop_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..algebra import tc_via_loop
    from ..workloads import chain_graph

    pairs = tc_via_loop(chain_graph(n), strategy=strategy)
    return {"checksum": len(pairs)}


def _run_rr_tc(n: int, strategy: str) -> dict[str, Any]:
    from ..core.safety import evaluate_range_restricted
    from ..workloads import chain_graph, transitive_closure_query

    report = evaluate_range_restricted(
        transitive_closure_query("U"), chain_graph(n), strategy=strategy)
    return {"checksum": len(report.answer)}


def _run_hyper_domain(n: int, strategy: str) -> dict[str, Any]:
    from ..workloads import full_domain_instance

    inst = full_domain_instance("{U}", n)
    return {"checksum": len(inst.relation("R").tuples)}


# -- absorbed from the legacy benchmarks/bench_*.py scripts -----------------

def _run_quantifier_tower(n: int, strategy: str) -> dict[str, Any]:
    """Theorem 4.2 (ex ``bench_hyper_scaling.py``): a universal
    quantifier one set level above the density boundary of a flat
    instance sweeps the full ``2**n`` subset domain — a tautological
    body prevents short-circuiting, so ``eval.quantifier_iterations``
    tracks ``|dom({U}, D)|`` exactly."""
    from ..core.builder import V, forall, member, query, rel
    from ..core.evaluation import evaluate
    from ..objects import database_schema, instance
    from ..workloads import atoms_universe

    atoms = atoms_universe(n)
    inst = instance(database_schema(P=["U"]), P=[(a,) for a in atoms])
    x = V("x", "U")
    s = V("s", "{U}")
    tautology = member(x, s).implies(member(x, s))
    answer = evaluate(query([x], rel("P")(x) & forall(s, tautology)), inst)
    if len(answer) != n:
        raise AssertionError(
            f"tower query on {n} atoms returned {len(answer)} rows")
    return {"checksum": len(answer)}


def _decoded_checksum(rows) -> int:
    """Order- and process-independent checksum of an answer relation
    (``hash`` is salted per process, so shards cannot use it).  The
    logic lives in :func:`repro.obs.ledger.rows_checksum` now — the run
    ledger keys result identity on the same quantity."""
    from ..obs import rows_checksum

    return rows_checksum(rows)


def _run_sparse_collapse(n: int, strategy: str) -> dict[str, Any]:
    """Proposition 5.2 (ex ``bench_sparse_collapse.py``): TC over a
    sparse chain of set-typed nodes, either directly over the nested
    objects (``direct``) or through the Q_T tuple-encoding
    (``encoded``).  Checksums are computed over the *decoded* answers,
    so the cross-strategy agreement check is exactly the proposition's
    RR ≡ RR+encoding claim; ``collapse.domain_values`` records each
    route's quantification space (``2**n`` sets vs ``n**m`` tuples)."""
    from ..analysis import SparseEncoding
    from ..core.safety import evaluate_range_restricted
    from ..obs import get_tracer
    from ..objects import domain_cardinality, parse_type
    from ..workloads import sparse_chain_family, transitive_closure_query

    inst = sparse_chain_family(n)
    if strategy == "direct":
        answer = evaluate_range_restricted(
            transitive_closure_query("{U}"), inst).answer
        space = domain_cardinality(parse_type("{U}"), n)
    elif strategy == "encoded":
        encoding = SparseEncoding(inst)
        flat = encoding.encode_instance()
        node_type = flat.schema["G"].column_types[0]
        encoded = evaluate_range_restricted(
            transitive_closure_query(node_type), flat).answer
        answer = encoding.decode_rows(encoded)
        space = domain_cardinality(node_type, n)
    else:
        raise AssertionError(f"unknown sparse-collapse route {strategy!r}")
    get_tracer().count("collapse.domain_values", space)
    return {"checksum": _decoded_checksum(answer)}


def _run_density_measures(n: int, strategy: str) -> dict[str, Any]:
    """Lemma 4.1 (ex ``bench_density_equivalence.py``): the four
    measures |I|, ||I||, |dom|, ||dom|| on a dense family (all subsets)
    and a sparse family (singleton chain) at the same ``n``.  The run
    asserts the lemma's facts (a)-(c) and records the dense family's
    measures so the declared expectations can pin their shapes."""
    import math

    from ..analysis import lemma41_witness
    from ..obs import get_tracer
    from ..workloads import all_subsets_instance, sparse_chain_family

    dense = lemma41_witness(all_subsets_instance(n), 1, 1)
    sparse = lemma41_witness(sparse_chain_family(n), 1, 1)
    for label, witness in (("dense", dense), ("sparse", sparse)):
        bad = [fact for fact, holds in witness.facts.items() if not holds]
        if bad:
            raise AssertionError(f"Lemma 4.1 facts failed ({label}): {bad}")
    if sparse.cardinality > 4 * math.log2(sparse.dom_cardinality):
        raise AssertionError("sparse family is not sparse w.r.t. <1,1>")
    tracer = get_tracer()
    tracer.count("lemma41.dense_dom_values", dense.dom_cardinality)
    tracer.count("lemma41.dense_dom_per_1000_rows",
                 int(1000 * dense.dom_cardinality / dense.cardinality))
    tracer.count("lemma41.sparse_rows", sparse.cardinality)
    return {"checksum": dense.cardinality}


#: Tape alphabet of the copy machine (ex ``bench_pfp_simulation.py``).
_TAPE_ALPHABET = frozenset("01#[]{}G:")


def _run_simulation(n: int, strategy: str) -> dict[str, Any]:
    """Theorem 4.1(3) (ex ``bench_pfp_simulation.py``): the same copy
    machine on an ``n``-edge chain, simulated via the timestamped IFP
    construction (``ifp``) or the current-configuration-only PFP one
    (``pfp``).  Checksum = CRC of the final tape, so the agreement check
    is tape equality; ``space.peak_fixpoint_rows`` feeds the
    deterministic no-timestamps gate."""
    import zlib

    from ..machines import copy_machine, simulate_query, simulate_query_pfp
    from ..objects import database_schema, instance
    from ..workloads import atoms_universe

    atoms = atoms_universe(n + 1)
    inst = instance(database_schema(G=["U", "U"]),
                    G=list(zip(atoms, atoms[1:])))
    machine = copy_machine(_TAPE_ALPHABET)
    simulate = simulate_query if strategy == "ifp" else simulate_query_pfp
    result = simulate(machine, inst, max_steps=500_000)
    if result.final_state != "done":
        raise AssertionError(f"copy machine halted in {result.final_state!r}")
    return {"checksum": zlib.crc32(result.final_tape.encode("utf-8"))}


def _run_flat_kernel(n: int, strategy: str) -> dict[str, Any]:
    """Theorem 6.1 (ex ``bench_flat_restriction.py``): the kernel query
    — flat-to-flat with one height-1 existential set variable — on odd
    cycles, where no kernel exists and the set quantifier cannot
    short-circuit.  Iterations grow superpolynomially but stay inside
    the single-exponential ``P(hyper(1,k))`` envelope."""
    from ..core.builder import V, exists, forall, member, proj, query, rel
    from ..core.evaluation import evaluate
    from ..workloads import cycle_graph

    if n % 2 == 0:
        raise AssertionError("flat-kernel sizes must be odd cycles")
    t = V("t", "[U,U]")
    X = V("X", "{U}")
    u, v = V("u", "U"), V("v", "U")
    w, z = V("w", "U"), V("z", "U")
    G = rel("G")
    independent = forall([u, v],
                         (member(u, X) & member(v, X)).implies(~G(u, v)))
    is_node = (exists(V("n1", "U"), G(w, V("n1", "U")))
               | exists(V("n2", "U"), G(V("n2", "U"), w)))
    dominated = member(w, X) | exists(z, member(z, X) & G(z, w))
    dominating = forall(w, is_node.implies(dominated))
    kernel = query([t], G(proj(t, 1), proj(t, 2))
                   & exists(X, independent & dominating))
    answer = evaluate(kernel, cycle_graph(n))
    if answer:  # odd cycles have no kernel: the full 2**n sweep happened
        raise AssertionError(f"odd cycle C{n} reported a kernel")
    return {"checksum": len(answer)}


def _set_tc_program():
    """Datalog transitive closure over a set-node graph (Example 3.1)."""
    from ..datalog import Literal, Program, Rule

    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["{U}", "{U}"]},
    )


def _run_tc_engines(n: int, strategy: str) -> dict[str, Any]:
    """E06 (ex ``bench_transitive_closure.py``): Example 3.1's one query,
    four evaluation routes — naive active-domain CALC+IFP (``calc``),
    range-restricted CALC+IFP (``rr``), inflationary Datalog
    (``datalog``), and the hand-rolled semi-naive loop (``loop``) — on
    the same seeded set-node random graph.  Checksums are taken over the
    canonical (source, target) pair sets, so the cross-strategy
    agreement check is the scripts' all-engines-agree assertion."""
    from ..workloads import set_random_graph, transitive_closure_query

    graph = set_random_graph(3, n, p=0.35, seed=41)
    if strategy == "calc":
        from ..core.evaluation import evaluate

        answer = evaluate(transitive_closure_query(), graph)
        pairs = frozenset((row.component(1), row.component(2))
                          for row in answer)
    elif strategy == "rr":
        from ..core.safety import evaluate_range_restricted

        report = evaluate_range_restricted(transitive_closure_query(), graph)
        pairs = frozenset((row.component(1), row.component(2))
                          for row in report.answer)
    elif strategy == "datalog":
        from ..datalog import evaluate_inflationary

        result = evaluate_inflationary(_set_tc_program(), graph)
        pairs = frozenset(tuple(pair) for pair in result["T"])
    elif strategy == "loop":
        from ..algebra import tc_via_loop

        pairs = frozenset(tuple(pair) for pair in tc_via_loop(graph))
    else:
        raise AssertionError(f"unknown tc-engines route {strategy!r}")
    return {"checksum": _decoded_checksum(pairs)}


def _run_datalog_translation(n: int, strategy: str) -> dict[str, Any]:
    """E19 (ex ``bench_datalog.py``): the Section 3 Datalog connection —
    the same TC program evaluated by the Datalog join planner
    (``datalog``) and, translated through ``program_to_query``, by the
    calculus evaluator (``calc``).  Checksums over the canonical row
    sets make the agreement check the scripts' translation-correctness
    assertion; the seconds gate keeps the planner's advantage."""
    from ..workloads import set_random_graph

    graph = set_random_graph(3, n, p=0.3, seed=77)
    program = _set_tc_program()
    if strategy == "datalog":
        from ..datalog import evaluate_inflationary

        rows = evaluate_inflationary(program, graph)["T"]
        canonical = frozenset(tuple(row) for row in rows)
    elif strategy == "calc":
        from ..core.evaluation import evaluate
        from ..datalog import program_to_query

        query = program_to_query(program, graph.schema)
        answer = evaluate(query, graph)
        canonical = frozenset(tuple(row.items) for row in answer)
    else:
        raise AssertionError(
            f"unknown datalog-translation route {strategy!r}")
    return {"checksum": _decoded_checksum(canonical)}


def _run_dense_fixpoint(n: int, strategy: str) -> dict[str, Any]:
    """Theorem 4.1(2) (ex ``bench_dense_fixpoint.py``): TC over the
    dense all-subsets graph, where the instance fills its node domain.
    The closure cardinality is exactly ``3**n - 2**n`` (strict-superset
    pairs) — asserted, and used as the checksum.  The run records
    ``dense.instance_size`` and the normalised
    ``dense.checks_per_sq_size_x1000`` = ``1000 * eval.formula_checks /
    ||I||**2``, whose declared degree-0 bound *is* the theorem's claim:
    evaluation cost polynomial in the instance, not the (here equal)
    domain."""
    from ..core.evaluation import evaluate
    from ..obs import get_tracer
    from ..objects import instance_size
    from ..workloads import dense_subset_graph, transitive_closure_query

    inst = dense_subset_graph(n)
    answer = evaluate(transitive_closure_query(), inst, strategy=strategy)
    expected = 3 ** n - 2 ** n
    if len(answer) != expected:
        raise AssertionError(
            f"dense subset graph n={n}: closure has {len(answer)} rows, "
            f"expected {expected}")
    size = instance_size(inst)
    tracer = get_tracer()
    tracer.count("dense.instance_size", size)
    if tracer.enabled:
        checks = tracer.counters.get("eval.formula_checks", 0)
        tracer.count("dense.checks_per_sq_size_x1000",
                     1000 * checks // (size * size))
    return {"checksum": expected}


def _run_nest_routes(n: int, strategy: str) -> dict[str, Any]:
    """Examples 5.1/5.3 (ex ``bench_nest.py``): three routes to the nest
    operation on the key × value grid — the rule-9 calculus form
    (``rule9``), the IFP-term form (``ifp-term``), both RR-evaluated,
    and the algebra's Nest operator (``algebra``, the [AB86] baseline).
    Every route must produce one row per key; checksums over the
    canonical rows make the agreement check the scripts' all-three-agree
    assertion."""
    from ..obs import get_tracer
    from ..workloads import keyed_pairs_instance, nest_query, nest_query_ifp

    inst = keyed_pairs_instance(n, values_per_key=4)
    if strategy == "rule9":
        from ..core.safety import evaluate_range_restricted

        answer = evaluate_range_restricted(nest_query(), inst).answer
        canonical = frozenset(tuple(row.items) for row in answer)
    elif strategy == "ifp-term":
        from ..core.safety import evaluate_range_restricted

        answer = evaluate_range_restricted(nest_query_ifp(), inst).answer
        canonical = frozenset(tuple(row.items) for row in answer)
    elif strategy == "algebra":
        from ..algebra import BaseRel, Nest

        rows = Nest(BaseRel("P"), [1], [2]).evaluate(inst)
        canonical = frozenset(tuple(row) for row in rows)
    else:
        raise AssertionError(f"unknown nest route {strategy!r}")
    if len(canonical) != n:
        raise AssertionError(
            f"nest over {n} keys produced {len(canonical)} rows")
    get_tracer().count("nest.answer_rows", len(canonical))
    return {"checksum": _decoded_checksum(canonical)}


def _run_intern_kernel(n: int, strategy: str) -> dict[str, Any]:
    """PR 8's tentpole gate: Datalog TC on chains through three engines —
    the naive object engine (the differential oracle), the object
    semi-naive engine, and the interned columnar kernel (``interned`` =
    semi-naive over dense ids with hash-index joins).  All three derive
    the same closure; the interned run additionally reports
    ``eval.index_builds``/``eval.index_probes`` (exactly one probe per
    derived closure row on a chain) and ``space.interned_values`` (the
    store holds the n atoms and nothing else)."""
    from ..datalog import evaluate_inflationary
    from ..workloads import chain_graph

    result = evaluate_inflationary(
        _tc_program(), chain_graph(n),
        strategy="seminaive" if strategy == "interned" else strategy,
        intern=strategy == "interned")
    rows = len(result["T"])
    if rows != _chain_closure_rows(n):
        raise AssertionError(
            f"{strategy} TC on chain({n}) produced {rows} rows, "
            f"expected {_chain_closure_rows(n)}")
    return {"checksum": _decoded_checksum(result["T"])}


def _run_algebra_fixpoint(n: int, strategy: str) -> dict[str, Any]:
    """E20 (ex ``bench_algebra_vs_fixpoint.py``): the conclusion's first
    bullet — fixpoints are tractable recursion, the powerset operator is
    not.  TC on a chain via powerset enumeration (``powerset``),
    range-restricted CALC+IFP (``rr``), and the native loop (``loop``).
    ``algebra.powerset_subsets`` counts the subsets the powerset route
    examines (superpolynomial in the non-edge count); at the smallest
    size the run also asserts the script's wall: chain(6) under a
    ``10**6``-subset cap must raise ``AlgebraError`` while the fixpoint
    route sails through."""
    from ..algebra import AlgebraError, tc_via_loop, tc_via_powerset
    from ..workloads import chain_graph, transitive_closure_query

    inst = chain_graph(n)
    if strategy == "powerset":
        pairs = tc_via_powerset(inst)
        if n == 3:  # the powerset wall, once per sweep
            try:
                tc_via_powerset(chain_graph(6), max_subsets=10 ** 6)
            except AlgebraError:
                pass
            else:
                raise AssertionError(
                    "powerset TC on chain(6) should exceed a 10**6 cap")
    elif strategy == "rr":
        from ..core.safety import evaluate_range_restricted

        report = evaluate_range_restricted(
            transitive_closure_query("U"), inst)
        pairs = frozenset((row.component(1), row.component(2))
                          for row in report.answer)
    elif strategy == "loop":
        pairs = tc_via_loop(inst)
    else:
        raise AssertionError(f"unknown algebra-fixpoint route {strategy!r}")
    if len(pairs) != _chain_closure_rows(n):
        raise AssertionError(
            f"{strategy} TC on chain({n}) produced {len(pairs)} pairs")
    return {"checksum": _decoded_checksum(pairs)}


def _run_code_relations(n: int, strategy: str) -> dict[str, Any]:
    """Lemma 4.4 (ex ``bench_code_relations.py``): CODE_T dictionary
    construction over ``n`` atoms — the successor-rule CODE_U table
    (``u-table``) and the CODE_{U} set-type relation (``set-type``).
    Every word the dictionary spells must equal the standard encoding,
    and ``code.rows`` must equal the total encoded symbol count
    (``domain_encoding_size``): polynomial for U, superpolynomial for
    the set type.  The smallest size also spot-checks a nested
    ``{[U,{U}]}`` dictionary."""
    from ..machines.code_relations import code_relation, code_u_table
    from ..objects import (
        AtomOrder,
        encode_value,
        materialize_domain,
        parse_type,
    )
    from ..objects.encoding import domain_encoding_size
    from ..obs import get_tracer

    order = AtomOrder.from_labels("abcdefghijklmnop"[:n])
    if strategy == "u-table":
        rows = code_u_table(order)
        expected = sum(len(format(i, "b")) for i in range(n))
        if len(rows) != expected:
            raise AssertionError(
                f"CODE_U over {n} atoms has {len(rows)} rows, "
                f"expected {expected}")
        count = len(rows)
    elif strategy == "set-type":
        typ = parse_type("{U}")
        relation = code_relation(typ, order)
        for value in materialize_domain(typ, order.atoms):
            if relation.word_of(value) != encode_value(value, order):
                raise AssertionError(
                    f"CODE_{{U}} misspells {value!r} over {n} atoms")
        if len(relation.rows) != domain_encoding_size(typ, n):
            raise AssertionError(
                f"CODE_{{U}} row count {len(relation.rows)} != total "
                f"encoded symbols {domain_encoding_size(typ, n)}")
        if n == 2:  # nested dictionary spot-check, once per sweep
            nested_type = parse_type("{[U,{U}]}")
            nested = code_relation(nested_type, order)
            domain = materialize_domain(nested_type, order.atoms)
            if nested.word_of(domain[-1]) != encode_value(domain[-1], order):
                raise AssertionError("CODE_{[U,{U}]} misspells a word")
        count = len(relation.rows)
    else:
        raise AssertionError(f"unknown code-relations route {strategy!r}")
    get_tracer().count("code.rows", count)
    return {"checksum": count}


#: Types of the Proposition 2.1 ladder (ex ``bench_domain_encoding.py``).
_ENCODING_TYPES = ("{U}", "[U,{U}]", "{[U,U]}", "{{U}}")


def _run_domain_encoding(n: int, strategy: str) -> dict[str, Any]:
    """Proposition 2.1 (ex ``bench_domain_encoding.py``): the encoded
    domain size ``||dom(T,D)||`` stays within ``|dom| * P(log|dom|)``
    with ``P(x) = 8x^3 + 8`` — asserted per type — computed either by
    the analytic recurrence (``analytic``) or by materialising every
    value and summing its encoding length (``bruteforce``).  Both
    strategies apply the same cardinality cap, so their per-point totals
    (the checksum) must agree exactly; the gate pins the recurrence's
    advantage over enumeration."""
    import math

    from ..objects.domains import domain_cardinality, materialize_domain
    from ..objects.encoding import domain_encoding_size, value_size
    from ..objects.types import parse_type
    from ..objects.values import Atom
    from ..obs import get_tracer

    domain_encoding_size.cache_clear()  # the timing race must be honest
    atoms = [Atom(f"x{index}") for index in range(n)]
    total = 0
    included = 0
    for text in _ENCODING_TYPES:
        typ = parse_type(text)
        cardinality = domain_cardinality(typ, n)
        if cardinality > 2 ** 16:  # same cap both strategies: agreement
            continue
        included += 1
        if strategy == "analytic":
            size = domain_encoding_size(typ, n)
        elif strategy == "bruteforce":
            size = sum(value_size(value, n)
                       for value in materialize_domain(typ, atoms))
        else:
            raise AssertionError(f"unknown encoding route {strategy!r}")
        log = max(1.0, math.log2(cardinality))
        if size > cardinality * (8 * log ** 3 + 8):
            raise AssertionError(
                f"||dom({text}, {n})|| = {size} exceeds the "
                f"Proposition 2.1 bound")
        total += size
    tracer = get_tracer()
    tracer.count("encoding.types_included", included)
    tracer.gauge("encoding.total_symbols", total)
    return {"checksum": total}


def _rr_pairs_instance(n: int):
    """The double-ring P relation of ex ``bench_range_restricted_eval``:
    each atom points one and two steps ahead (mod n)."""
    from ..objects import database_schema, instance
    from ..workloads import atoms_universe

    atoms = atoms_universe(n)
    rows = [(atoms[index], atoms[(index + 1) % n]) for index in range(n)]
    rows += [(atoms[index], atoms[(index + 2) % n]) for index in range(n)]
    return instance(database_schema(P=["U", "U"]), P=rows)


def _run_rr_vs_active(n: int, strategy: str) -> dict[str, Any]:
    """Theorem 5.1's headline race (ex ``bench_range_restricted_eval``):
    Example 5.1's nest query under active-domain semantics (the set
    variable sweeps all ``2**n`` subsets) vs derived-range semantics
    (ranges stay linear in the instance).  Checksums over the answers
    make the agreement check the theorem's RR ≡ active equivalence."""
    if strategy == "active":
        from ..core.evaluation import evaluate
        from ..workloads import nest_query

        answer = evaluate(nest_query(), _rr_pairs_instance(n))
    elif strategy == "rr":
        from ..core.safety import evaluate_range_restricted
        from ..workloads import nest_query

        answer = evaluate_range_restricted(
            nest_query(), _rr_pairs_instance(n)).answer
    else:
        raise AssertionError(f"unknown rr-vs-active route {strategy!r}")
    if len(answer) != n:
        raise AssertionError(
            f"nest over {n} atoms produced {len(answer)} rows")
    return {"checksum": _decoded_checksum(answer)}


def _run_sorted_density(n: int, strategy: str) -> dict[str, Any]:
    """Remark 4.1 (ex ``bench_sorted_density.py``): the schedule
    database is dense w.r.t. day-sets (at most ``2**7`` exist) and
    sparse w.r.t. employee-sets (``2**n`` possible) — the ``analysis``
    strategy asserts both verdicts; ``day-quantifier`` actually sweeps a
    universal day-set quantifier over the whole sorted domain, whose
    iteration count stays linear in the employees — the 'no prohibitive
    cost' claim, measured."""
    from ..analysis import (
        SortAssignment,
        is_dense_for_sorted_type,
        is_sparse_for_sorted_type,
        log2_sorted_domain_cardinality,
        parse_sorted_type,
        sorted_subobjects,
    )
    from ..obs import get_tracer
    from ..workloads import schedule_instance

    inst = schedule_instance(n, n_days=7, n_teams=3)
    sorts = SortAssignment.by_prefix({"e": "emp", "d": "day"}, inst.atoms())
    day_sets = parse_sorted_type("{U@day}")
    emp_sets = parse_sorted_type("{U@emp}")
    tracer = get_tracer()
    if strategy == "analysis":
        if not is_dense_for_sorted_type(inst, day_sets, sorts,
                                        degree=1, coefficient=2):
            raise AssertionError(f"day-sets not dense at {n} employees")
        if not is_sparse_for_sorted_type(inst, emp_sets, sorts,
                                         degree=1, coefficient=2):
            raise AssertionError(f"emp-sets not sparse at {n} employees")
        used = len(sorted_subobjects(inst, day_sets, sorts))
        tracer.gauge("density.day_used", used)
        tracer.gauge("density.emp_log_dom", int(
            log2_sorted_domain_cardinality(emp_sets, sorts.counts())))
        return {"checksum": used}
    if strategy != "day-quantifier":
        raise AssertionError(f"unknown sorted-density route {strategy!r}")
    from ..core.builder import V, exists, forall, query, rel, subset
    from ..core.evaluation import Evaluator
    from ..objects import materialize_domain, parse_type

    s = V("s", "{U}")
    e = V("e", "U")
    # Tautological universal day-set quantifier: cannot short-circuit,
    # sweeps the whole sorted domain per head candidate.
    sweep = query(
        [("e", "U")],
        exists(s, rel("Schedule")(e, s))
        & forall(V("s2", "{U}"), subset(V("s2", "{U}"), V("s2", "{U}"))),
    )
    day_atoms = sorted(sorts.atoms_of("day"), key=lambda a: str(a.label))
    evaluator = Evaluator(
        inst.schema,
        variable_ranges={
            "s2": materialize_domain(parse_type("{U}"), day_atoms),
            "s": [row.component(2) for row in inst.relation("Schedule")],
            "e": sorted(sorts.atoms_of("emp"), key=lambda a: str(a.label)),
        },
        max_product=10 ** 8,
    )
    answer = evaluator.evaluate(sweep, inst)
    if len(answer) != n:
        raise AssertionError(
            f"day-set sweep over {n} employees returned {len(answer)} rows")
    return {"checksum": len(answer)}


def _run_tm_simulation(n: int, strategy: str) -> dict[str, Any]:
    """Theorem 4.1's constructive proof (ex ``bench_tm_simulation.py``):
    the copy machine on an ``n``-edge chain run natively (``native``) or
    through the inflationary ``R_M`` construction (``relational``).
    Checksum = CRC of the final tape, so agreement is simulation
    correctness; ``sim.rows_per_step`` pins the timestamping price —
    ``R_M`` accumulates one configuration per step, ~tape-length rows
    each."""
    import zlib

    from ..machines import copy_machine, simulate_query
    from ..objects import database_schema, encode_instance, instance
    from ..obs import get_tracer
    from ..workloads import atoms_universe

    atoms = atoms_universe(n + 1)
    inst = instance(database_schema(G=["U", "U"]),
                    G=list(zip(atoms, atoms[1:])))
    machine = copy_machine(_TAPE_ALPHABET)
    tracer = get_tracer()
    if strategy == "native":
        native = machine.run(encode_instance(inst), 500_000)
        tracer.gauge("sim.steps", native.steps)
        tape = native.output
    elif strategy == "relational":
        result = simulate_query(machine, inst, max_steps=500_000)
        native = machine.run(encode_instance(inst), 500_000)
        if result.rm_cardinality < native.steps:
            raise AssertionError(
                f"R_M has {result.rm_cardinality} rows for a "
                f"{native.steps}-step run: missing timestamps")
        tracer.gauge("sim.steps", native.steps)
        tracer.gauge("sim.rm_rows", result.rm_cardinality)
        tracer.gauge("sim.rows_per_step",
                     result.rm_cardinality // native.steps)
        tape = result.final_tape
    else:
        raise AssertionError(f"unknown tm-simulation route {strategy!r}")
    return {"checksum": zlib.crc32(tape.encode("utf-8"))}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

def _wide_analysis_program(n: int):
    """n independent nonrecursive predicates feeding one collector Q."""
    from ..datalog import Literal, Program, Rule

    rules = []
    idb_types: dict[str, list[str]] = {"Q": ["U", "U"]}
    for i in range(1, n + 1):
        name = f"P{i}"
        idb_types[name] = ["U", "U"]
        rules.append(Rule(Literal(name, ["x", "y"]),
                          [Literal("G", ["x", "y"])]))
        rules.append(Rule(Literal("Q", ["x", "y"]),
                          [Literal(name, ["x", "y"])]))
    return Program(rules, idb_types)


def _deep_analysis_program(n: int):
    """One n-predicate linearly recursive SCC (a dependency cycle
    P1 <- P2 <- ... <- Pn <- P1)."""
    from ..datalog import Literal, Program, Rule

    idb_types = {f"P{i}": ["U", "U"] for i in range(1, n + 1)}
    rules = [
        Rule(Literal("P1", ["x", "y"]), [Literal("G", ["x", "y"])]),
        Rule(Literal("P1", ["x", "y"]), [Literal(f"P{n}", ["x", "y"])]),
    ]
    for i in range(2, n + 1):
        rules.append(Rule(
            Literal(f"P{i}", ["x", "y"]),
            [Literal(f"P{i - 1}", ["x", "z"]), Literal("G", ["z", "y"])],
        ))
    return Program(rules, idb_types)


def _run_lint_program(n: int, strategy: str) -> dict[str, Any]:
    """Program-analysis cost on generated programs: ``wide`` fans n
    nonrecursive predicates into a collector, ``deep`` closes one
    n-predicate linearly recursive SCC.  Both have Theta(n) edges, so
    ``lint.program.edges`` is the linearity pin; the in-run asserts are
    the routing pass's theorem-shaped claims."""
    from ..lint import analyze_program
    from ..objects import database_schema

    schema = database_schema(G=["U", "U"])
    if strategy == "wide":
        program = _wide_analysis_program(n)
        analysis = analyze_program(program, schema, query="Q")
        if any(v.recursion != "none" for v in analysis.routing):
            raise AssertionError("wide program misclassified as recursive")
    else:
        program = _deep_analysis_program(n)
        analysis = analyze_program(program, schema, query=f"P{n}")
        big = [v for v in analysis.routing if len(v.scc) == n]
        if len(big) != 1 or big[0].recursion != "linear":
            raise AssertionError(
                f"deep program should form one linear {n}-SCC: "
                f"{analysis.routing}")
    if not analysis.stratified or analysis.dead_rules:
        raise AssertionError("generated programs are stratified and live")
    return {"checksum": len(analysis.edges) * 1000 + len(analysis.sccs)}


def _run_domain_cardinality(n: int, strategy: str) -> dict[str, Any]:
    """Section 2's hyper(i,k) table (ex ``bench_domain_cardinality.py``):
    exact big-int domain cardinalities, checked against the
    ``|dom(T, D)| <= hyper(i, k)(n)`` bound over every normalised
    <i,k>-type, with the definition's spot values pinned."""
    from ..objects.domains import (
        all_ik_types,
        dom_ik_cardinality,
        domain_cardinality,
        hyper,
    )
    from ..obs import get_tracer

    if hyper(0, 2, 3) != 9 or hyper(1, 2, 3) != 2 ** 18 \
            or hyper(2, 1, 2) != 2 ** 4:
        raise AssertionError("hyper(i,k) spot values moved")
    for i, k in ((0, 2), (1, 1), (1, 2)):
        bound = hyper(i, k, n)
        for typ in all_ik_types(i, k):
            cardinality = domain_cardinality(typ, n)
            if cardinality > bound:
                raise AssertionError(
                    f"|dom({typ!r}, {n})| = {cardinality} exceeds "
                    f"hyper({i},{k})({n}) = {bound}")
    value = dom_ik_cardinality(1, 2, n)
    tracer = get_tracer()
    tracer.count("domain.dom12_cardinality", value)
    tracer.count("domain.dom12_bits", value.bit_length())
    return {"checksum": value.bit_length()}


def _run_induced_order(n: int, strategy: str) -> dict[str, Any]:
    """Lemma 4.3 (ex ``bench_induced_order.py``): the induced order on
    ``dom({U}, n atoms)`` via four routes — native comparator, sort
    keys, arithmetic ranks, and the formula-defined ``<`` of the lemma.
    Every route must count the same ``C(|D|, 2)`` less-than pairs; the
    formula route exists to witness definability and pays for it
    (pinned by the speedup gate)."""
    import itertools

    from ..objects import (
        AtomOrder,
        Instance,
        compare,
        database_schema,
        materialize_domain,
        parse_type,
        rank,
        sorted_values,
        unrank,
    )
    from ..obs import get_tracer

    typ = parse_type("{U}")
    labels = "abcdefghijklmnop"[:n]
    order = AtomOrder.from_labels(labels)
    domain = materialize_domain(typ, order.atoms)
    expected = len(domain) * (len(domain) - 1) // 2

    if strategy == "comparator":
        count = sum(
            1 for left, right in itertools.product(domain, repeat=2)
            if compare(left, right, order) < 0)
    elif strategy == "sortkeys":
        ordered = sorted_values(domain, order)
        for left, right in zip(ordered, ordered[1:]):
            if compare(left, right, order) >= 0:
                raise AssertionError("sort keys disagree with comparator")
        count = len(ordered) * (len(ordered) - 1) // 2
    elif strategy == "ranks":
        ranks = {value: rank(value, typ, order) for value in domain}
        for value, r in ranks.items():
            if unrank(r, typ, order) != value:
                raise AssertionError("rank/unrank roundtrip broken")
        count = sum(
            1 for left, right in itertools.product(domain, repeat=2)
            if ranks[left] < ranks[right])
    else:  # formula
        from ..core.evaluation import Evaluator
        from ..core.order_formulas import (
            less_than_formula,
            with_order_relation,
        )
        from ..core.syntax import Var

        base = database_schema(Seed=["U"])
        inst = with_order_relation(
            Instance(base, {"Seed": [(a,) for a in order.atoms]}), order)
        phi = less_than_formula(typ)(Var("x", typ), Var("y", typ))
        evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
        count = sum(
            1 for left, right in itertools.product(domain, repeat=2)
            if evaluator.evaluate_formula(
                phi, inst, {"x": left, "y": right},
                free_variable_types={"x": typ, "y": typ}))
    if count != expected:
        raise AssertionError(
            f"{strategy} counted {count} less-than pairs on "
            f"|dom| = {len(domain)}, expected {expected}")
    get_tracer().count("order.lt_pairs", count)
    return {"checksum": count}


def _sc_lane(strategy: str) -> tuple[str, bool]:
    """Map a bench strategy label onto (engine strategy, intern flag)."""
    if strategy == "interned":
        return "seminaive", True
    return strategy, False


def _run_supply_chain_build(n: int, strategy: str) -> dict[str, Any]:
    """Generate the supply-chain instance at scale ``n`` and hold it to
    the documented row formulas (ISSUE 10 / ROADMAP item 4).  The
    checksum is the ledger's order-independent instance checksum, so a
    generator drift breaks the baseline loudly."""
    from ..obs import get_tracer, instance_checksum
    from ..workloads import supply_chain_instance, supply_chain_rows

    inst = supply_chain_instance(n)
    formulas = supply_chain_rows(n)
    total = 0
    for name in inst.schema.relation_names:
        rows = len(inst.relation(name))
        if rows != formulas[name]:
            raise AssertionError(
                f"supply chain scale {n}: {name} has {rows} rows, "
                f"formula says {formulas[name]}")
        total += rows
    get_tracer().gauge("sc.rows", total)
    return {"checksum": instance_checksum(inst)}


def _run_supply_chain_bom(n: int, strategy: str) -> dict[str, Any]:
    """The headline YELLOW fixpoint — full BOM ancestor closure — raced
    across the three engine lanes.  The ternary-tree blocks make the
    closure exactly ``102 * n`` rows at a pinned stage count, so both
    are asserted per point, not just regress-gated."""
    from ..workloads import (answer_question, bom_closure_rows,
                             question_by_name, supply_chain_instance)

    engine, intern = _sc_lane(strategy)
    answer = answer_question(question_by_name("bom-closure"),
                             supply_chain_instance(n),
                             strategy=engine, intern=intern)
    if len(answer.rows) != bom_closure_rows(n):
        raise AssertionError(
            f"{strategy} BOM closure at scale {n} produced "
            f"{len(answer.rows)} rows, expected {bom_closure_rows(n)}")
    return {"checksum": answer.checksum}


def _run_supply_chain_questions(n: int, strategy: str) -> dict[str, Any]:
    """The whole golden inventory (~30 GREEN/YELLOW/RED questions) under
    one lane; the checksum rolls up every per-question answer checksum,
    so the three lanes agreeing here means they agree on every answer."""
    from ..obs import get_tracer, rows_checksum
    from ..workloads import QUESTIONS, answer_question, supply_chain_instance

    engine, intern = _sc_lane(strategy)
    inst = supply_chain_instance(n)
    tracer = get_tracer()
    rollup = []
    total_rows = 0
    for question in QUESTIONS:
        answer = answer_question(question, inst,
                                 strategy=engine, intern=intern)
        rollup.append((question.name, answer.checksum))
        total_rows += len(answer.rows)
    tracer.count("sc.questions", len(rollup))
    tracer.count("sc.question_rows", total_rows)
    return {"checksum": rows_checksum(rollup)}


def _run_supply_chain_scale(n: int, strategy: str) -> dict[str, Any]:
    """The acceptance point: 100K+ rows generated and the headline BOM
    fixpoint answered inside the bench timeout (interned lane only —
    the object engines are measured at smaller scales by
    ``supply-chain-bom``)."""
    from ..obs import get_tracer

    result = _run_supply_chain_build(n, strategy)
    bom = _run_supply_chain_bom(n, "interned")
    get_tracer().gauge("sc.bom_checksum", bom["checksum"])
    return result


SUITES: dict[str, Suite] = {}


def _register(suite: Suite) -> Suite:
    SUITES[suite.name] = suite
    return suite


_register(Suite(
    name="seminaive-smoke",
    title="Datalog TC on chains: naive vs semi-naive (the PR 3 gate)",
    sizes=(8, 16, 32, 64),
    strategies=("naive", "seminaive"),
    run=_run_datalog_tc,
    expectations=(
        Expectation(metric="datalog.rows_derived", kind="poly",
                    strategy="seminaive", max_degree=2.5,
                    note="semi-naive derives each closure row once-ish"),
    ),
    gates=(SpeedupGate(slow="naive", fast="seminaive", min_ratio=2.0),),
    tolerances=(
        Tolerance(metric="datalog.rows_derived", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
))

_register(Suite(
    name="tc-seminaive-dense",
    title="Dense PTIME curve: semi-naive Datalog TC, larger chains",
    sizes=(16, 32, 64, 128),
    strategies=("seminaive",),
    run=_run_datalog_tc,
    expectations=(
        Expectation(metric="seconds", kind="poly", strategy="seminaive",
                    max_degree=3.2,
                    note="Theorem 4.1 PTIME side: cubic-or-better"),
        Expectation(metric="datalog.rows_derived", kind="poly",
                    strategy="seminaive", max_degree=2.5),
    ),
    agree=False,  # single strategy
))

_register(Suite(
    name="hyper-domain",
    title="hyper(i,k) domain materialisation: the superpolynomial wall",
    sizes=(6, 8, 10, 12, 14),
    strategies=("seminaive",),
    run=_run_hyper_domain,
    expectations=(
        Expectation(metric="space.domain_values", kind="superpoly",
                    strategy="seminaive",
                    note="|dom({U}, D)| = 2**n — Section 2's bound"),
        Expectation(metric="space.domain_nodes", kind="superpoly",
                    strategy="seminaive"),
    ),
    agree=False,
))

_register(Suite(
    name="rr-space-chain",
    title="Range-restricted TC: space within the Theorem 5.1 bound",
    sizes=(8, 12, 16, 24),
    strategies=("seminaive",),
    run=_run_rr_tc,
    expectations=(
        Expectation(metric="space.peak_range", kind="bound",
                    strategy="seminaive", bound_degree=1,
                    bound_coefficient=2.0,
                    note="ranges stay linear in the chain length"),
        Expectation(metric="space.peak_fixpoint_rows", kind="bound",
                    strategy="seminaive", bound_degree=2,
                    bound_coefficient=1.0,
                    note="working set bounded by |TC| <= n^2"),
    ),
    agree=False,
))

_register(Suite(
    name="calc-ifp-dense",
    title="CALC+IFP TC on chains: naive vs semi-naive evaluator",
    sizes=(6, 8, 10, 12),
    strategies=("naive", "seminaive"),
    run=_run_calc_ifp_tc,
    tolerances=(
        Tolerance(metric="ifp.stages", max_ratio=0.0),
        Tolerance(metric="eval.delta_rows", max_ratio=0.0),
    ),
))

_register(Suite(
    name="algebra-loop",
    title="Native TC loop: frontier semi-naive vs full recomposition",
    sizes=(32, 64, 128),
    strategies=("naive", "seminaive"),
    run=_run_loop_tc,
    expectations=(
        Expectation(metric="space.peak_loop_rows", kind="poly",
                    strategy="seminaive", max_degree=2.2,
                    note="closure cardinality is Theta(n^2) on a chain"),
    ),
))


_register(Suite(
    name="quantifier-tower",
    title="Theorem 4.2: one set level above density costs one exponential",
    sizes=(4, 6, 8, 10, 12),
    strategies=("seminaive",),
    run=_run_quantifier_tower,
    expectations=(
        Expectation(metric="eval.quantifier_iterations", kind="superpoly",
                    strategy="seminaive",
                    note="the {U} quantifier sweeps all 2**n subsets"),
        Expectation(metric="eval.quantifier_iterations", kind="bound",
                    strategy="seminaive", bound_degree=1,
                    bound_coefficient=2.0, bound_base=2.0,
                    note="...but only one exponential: <= 2 * n * 2**n"),
    ),
    agree=False,
))

_register(Suite(
    name="sparse-collapse",
    title="Proposition 5.2: tuple-encoding collapses the sparse "
          "quantification space",
    sizes=(5, 6, 7, 8),
    strategies=("direct", "encoded"),
    run=_run_sparse_collapse,
    expectations=(
        Expectation(metric="collapse.domain_values", kind="superpoly",
                    strategy="direct",
                    note="nested route quantifies over 2**n sets"),
        Expectation(metric="collapse.domain_values", kind="bound",
                    strategy="encoded", bound_degree=1,
                    bound_coefficient=1.0,
                    note="encoded route quantifies over n atom tuples"),
    ),
    tolerances=(Tolerance(metric="collapse.domain_values", max_ratio=0.0),),
    agree=True,  # decoded answers must match: RR == RR+encoding
))

_register(Suite(
    name="density-measures",
    title="Lemma 4.1: cardinality- and size-based measures move together",
    sizes=(3, 4, 5, 6, 7),
    strategies=("seminaive",),
    run=_run_density_measures,
    expectations=(
        Expectation(metric="lemma41.dense_dom_values", kind="superpoly",
                    strategy="seminaive",
                    note="|dom(1,1)| of the all-subsets family is ~2**n"),
        Expectation(metric="lemma41.dense_dom_per_1000_rows", kind="bound",
                    strategy="seminaive", bound_degree=0,
                    bound_coefficient=4000.0,
                    note="...yet |dom| <= 4|I|: dense in both measures"),
        Expectation(metric="lemma41.sparse_rows", kind="bound",
                    strategy="seminaive", bound_degree=1,
                    bound_coefficient=1.0,
                    note="sparse family stays |I| = n - 1"),
    ),
    tolerances=(
        Tolerance(metric="lemma41.dense_dom_values", max_ratio=0.0),
        Tolerance(metric="lemma41.sparse_rows", max_ratio=0.0),
    ),
    agree=False,
))

_register(Suite(
    name="pfp-vs-ifp",
    title="Theorem 4.1(3): PFP simulation needs no timestamps",
    sizes=(1, 2),
    strategies=("ifp", "pfp"),
    run=_run_simulation,
    gates=(
        SpeedupGate(slow="ifp", fast="pfp",
                    metric="space.peak_fixpoint_rows", min_ratio=10.0),
    ),
    tolerances=(
        Tolerance(metric="space.peak_fixpoint_rows", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
    agree=True,  # both simulations must leave the same final tape
))

_register(Suite(
    name="flat-kernel",
    title="Theorem 6.1: flat-to-flat kernel query, one exponential "
          "and no more",
    sizes=(3, 5, 7, 9),
    strategies=("seminaive",),
    run=_run_flat_kernel,
    expectations=(
        Expectation(metric="eval.quantifier_iterations", kind="superpoly",
                    strategy="seminaive",
                    note="the height-1 set variable doubles cost per node"),
        Expectation(metric="eval.quantifier_iterations", kind="bound",
                    strategy="seminaive", bound_degree=2,
                    bound_coefficient=2.0, bound_base=2.0,
                    note="the P(hyper(1,k)) envelope: <= 2 * n**2 * 2**n"),
    ),
    tolerances=(
        Tolerance(metric="eval.quantifier_iterations", max_ratio=0.0),
    ),
    agree=False,
))


_register(Suite(
    name="tc-engines",
    title="Example 3.1: one TC query, four engines (naive/RR/Datalog/loop)",
    sizes=(4, 5, 6),
    strategies=("calc", "rr", "datalog", "loop"),
    run=_run_tc_engines,
    expectations=(
        Expectation(metric="space.peak_fixpoint_rows", kind="bound",
                    strategy="rr", bound_degree=2, bound_coefficient=1.0,
                    note="working set bounded by |TC| <= n^2 nodes"),
    ),
    gates=(
        SpeedupGate(slow="calc", fast="loop", min_ratio=2.0),
    ),
    tolerances=(Tolerance(metric="ifp.stages", max_ratio=0.0),),
    agree=True,  # all four engines must return the same closure
))

_register(Suite(
    name="datalog-translation",
    title="Section 3: inf-Datalog vs its CALC+IFP translation",
    sizes=(4, 5, 6),
    strategies=("datalog", "calc"),
    run=_run_datalog_translation,
    expectations=(
        Expectation(metric="datalog.rows_derived", kind="bound",
                    strategy="datalog", bound_degree=2,
                    bound_coefficient=3.0,
                    note="derivations stay quadratic in the node count"),
    ),
    gates=(
        SpeedupGate(slow="calc", fast="datalog", min_ratio=2.0),
    ),
    tolerances=(
        Tolerance(metric="datalog.rows_derived", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
    agree=True,  # translation correctness: planner == calculus
))

_register(Suite(
    name="dense-fixpoint",
    title="Theorem 4.1(2): naive fixpoint cost is polynomial in a "
          "dense instance",
    sizes=(2, 3, 4),
    strategies=("naive", "seminaive"),
    run=_run_dense_fixpoint,
    expectations=(
        Expectation(metric="dense.checks_per_sq_size_x1000", kind="bound",
                    strategy="naive", bound_degree=0,
                    bound_coefficient=400.0,
                    note="formula checks <= 0.4 * ||I||^2: polynomial "
                         "in the instance even for the naive evaluator"),
    ),
    tolerances=(
        Tolerance(metric="dense.instance_size", max_ratio=0.0),
        Tolerance(metric="eval.formula_checks", max_ratio=0.0),
    ),
    agree=True,  # naive and semi-naive closures coincide
))

_register(Suite(
    name="nest-routes",
    title="Examples 5.1/5.3: three routes to nest (rule 9 / IFP term / "
          "algebra)",
    sizes=(2, 4, 6),
    strategies=("rule9", "ifp-term", "algebra"),
    run=_run_nest_routes,
    expectations=(
        Expectation(metric="nest.answer_rows", kind="bound",
                    strategy="rule9", bound_degree=1,
                    bound_coefficient=1.0,
                    note="nest yields exactly one row per key"),
    ),
    tolerances=(Tolerance(metric="nest.answer_rows", max_ratio=0.0),),
    agree=True,  # all three routes must produce the same nested rows
))


_register(Suite(
    name="lint-program",
    title="Program analysis cost: wide fan-in vs one deep recursive SCC",
    sizes=(8, 16, 32, 64),
    strategies=("wide", "deep"),
    run=_run_lint_program,
    expectations=(
        Expectation(metric="lint.program.edges", kind="bound",
                    strategy="wide", bound_degree=1, bound_coefficient=3.0,
                    note="the dependency graph stays linear in the rules"),
        Expectation(metric="lint.program.edges", kind="bound",
                    strategy="deep", bound_degree=1, bound_coefficient=3.0),
    ),
    tolerances=(
        Tolerance(metric="lint.program.edges", max_ratio=0.0),
        Tolerance(metric="lint.program.sccs", max_ratio=0.0),
        Tolerance(metric="lint.program.adornments", max_ratio=0.0),
    ),
    agree=False,  # wide and deep are different programs by design
))

_register(Suite(
    name="domain-cardinality",
    title="Section 2: |dom(T,D)| <= hyper(i,k)(n), exact big-int table",
    sizes=(2, 3, 4, 5, 6),
    strategies=("exact",),
    run=_run_domain_cardinality,
    expectations=(
        Expectation(metric="domain.dom12_cardinality", kind="superpoly",
                    strategy="exact",
                    note="|dom(1,2,n)| is exponential in n**2"),
        Expectation(metric="domain.dom12_bits", kind="poly",
                    strategy="exact", max_degree=2.5,
                    note="...so its bit length is ~quadratic: exactly "
                         "one exponential level (Section 2)"),
    ),
    tolerances=(
        Tolerance(metric="domain.dom12_cardinality", max_ratio=0.0),
        Tolerance(metric="domain.dom12_bits", max_ratio=0.0),
    ),
    agree=False,
))

_register(Suite(
    name="induced-order",
    title="Lemma 4.3: induced order — native routes vs the defining "
          "formula",
    sizes=(2, 3, 4),
    strategies=("comparator", "sortkeys", "ranks", "formula"),
    run=_run_induced_order,
    expectations=(
        Expectation(metric="order.lt_pairs", kind="superpoly",
                    strategy="comparator",
                    note="C(2**n, 2) comparable pairs over dom({U}, n)"),
    ),
    gates=(
        SpeedupGate(slow="formula", fast="comparator", min_ratio=5.0),
    ),
    tolerances=(Tolerance(metric="order.lt_pairs", max_ratio=0.0),),
    agree=True,  # all four routes count the same less-than pairs
))


_register(Suite(
    name="intern-kernel",
    title="PR 8: interned columnar kernel vs the object engines "
          "(Datalog TC)",
    sizes=(16, 32, 64),
    strategies=("naive", "seminaive", "interned"),
    run=_run_intern_kernel,
    expectations=(
        Expectation(metric="eval.index_probes", kind="poly",
                    strategy="interned", max_degree=2.5,
                    note="one probe per derived closure row: Theta(n^2) "
                         "on a chain, never the n^3-ish scan product"),
        Expectation(metric="space.interned_values", kind="bound",
                    strategy="interned", bound_degree=1,
                    bound_coefficient=2.0,
                    note="the store holds the n atoms and nothing else"),
    ),
    gates=(
        SpeedupGate(slow="naive", fast="interned", min_ratio=5.0),
        SpeedupGate(slow="naive", fast="seminaive", min_ratio=2.0),
    ),
    tolerances=(
        Tolerance(metric="datalog.rows_derived", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
        Tolerance(metric="eval.index_probes", max_ratio=0.0),
        Tolerance(metric="space.interned_values", max_ratio=0.0),
    ),
    agree=True,  # all three engines must return the same closure
))

_register(Suite(
    name="algebra-fixpoint",
    title="E20: TC via powerset algebra vs IFP vs native loop",
    sizes=(3, 4, 5),
    strategies=("powerset", "rr", "loop"),
    run=_run_algebra_fixpoint,
    expectations=(
        Expectation(metric="algebra.powerset_subsets", kind="superpoly",
                    strategy="powerset",
                    note="subsets examined blow up with the non-edge "
                         "count: the conclusion's intractable recursion"),
    ),
    gates=(
        SpeedupGate(slow="powerset", fast="loop", min_ratio=5.0),
    ),
    tolerances=(
        Tolerance(metric="algebra.powerset_subsets", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
    agree=True,  # all three routes must return the same closure
))

_register(Suite(
    name="code-relations",
    title="Lemma 4.4: CODE_T dictionaries spell the standard encodings",
    sizes=(2, 3, 4, 5),
    strategies=("u-table", "set-type"),
    run=_run_code_relations,
    expectations=(
        Expectation(metric="code.rows", kind="bound",
                    strategy="u-table", bound_degree=2,
                    bound_coefficient=1.0,
                    note="CODE_U: sum of binary lengths of 0..n-1 <= n^2"),
        Expectation(metric="code.rows", kind="bound",
                    strategy="set-type", bound_degree=1,
                    bound_coefficient=2.5, bound_base=2.0,
                    note="CODE_{U}: one row per positioned symbol of "
                         "all 2**n set encodings — inside the "
                         "one-exponential envelope 2.5 * n * 2**n"),
    ),
    gates=(
        SpeedupGate(slow="set-type", fast="u-table",
                    metric="code.rows", min_ratio=20.0),
    ),
    tolerances=(Tolerance(metric="code.rows", max_ratio=0.0),),
    agree=False,  # the two dictionaries encode different types
))


_register(Suite(
    name="domain-encoding",
    title="Proposition 2.1: ||dom|| <= |dom| * P(log|dom|), analytic vs "
          "brute force",
    sizes=(2, 3, 4),
    strategies=("analytic", "bruteforce"),
    run=_run_domain_encoding,
    expectations=(
        Expectation(metric="encoding.total_symbols", kind="superpoly",
                    strategy="analytic",
                    note="total encoded symbols track the set-type "
                         "domains: superpolynomial in the universe"),
    ),
    gates=(
        SpeedupGate(slow="bruteforce", fast="analytic", min_ratio=10.0),
    ),
    tolerances=(Tolerance(metric="encoding.total_symbols", max_ratio=0.0),),
    agree=True,  # recurrence == enumeration, per point
))

_register(Suite(
    name="rr-vs-active",
    title="Theorem 5.1: range-restricted vs active-domain nest query",
    sizes=(4, 6, 8, 10),
    strategies=("active", "rr"),
    run=_run_rr_vs_active,
    expectations=(
        Expectation(metric="eval.quantifier_iterations", kind="superpoly",
                    strategy="active",
                    note="the set variable sweeps all 2**n subsets"),
        Expectation(metric="space.peak_range", kind="bound",
                    strategy="rr", bound_degree=1, bound_coefficient=1.5,
                    note="derived ranges stay linear in the instance"),
        Expectation(metric="eval.quantifier_iterations", kind="bound",
                    strategy="rr", bound_degree=2, bound_coefficient=6.0,
                    note="RR iteration count stays polynomial"),
    ),
    gates=(SpeedupGate(slow="active", fast="rr", min_ratio=4.0),),
    tolerances=(
        Tolerance(metric="eval.quantifier_iterations", max_ratio=0.0),
        Tolerance(metric="space.peak_range", max_ratio=0.0),
    ),
    agree=True,  # Theorem 5.1: RR evaluation == active-domain evaluation
))

_register(Suite(
    name="sorted-density",
    title="Remark 4.1: multi-sorted density — day-sets cheap, "
          "employee-sets ruled out",
    sizes=(64, 96, 130),
    strategies=("analysis", "day-quantifier"),
    run=_run_sorted_density,
    expectations=(
        Expectation(metric="density.day_used", kind="bound",
                    strategy="analysis", bound_degree=0,
                    bound_coefficient=128.0,
                    note="at most 2**7 day-sets exist: dense sort"),
        Expectation(metric="density.emp_log_dom", kind="bound",
                    strategy="analysis", bound_degree=1,
                    bound_coefficient=1.1,
                    note="log2 |emp-set domain| = n: the 2**n wall the "
                         "analysis rules out"),
        Expectation(metric="eval.quantifier_iterations", kind="bound",
                    strategy="day-quantifier", bound_degree=1,
                    bound_coefficient=80.0,
                    note="a full day-set sweep stays linear in the "
                         "employees: no prohibitive cost"),
    ),
    tolerances=(
        Tolerance(metric="density.day_used", max_ratio=0.0),
        Tolerance(metric="eval.quantifier_iterations", max_ratio=0.0),
    ),
    agree=False,  # the strategies measure different quantities
))

_register(Suite(
    name="tm-simulation",
    title="Theorem 4.1: relational TM simulation vs the native run",
    sizes=(1, 2),
    strategies=("native", "relational"),
    run=_run_tm_simulation,
    expectations=(
        Expectation(metric="sim.rows_per_step", kind="bound",
                    strategy="relational", bound_degree=1,
                    bound_coefficient=16.0,
                    note="R_M keeps ~tape-length rows per timestamp: "
                         "the quadratic-ish price of inflationary "
                         "semantics"),
    ),
    gates=(
        SpeedupGate(slow="relational", fast="native", min_ratio=100.0),
    ),
    tolerances=(
        Tolerance(metric="sim.rm_rows", max_ratio=0.0),
        Tolerance(metric="sim.steps", max_ratio=0.0),
    ),
    agree=True,  # both routes must leave the same final tape
))


_register(Suite(
    name="supply-chain-build",
    title="ISSUE 10: supply-chain generator — formula-checked rows, "
          "checksum-pinned instances",
    sizes=(1, 4, 16, 64),
    strategies=("build",),
    run=_run_supply_chain_build,
    expectations=(
        Expectation(metric="sc.rows", kind="bound", strategy="build",
                    bound_degree=1, bound_coefficient=415.0,
                    note="total rows = 415*scale once scale>=2 "
                         "(413 at scale 1): linear by construction"),
        Expectation(metric="seconds", kind="poly", strategy="build",
                    max_degree=1.8,
                    note="generation is linear in the scale"),
    ),
    tolerances=(Tolerance(metric="sc.rows", max_ratio=0.0),),
    agree=False,  # single strategy
))

_register(Suite(
    name="supply-chain-bom",
    title="ISSUE 10: BOM ancestor closure across the three engine lanes",
    sizes=(4, 8, 16),
    strategies=("naive", "seminaive", "interned"),
    run=_run_supply_chain_bom,
    expectations=(
        Expectation(metric="datalog.rows_derived", kind="poly",
                    strategy="interned", max_degree=1.5,
                    note="closure is exactly 102*scale rows: linear, "
                         "never quadratic (depth-3 ternary blocks)"),
    ),
    gates=(
        SpeedupGate(slow="naive", fast="interned", min_ratio=3.0),
        SpeedupGate(slow="naive", fast="seminaive", min_ratio=1.2),
    ),
    tolerances=(
        Tolerance(metric="datalog.rows_derived", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
    agree=True,  # the three lanes must return the same closure
))

_register(Suite(
    name="supply-chain-questions",
    title="ISSUE 10: the golden question inventory, every lane answering "
          "every question",
    sizes=(1, 2),
    strategies=("naive", "seminaive", "interned"),
    run=_run_supply_chain_questions,
    tolerances=(
        Tolerance(metric="sc.questions", max_ratio=0.0),
        Tolerance(metric="sc.question_rows", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
    ),
    agree=True,  # rollup checksum: per-question answers must coincide
))

_register(Suite(
    name="supply-chain-scale",
    title="ISSUE 10: 100K+ rows generated and the headline BOM fixpoint "
          "answered under the interned kernel",
    sizes=(256,),
    strategies=("interned",),
    run=_run_supply_chain_scale,
    tolerances=(
        Tolerance(metric="sc.rows", max_ratio=0.0),
        Tolerance(metric="ifp.stages", max_ratio=0.0),
        Tolerance(metric="datalog.rows_derived", max_ratio=0.0),
    ),
    agree=False,  # single lane; the checksums pin generator + closure
))


#: Named groups accepted by ``repro bench --suite``.  ``tc``/``space``/
#: ``theorems``/``analysis`` partition the registry for CI's job matrix;
#: ``smoke`` keeps its PR 4 meaning (the original six suites).
GROUPS: dict[str, tuple[str, ...]] = {
    "tc": ("seminaive-smoke", "tc-seminaive-dense", "calc-ifp-dense",
           "algebra-loop", "tc-engines", "datalog-translation",
           "algebra-fixpoint"),
    "space": ("hyper-domain", "rr-space-chain"),
    "theorems": ("quantifier-tower", "sparse-collapse", "density-measures",
                 "pfp-vs-ifp", "flat-kernel", "dense-fixpoint",
                 "nest-routes", "domain-cardinality", "induced-order",
                 "code-relations", "domain-encoding", "rr-vs-active",
                 "sorted-density", "tm-simulation"),
    "analysis": ("lint-program",),
    "workloads": ("supply-chain-build", "supply-chain-bom",
                  "supply-chain-questions", "supply-chain-scale"),
    "supply-chain": ("supply-chain-build", "supply-chain-bom",
                     "supply-chain-questions", "supply-chain-scale"),
    "smoke": ("seminaive-smoke", "tc-seminaive-dense", "hyper-domain",
              "rr-space-chain", "calc-ifp-dense", "algebra-loop"),
    "all": tuple(SUITES),
}


def resolve_suites(names: list[str] | None) -> list[Suite]:
    """Expand suite and group names into Suite objects (order-preserving,
    deduplicated).  Unknown names raise ``KeyError`` with the candidates.
    """
    if not names:
        names = ["smoke"]
    resolved: list[Suite] = []
    seen: set[str] = set()
    for name in names:
        expanded = GROUPS.get(name, (name,))
        for suite_name in expanded:
            if suite_name not in SUITES:
                known = sorted(set(SUITES) | set(GROUPS))
                raise KeyError(
                    f"unknown suite {suite_name!r}; known: {', '.join(known)}"
                )
            if suite_name not in seen:
                seen.add(suite_name)
                resolved.append(SUITES[suite_name])
    return resolved
