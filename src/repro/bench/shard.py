"""Sharded parallel execution of bench points, one subprocess per point.

The unit of work is one (suite, size, strategy) *point* — the same unit
:func:`repro.bench.runner.run_point` measures serially.  Each point runs
in its **own fresh process** wired to the scheduler by a one-shot pipe.
Process-per-point (rather than a reused pool) buys three things the
observatory wants:

* **Resource telemetry.**  The worker's ``resource.getrusage`` peak RSS
  is *that point's* peak, not an accumulation over whatever the worker
  ran before; it lands in the point's counters as ``space.rss_peak``
  (and ``tracemalloc`` peaks mirror into ``space.traced_peak``), giving
  every point an OS-level space measurement to set beside the engine's
  own accounting.
* **Hard timeouts.**  ``point_timeout`` is enforced by killing the
  worker (``terminate`` then ``kill``), not by abandoning it: a wedged
  point cannot poison later points or outlive the run.
* **Failure isolation.**  A worker that raises — or dies outright —
  marks *only its own point* as failed
  (:func:`repro.bench.runner.failed_point`); every other point completes
  and the document is flagged partial.

Guarantees kept from the pool era:

* **Deterministic merge.**  Tasks are enumerated in registry
  declaration order and results are stored by task index, so the merged
  document is independent of completion order.  Combined with per-point
  fresh tracers and process-independent checksums, a ``--jobs N``
  document is byte-identical to the serial one apart from wall-clock and
  machine-resource fields (:func:`strip_timing` removes exactly those,
  for comparisons).

Workers resolve suites by *name* through the registry rather than
pickling ``run`` callables, so sharding works under any start method for
declared suites; suites registered at runtime (tests do this)
additionally need the ``fork`` start method, which is preferred when the
platform offers it.
"""

from __future__ import annotations

import time
from collections import deque
from multiprocessing.connection import wait as connection_wait
from typing import TYPE_CHECKING, Any

from .registry import Suite

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing
    from multiprocessing.connection import Connection

__all__ = ["PointTask", "run_sharded", "run_tasks", "strip_timing"]

#: One unit of work: (suite name, size, strategy, tracemalloc, memory).
PointTask = tuple[str, int, str, bool, bool]

#: Extra seconds granted on top of the timeout for points that pay
#: process start-up and cold-import costs: the first point of a run
#: always, every point under a non-fork start method (each spawn
#: re-imports the world).
_STARTUP_GRACE = 5.0


def _mp_context() -> multiprocessing.context.BaseContext:
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _PipeSink:
    """File-like shim a worker's :class:`repro.obs.StreamWriter` writes
    to: each line travels up the result pipe as a ``("stream", line)``
    message, so the scheduler holds whatever the worker measured even if
    the worker is later hard-killed mid-point."""

    __slots__ = ("_conn",)

    def __init__(self, conn: Connection):
        self._conn = conn

    def write(self, text: str) -> None:
        self._conn.send(("stream", text))

    def flush(self) -> None:
        pass


def _execute_task(task: PointTask, stream: Any = None) -> dict[str, Any]:
    """Worker body: resolve the suite by name, measure the point."""
    from .registry import SUITES
    from .runner import run_point

    suite_name, n, strategy, tracemalloc, memory = task
    return run_point(SUITES[suite_name], n, strategy, tracemalloc,
                     memory=memory, stream=stream)


def _attach_resource_telemetry(point: dict[str, Any]) -> None:
    """Inject the worker process's OS-level space figures into the
    point's counters.  Meaningful only process-per-point: this process
    ran exactly this point, so its peak RSS is the point's peak RSS."""
    from ..obs import peak_rss_bytes

    rss = peak_rss_bytes()
    if rss is None:  # pragma: no cover - non-POSIX
        return
    counters = point.setdefault("counters", {})
    counters["space.rss_peak"] = rss
    if point.get("tracemalloc_peak_bytes") is not None:
        counters.setdefault("space.traced_peak",
                            point["tracemalloc_peak_bytes"])


def _point_worker(task: PointTask, conn: Connection) -> None:
    """Subprocess entry point: run one point while live-streaming its
    trace up the pipe, then send ("ok", point) or ("error", message) and
    exit.  The stream is what survives a hard kill: the scheduler
    salvages partial counters from it for timed-out points."""
    try:
        point = _execute_task(task, stream=_PipeSink(conn))
        _attach_resource_telemetry(point)
        conn.send(("ok", point))
    except Exception as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
    finally:
        conn.close()


def _drain_stream(receiver: Connection, lines: list[str]) -> None:
    """Pull any stream messages still buffered in a dead worker's pipe."""
    try:
        while receiver.poll(0):
            kind, payload = receiver.recv()
            if kind == "stream":
                lines.append(payload)
    except (EOFError, OSError):
        pass


def _salvage_stream(point: dict[str, Any], lines: list[str]) -> None:
    """Recover partial telemetry for a failed point from its worker's
    stream lines: the replayed tracer's counters become the point's,
    flagged ``partial_telemetry`` (and erased again by
    :func:`strip_timing`, preserving serial/sharded byte-identity)."""
    if not lines:
        return
    from ..obs import StreamError, replay_stream

    try:
        tracer = replay_stream("".join(lines).splitlines())
    except StreamError:
        return
    if not tracer.counters:
        return
    point["counters"] = dict(tracer.counters)
    point["partial_telemetry"] = True


def _hard_kill(process: Any) -> None:
    """Terminate a worker for real: SIGTERM, then SIGKILL if it lingers
    (a wedged evaluation loop never sees SIGTERM's default handler run
    if it is stuck in C-level code)."""
    process.terminate()
    process.join(1.0)
    if process.is_alive():
        process.kill()
        process.join(1.0)


def run_tasks(
    tasks: list[PointTask],
    jobs: int,
    point_timeout: float | None = None,
) -> list[dict[str, Any]]:
    """Run point tasks, each in a fresh subprocess, at most ``jobs`` at
    a time; returns one point dict per task, in task order.  Failures,
    worker deaths, and timeouts yield
    :func:`repro.bench.runner.failed_point` entries in place; a
    timed-out worker is hard-killed, never abandoned."""
    from .runner import failed_point

    if not tasks:
        return []
    context = _mp_context()
    grace_every_point = context.get_start_method() != "fork"
    results: list[dict[str, Any] | None] = [None] * len(tasks)
    pending = deque(enumerate(tasks))
    #: receiving pipe end -> (task index, task, process, deadline).
    running: dict[Any, tuple[int, PointTask, Any, float | None]] = {}
    #: receiving pipe end -> stream lines received so far (the worker's
    #: live trace; salvaged into the point if the worker dies).
    streams: dict[Any, list[str]] = {}
    first_point = True

    def launch() -> None:
        nonlocal first_point
        index, task = pending.popleft()
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_point_worker, args=(task, sender), daemon=True)
        process.start()
        sender.close()  # the worker holds the only sending end now
        deadline = None
        if point_timeout is not None:
            grace = (_STARTUP_GRACE
                     if first_point or grace_every_point else 0.0)
            deadline = time.monotonic() + point_timeout + grace
        first_point = False
        running[receiver] = (index, task, process, deadline)

    try:
        while pending or running:
            while pending and len(running) < jobs:
                launch()
            deadlines = [entry[3] for entry in running.values()
                         if entry[3] is not None]
            wait_timeout = None
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - time.monotonic())
            ready = connection_wait(list(running), timeout=wait_timeout)
            for receiver in ready:
                index, task, process, _ = running[receiver]
                _, n, strategy, _, _ = task
                try:
                    kind, payload = receiver.recv()
                except EOFError:
                    # The worker died without reporting (crash, kill -9).
                    running.pop(receiver)
                    process.join()
                    point = failed_point(
                        n, strategy,
                        f"worker exited with code {process.exitcode} "
                        f"before reporting a result")
                    _salvage_stream(point, streams.pop(receiver, []))
                    results[index] = point
                    receiver.close()
                    continue
                if kind == "stream":
                    # A live trace line; the worker is still measuring.
                    streams.setdefault(receiver, []).append(payload)
                    continue
                running.pop(receiver)
                lines = streams.pop(receiver, [])
                process.join()
                if kind == "ok":
                    results[index] = payload
                else:
                    point = failed_point(n, strategy, payload)
                    _salvage_stream(point, lines)
                    results[index] = point
                receiver.close()
            now = time.monotonic()
            expired = [receiver for receiver, entry in running.items()
                       if entry[3] is not None and entry[3] <= now]
            for receiver in expired:
                index, task, process, _ = running.pop(receiver)
                _, n, strategy, _, _ = task
                _hard_kill(process)
                lines = streams.pop(receiver, [])
                _drain_stream(receiver, lines)
                receiver.close()
                point = failed_point(
                    n, strategy,
                    f"timed out after {point_timeout}s (worker killed)")
                _salvage_stream(point, lines)
                results[index] = point
    finally:
        # Unwind on error paths: no worker outlives the scheduler.
        for index, task, process, _ in running.values():
            _hard_kill(process)
    return [point for point in results if point is not None]


def run_sharded(
    plan: list[tuple[Suite, tuple[str, ...] | None]],
    sizes: tuple[int, ...] | None,
    tracemalloc: bool,
    jobs: int,
    point_timeout: float | None,
    memory: bool = False,
) -> dict[str, Any]:
    """The parallel back end of :func:`repro.bench.runner.run_suites`:
    flatten the plan's point grids into one task list, run each task in
    its own subprocess, and reassemble per-suite documents in
    declaration order."""
    from .runner import build_suite_document, point_specs

    tasks: list[PointTask] = []
    layout: list[tuple[Suite, tuple[int, ...], tuple[str, ...], int]] = []
    for suite, strategies in plan:
        specs = point_specs(suite, sizes, strategies)
        layout.append((
            suite,
            sizes or suite.sizes,
            strategies or suite.strategies,
            len(specs),
        ))
        tasks.extend((suite.name, n, strategy, tracemalloc, memory)
                     for n, strategy in specs)
    points = run_tasks(tasks, jobs, point_timeout)
    documents: dict[str, Any] = {}
    offset = 0
    for suite, suite_sizes, suite_strategies, count in layout:
        documents[suite.name] = build_suite_document(
            suite, suite_sizes, suite_strategies,
            points[offset:offset + count])
        offset += count
    return documents


#: Point fields that carry wall-clock measurements.
_TIMING_POINT_FIELDS = ("seconds", "tracemalloc_peak_bytes")
#: Counters measured from the worker process/allocator rather than the
#: engine — machine- and isolation-dependent, so stripped alongside
#: timing when comparing documents.
_MACHINE_COUNTERS = ("space.rss_peak", "space.traced_peak")
#: Gate fields measured from a timing series (identity fields stay).
_TIMING_GATE_FIELDS = ("n", "slow_value", "fast_value", "ratio", "ok",
                      "slow_seconds", "fast_seconds", "reason")
#: Expectation fields derived from a timing series.
_TIMING_EXPECTATION_FIELDS = ("fit", "doubling_ratios", "ok", "max_degree",
                             "bound", "points", "breaches", "reason")


def strip_timing(document: dict[str, Any]) -> dict[str, Any]:
    """A deep copy of an observatory document with every wall-clock- or
    machine-derived field removed: per-point ``seconds``/``tracemalloc``
    bytes, the worker-resource counters (``space.rss_peak``,
    ``space.traced_peak``), per-strategy ``fits``, and the measured
    parts of ``seconds``-based gates and expectations.  Deterministic
    fields — engine counters, histograms, checksums, agreement,
    counter-metric gates and expectations — survive untouched, so two
    stripped documents of the same workload compare equal byte-for-byte
    regardless of machine, wall time, or ``--jobs``.  Failed points lose
    their salvaged ``partial_telemetry`` counters too: what a killed
    worker managed to measure depends on the kill timing."""
    import copy

    stripped = copy.deepcopy(document)
    for suite_doc in stripped.get("suites", {}).values():
        for point in suite_doc.get("points", ()):
            for field in _TIMING_POINT_FIELDS:
                point.pop(field, None)
            for counter in _MACHINE_COUNTERS:
                point.get("counters", {}).pop(counter, None)
            if point.get("failed"):
                # Salvaged partial telemetry depends on *when* the worker
                # was killed — erase it so serial and sharded documents
                # of the same workload stay byte-identical.
                point["counters"] = {}
                point.pop("partial_telemetry", None)
        suite_doc.pop("fits", None)
        for gate in suite_doc.get("gates", ()):
            if gate.get("metric", "seconds") == "seconds":
                for field in _TIMING_GATE_FIELDS:
                    gate.pop(field, None)
        for expectation in suite_doc.get("expectations", ()):
            if expectation.get("metric") == "seconds":
                for field in _TIMING_EXPECTATION_FIELDS:
                    expectation.pop(field, None)
    return stripped
