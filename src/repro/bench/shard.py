"""Sharded parallel execution of bench points over a process pool.

The unit of work is one (suite, size, strategy) *point* — the same unit
:func:`repro.bench.runner.run_point` measures serially.  Sharding at
point granularity (rather than suite granularity) keeps the pool busy
even when one suite dominates the grid, and point isolation is free:
every point already runs under a fresh tracer, so a worker process
carries no state between points beyond warm imports.

Guarantees:

* **Deterministic merge.**  Tasks are enumerated in registry
  declaration order and results are collected by task index, so the
  merged document is independent of completion order.  Combined with
  per-point fresh tracers and process-independent checksums, a
  ``--jobs N`` document is byte-identical to the serial one apart from
  wall-clock-derived fields (:func:`strip_timing` removes exactly
  those, for comparisons).
* **Failure isolation.**  A worker that raises marks *only its own
  point* as failed (:func:`repro.bench.runner.failed_point`); every
  other point completes and the document is flagged partial.
* **Timeout degradation.**  ``point_timeout`` bounds the wait for each
  point's result.  A point that exceeds it is marked failed with a
  timeout error; its worker may still be wedged (POSIX offers no safe
  preemption), so the pool is terminated once all results are
  collected, never reused.

Workers resolve suites by *name* through the registry rather than
pickling ``run`` callables, so the pool works under any start method
for declared suites; suites registered at runtime (tests do this)
additionally need the ``fork`` start method, which is preferred when
the platform offers it.
"""

from __future__ import annotations

import multiprocessing
from typing import Any

from .registry import Suite

__all__ = ["PointTask", "run_sharded", "run_tasks", "strip_timing"]

#: One unit of pool work: (suite name, size, strategy, tracemalloc).
PointTask = tuple[str, int, str, bool]

#: Extra seconds granted to the first result wait of a parallel run,
#: covering pool start-up and cold imports in the workers.
_STARTUP_GRACE = 5.0


def _pool_context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute_task(task: PointTask) -> dict[str, Any]:
    """Worker body: resolve the suite by name, measure the point."""
    from .registry import SUITES
    from .runner import run_point

    suite_name, n, strategy, tracemalloc = task
    return run_point(SUITES[suite_name], n, strategy, tracemalloc)


def run_tasks(
    tasks: list[PointTask],
    jobs: int,
    point_timeout: float | None = None,
) -> list[dict[str, Any]]:
    """Run point tasks on a pool of ``jobs`` workers; returns one point
    dict per task, in task order.  Failures and timeouts yield
    :func:`repro.bench.runner.failed_point` entries in place."""
    from .runner import failed_point

    if not tasks:
        return []
    results: list[dict[str, Any]] = []
    context = _pool_context()
    pool = context.Pool(processes=min(jobs, len(tasks)))
    try:
        handles = [pool.apply_async(_execute_task, (task,)) for task in tasks]
        grace = _STARTUP_GRACE
        for task, handle in zip(tasks, handles):
            _, n, strategy, _ = task
            timeout = None if point_timeout is None else point_timeout + grace
            grace = 0.0
            try:
                results.append(handle.get(timeout))
            except multiprocessing.TimeoutError:
                results.append(failed_point(
                    n, strategy,
                    f"timed out after {point_timeout}s"))
            except Exception as error:  # re-raised from the worker
                results.append(failed_point(
                    n, strategy, f"{type(error).__name__}: {error}"))
    finally:
        # A timed-out worker may be wedged; never reuse the pool.
        pool.terminate()
        pool.join()
    return results


def run_sharded(
    plan: list[tuple[Suite, tuple[str, ...] | None]],
    sizes: tuple[int, ...] | None,
    tracemalloc: bool,
    jobs: int,
    point_timeout: float | None,
) -> dict[str, Any]:
    """The parallel back end of :func:`repro.bench.runner.run_suites`:
    flatten the plan's point grids into one task list, run it on the
    pool, and reassemble per-suite documents in declaration order."""
    from .runner import build_suite_document, point_specs

    tasks: list[PointTask] = []
    layout: list[tuple[Suite, tuple[int, ...], tuple[str, ...], int]] = []
    for suite, strategies in plan:
        specs = point_specs(suite, sizes, strategies)
        layout.append((
            suite,
            sizes or suite.sizes,
            strategies or suite.strategies,
            len(specs),
        ))
        tasks.extend((suite.name, n, strategy, tracemalloc)
                     for n, strategy in specs)
    points = run_tasks(tasks, jobs, point_timeout)
    documents: dict[str, Any] = {}
    offset = 0
    for suite, suite_sizes, suite_strategies, count in layout:
        documents[suite.name] = build_suite_document(
            suite, suite_sizes, suite_strategies,
            points[offset:offset + count])
        offset += count
    return documents


#: Point fields that carry wall-clock measurements.
_TIMING_POINT_FIELDS = ("seconds", "tracemalloc_peak_bytes")
#: Gate fields measured from a timing series (identity fields stay).
_TIMING_GATE_FIELDS = ("n", "slow_value", "fast_value", "ratio", "ok",
                      "slow_seconds", "fast_seconds", "reason")
#: Expectation fields derived from a timing series.
_TIMING_EXPECTATION_FIELDS = ("fit", "doubling_ratios", "ok", "max_degree",
                             "bound", "points", "breaches", "reason")


def strip_timing(document: dict[str, Any]) -> dict[str, Any]:
    """A deep copy of an observatory document with every wall-clock-
    derived field removed: per-point ``seconds``/``tracemalloc`` bytes,
    per-strategy ``fits``, and the measured parts of ``seconds``-based
    gates and expectations.  Deterministic fields — counters,
    histograms, checksums, agreement, counter-metric gates and
    expectations — survive untouched, so two stripped documents of the
    same workload compare equal byte-for-byte regardless of machine,
    wall time, or ``--jobs``."""
    import copy

    stripped = copy.deepcopy(document)
    for suite_doc in stripped.get("suites", {}).values():
        for point in suite_doc.get("points", ()):
            for field in _TIMING_POINT_FIELDS:
                point.pop(field, None)
        suite_doc.pop("fits", None)
        for gate in suite_doc.get("gates", ()):
            if gate.get("metric", "seconds") == "seconds":
                for field in _TIMING_GATE_FIELDS:
                    gate.pop(field, None)
        for expectation in suite_doc.get("expectations", ()):
            if expectation.get("metric") == "seconds":
                for field in _TIMING_EXPECTATION_FIELDS:
                    expectation.pop(field, None)
    return stripped
