"""Complex object substrate: types, values, domains, orderings, encodings.

This package implements Section 2 of Grumbach & Vianu: the recursive type
system (atomic ``U``, sets, tuples), immutable hashable nested values,
finite domains ``dom(T, D)`` with exact cardinality arithmetic, database
schemas and instances, the induced order ``<_T`` of Definition 4.2, and
the standard Turing-machine tape encoding of Figure 2.
"""

from .types import (
    AtomType,
    SetType,
    TupleType,
    Type,
    TypeError_,
    U,
    as_type,
    format_type_tree,
    parse_type,
    set_of,
    tuple_of,
)
from .values import (
    Atom,
    CSet,
    CTuple,
    Value,
    ValueError_,
    atom,
    cset,
    ctuple,
    make_value,
    value_sort_key,
)
from .domains import (
    DomainTooLarge,
    all_ik_types,
    dom_ik_cardinality,
    domain_cardinality,
    enumerate_domain,
    hyper,
    hyper_log2,
    materialize_domain,
)
from .schema import (
    DatabaseSchema,
    RelationSchema,
    SchemaError,
    database_schema,
    relation,
)
from .instance import Instance, InstanceError, Relation, instance
from .ordering import (
    AtomOrder,
    OrderError,
    all_atom_orders,
    compare,
    less_than,
    maximum,
    minimum,
    ordered_domain,
    rank,
    sort_key,
    sorted_values,
    successor,
    tuple_rank,
    tuple_unrank,
    unrank,
)
from .io import (
    SerializationError,
    dump_instance,
    instance_from_json,
    instance_to_json,
    load_instance,
    schema_from_json,
    schema_to_json,
    value_from_json,
    value_to_json,
)
from .intern import (
    ColumnTable,
    InternError,
    ValueStore,
    intern_instance,
    type_depth,
)
from .encoding import (
    EncodingError,
    atom_bits,
    decode_instance,
    decode_value,
    domain_encoding_size,
    encode_atom,
    encode_instance,
    encode_relation,
    encode_value,
    instance_size,
    value_size,
)

__all__ = [
    # types
    "AtomType", "SetType", "TupleType", "Type", "TypeError_", "U",
    "as_type", "format_type_tree", "parse_type", "set_of", "tuple_of",
    # values
    "Atom", "CSet", "CTuple", "Value", "ValueError_",
    "atom", "cset", "ctuple", "make_value", "value_sort_key",
    # domains
    "DomainTooLarge", "all_ik_types", "dom_ik_cardinality",
    "domain_cardinality", "enumerate_domain", "hyper", "hyper_log2",
    "materialize_domain",
    # schema / instance
    "DatabaseSchema", "RelationSchema", "SchemaError",
    "database_schema", "relation",
    "Instance", "InstanceError", "Relation", "instance",
    # ordering
    "AtomOrder", "OrderError", "all_atom_orders", "compare", "less_than",
    "maximum", "minimum", "ordered_domain", "rank", "sort_key",
    "sorted_values", "successor", "tuple_rank", "tuple_unrank", "unrank",
    # io
    "SerializationError", "dump_instance", "instance_from_json",
    "instance_to_json", "load_instance", "schema_from_json",
    "schema_to_json", "value_from_json", "value_to_json",
    # intern
    "ColumnTable", "InternError", "ValueStore", "intern_instance",
    "type_depth",
    # encoding
    "EncodingError", "atom_bits", "decode_instance", "decode_value",
    "domain_encoding_size", "encode_atom", "encode_instance",
    "encode_relation", "encode_value", "instance_size", "value_size",
]
