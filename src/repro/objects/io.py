"""JSON serialisation of complex objects, schemas and instances.

A tagged, unambiguous wire format so instances survive round trips:

* atoms: ``{"a": <label>}`` (label is a string or int);
* tuples: ``{"t": [v1, ..., vn]}``;
* sets: ``{"s": [v1, ..., vn]}`` (order irrelevant, duplicates merged);
* types: their textual form, e.g. ``"{[U,{U}]}"``;
* schemas: ``{"relations": [{"name": ..., "columns": [...]}, ...]}``;
* instances: ``{"schema": ..., "data": {"R": [[row values]], ...}}``.

Example document::

    {
      "schema": {"relations": [{"name": "G",
                                "columns": ["{U}", "{U}"]}]},
      "data": {"G": [[{"s": [{"a": "a"}]}, {"s": [{"a": "b"}]}]]}
    }

Used by the command-line interface (``python -m repro``).
"""

from __future__ import annotations

import json
from typing import Any

from .instance import Instance
from .schema import DatabaseSchema, RelationSchema
from .values import Atom, CSet, CTuple, Value

__all__ = [
    "SerializationError",
    "value_to_json",
    "value_from_json",
    "schema_to_json",
    "schema_from_json",
    "instance_to_json",
    "instance_from_json",
    "dump_instance",
    "load_instance",
]


class SerializationError(Exception):
    """Raised on malformed JSON documents."""


def value_to_json(value: Value) -> Any:
    """Convert a complex object to the tagged JSON form."""
    if isinstance(value, Atom):
        return {"a": value.label}
    if isinstance(value, CTuple):
        return {"t": [value_to_json(item) for item in value.items]}
    if isinstance(value, CSet):
        elements = sorted(
            (value_to_json(element) for element in value.elements),
            key=json.dumps,
        )
        return {"s": elements}
    raise SerializationError(f"unknown value {value!r}")


def value_from_json(document: Any) -> Value:
    """Parse the tagged JSON form back to a complex object."""
    if not isinstance(document, dict) or len(document) != 1:
        raise SerializationError(
            f"expected a one-key tagged object, got {document!r}"
        )
    (tag, payload), = document.items()
    if tag == "a":
        if not isinstance(payload, (str, int)) or isinstance(payload, bool):
            raise SerializationError(f"bad atom label {payload!r}")
        return Atom(payload)
    if tag == "t":
        if not isinstance(payload, list) or not payload:
            raise SerializationError(f"bad tuple payload {payload!r}")
        return CTuple(value_from_json(item) for item in payload)
    if tag == "s":
        if not isinstance(payload, list):
            raise SerializationError(f"bad set payload {payload!r}")
        return CSet(value_from_json(element) for element in payload)
    raise SerializationError(f"unknown tag {tag!r}")


def schema_to_json(schema: DatabaseSchema) -> Any:
    return {
        "relations": [
            {"name": rel.name,
             "columns": [repr(t) for t in rel.column_types]}
            for rel in schema
        ]
    }


def schema_from_json(document: Any) -> DatabaseSchema:
    try:
        relations = document["relations"]
    except (TypeError, KeyError):
        raise SerializationError(
            "schema document needs a 'relations' list"
        ) from None
    built = []
    for entry in relations:
        try:
            built.append(RelationSchema(entry["name"], entry["columns"]))
        except (TypeError, KeyError) as exc:
            raise SerializationError(f"bad relation entry {entry!r}") from exc
    return DatabaseSchema(built)


def instance_to_json(inst: Instance) -> Any:
    return {
        "schema": schema_to_json(inst.schema),
        "data": {
            rel.name: sorted(
                ([value_to_json(item) for item in row.items]
                 for row in rel.tuples),
                key=json.dumps,
            )
            for rel in inst.relations()
        },
    }


def instance_from_json(document: Any) -> Instance:
    try:
        schema = schema_from_json(document["schema"])
        data = document.get("data", {})
    except (TypeError, KeyError):
        raise SerializationError(
            "instance document needs 'schema' and 'data'"
        ) from None
    rows: dict[str, list] = {}
    for name, encoded_rows in data.items():
        rows[name] = [
            CTuple(value_from_json(item) for item in encoded_row)
            for encoded_row in encoded_rows
        ]
    return Instance(schema, rows)


def dump_instance(inst: Instance, path: str, indent: int = 2) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(instance_to_json(inst), handle, indent=indent)
        handle.write("\n")


def load_instance(path: str) -> Instance:
    """Read an instance from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return instance_from_json(json.load(handle))
