"""Database schemas for complex object databases.

A relation schema ``R[T1, ..., Tn]`` names a relation whose tuples have
component types ``T1..Tn``.  A database schema is a finite collection of
relation schemas with distinct names.  An ``<i,k>``-database schema is one
in which every component type is an ``<i,k>``-type (Section 2); note that
the *arity* ``n`` of a relation is not restricted by ``k``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .types import Type, TypeLike, as_type


class SchemaError(Exception):
    """Raised for malformed schemas or schema mismatches."""


class RelationSchema:
    """A named relation schema ``R[T1, ..., Tn]``.

    ``column_types`` are the component types of the relation's tuples.
    The schema is immutable and hashable.
    """

    __slots__ = ("name", "column_types")

    def __init__(self, name: str, column_types: Iterable[TypeLike]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string: {name!r}")
        types = tuple(as_type(t) for t in column_types)
        if not types:
            raise SchemaError(f"relation {name!r} needs at least one column")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "column_types", types)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RelationSchema is immutable")

    @property
    def arity(self) -> int:
        return len(self.column_types)

    @property
    def set_height(self) -> int:
        """Maximum set height among column types."""
        return max(t.set_height for t in self.column_types)

    @property
    def tuple_width(self) -> int:
        """Maximum tuple width among column types."""
        return max(t.tuple_width for t in self.column_types)

    def is_ik_schema(self, i: int, k: int) -> bool:
        """True iff every column type is an ``<i,k>``-type."""
        return all(t.is_ik_type(i, k) for t in self.column_types)

    def is_flat(self) -> bool:
        """True iff every column type has set height zero."""
        return self.set_height == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.column_types == other.column_types
        )

    def __hash__(self) -> int:
        return hash((RelationSchema, self.name, self.column_types))

    def __repr__(self) -> str:
        cols = ", ".join(repr(t) for t in self.column_types)
        return f"{self.name}[{cols}]"


class DatabaseSchema:
    """A database schema: relation schemas with distinct names.

    Iterating yields the relation schemas in declaration order;
    ``schema["R"]`` looks one up by name.
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema]):
        ordered: dict[str, RelationSchema] = {}
        for rel in relations:
            if not isinstance(rel, RelationSchema):
                raise SchemaError(f"expected RelationSchema, got {rel!r}")
            if rel.name in ordered:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            ordered[rel.name] = rel
        object.__setattr__(self, "_relations", ordered)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DatabaseSchema is immutable")

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in schema") from None

    def get(self, name: str) -> RelationSchema | None:
        return self._relations.get(name)

    @property
    def set_height(self) -> int:
        return max(rel.set_height for rel in self)

    @property
    def tuple_width(self) -> int:
        return max(rel.tuple_width for rel in self)

    def is_ik_schema(self, i: int, k: int) -> bool:
        """True iff every relation is over ``<i,k>``-types."""
        return all(rel.is_ik_schema(i, k) for rel in self)

    def is_flat(self) -> bool:
        return all(rel.is_flat() for rel in self)

    def column_type_set(self) -> frozenset[Type]:
        """All distinct column types appearing in the schema."""
        return frozenset(t for rel in self for t in rel.column_types)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseSchema)
            and tuple(self) == tuple(other)
        )

    def __hash__(self) -> int:
        return hash((DatabaseSchema, tuple(self)))

    def __repr__(self) -> str:
        return "DatabaseSchema(" + ", ".join(repr(r) for r in self) + ")"


def relation(name: str, *column_types: TypeLike) -> RelationSchema:
    """Shorthand constructor: ``relation("P", "U", "{U}", "[U,{U}]")``."""
    return RelationSchema(name, column_types)


def database_schema(
    *relations_: RelationSchema,
    **by_name: "Iterable[TypeLike] | Mapping",
) -> DatabaseSchema:
    """Build a database schema.

    Either pass :class:`RelationSchema` objects positionally, or keyword
    arguments mapping names to column-type sequences::

        database_schema(G=["{U}", "{U}"], Color=["U"])
    """
    rels = list(relations_)
    for name, cols in by_name.items():
        rels.append(RelationSchema(name, cols))
    return DatabaseSchema(rels)
