"""Database instances: finite relations of complex-object tuples.

An instance of a database schema maps each relation name to a finite set
of tuples conforming to the relation's column types.  Key measures from
Section 2:

* ``|I|`` (:meth:`Instance.cardinality`) — total number of tuples;
* ``atom(I)`` (:meth:`Instance.atoms`) — atomic constants occurring in I;
* ``||I||`` (the size of the standard tape encoding) lives in
  :mod:`repro.objects.encoding`, which needs an atom enumeration.

Instances are immutable; "updates" construct new instances
(:meth:`Instance.with_relation`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .schema import DatabaseSchema, RelationSchema, SchemaError
from .values import Atom, CTuple, Value, make_value


class InstanceError(Exception):
    """Raised for ill-typed or malformed instance data."""


class Relation:
    """A finite set of tuples over a :class:`RelationSchema`.

    Tuples are stored as :class:`CTuple` values in a ``frozenset``; the
    relation is immutable and hashable.
    """

    __slots__ = ("schema", "tuples")

    def __init__(self, schema: RelationSchema, tuples: Iterable[object] = ()):
        converted = []
        for row in tuples:
            converted.append(_coerce_row(schema, row))
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "tuples", frozenset(converted))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Relation is immutable")

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def cardinality(self) -> int:
        """Number of tuples."""
        return len(self.tuples)

    def atoms(self) -> frozenset[Atom]:
        """Atomic constants occurring in any tuple."""
        result: frozenset[Atom] = frozenset()
        for row in self.tuples:
            result |= row.atoms()
        return result

    def contains(self, row: object) -> bool:
        return _coerce_row(self.schema, row) in self.tuples

    def __iter__(self) -> Iterator[CTuple]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, row: object) -> bool:
        try:
            return self.contains(row)
        except InstanceError:
            return False

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self.schema == other.schema
            and self.tuples == other.tuples
        )

    def __hash__(self) -> int:
        return hash((Relation, self.schema, self.tuples))

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.tuples)} tuples)"


def _coerce_row(schema: RelationSchema, row: object) -> CTuple:
    """Convert a row (CTuple, Value sequence or plain Python) and typecheck."""
    if isinstance(row, CTuple):
        value = row
    elif isinstance(row, Value):
        raise InstanceError(f"row must be a tuple of values, got {row!r}")
    else:
        if not isinstance(row, (tuple, list)):
            raise InstanceError(f"cannot interpret row {row!r}")
        value = CTuple(make_value(item) for item in row)
    if value.arity != schema.arity:
        raise InstanceError(
            f"row arity {value.arity} != schema arity {schema.arity} "
            f"for relation {schema.name!r}"
        )
    for item, typ in zip(value.items, schema.column_types):
        if not item.conforms_to(typ):
            raise InstanceError(
                f"value {item!r} does not conform to column type {typ!r} "
                f"in relation {schema.name!r}"
            )
    return value


class Instance:
    """An instance of a :class:`DatabaseSchema`.

    Missing relations default to empty.  Construction typechecks every
    tuple against its relation schema.
    """

    __slots__ = ("schema", "_relations")

    def __init__(
        self,
        schema: DatabaseSchema,
        data: Mapping[str, Iterable[object]] | None = None,
    ):
        data = dict(data or {})
        relations: dict[str, Relation] = {}
        for rel_schema in schema:
            rows = data.pop(rel_schema.name, ())
            relations[rel_schema.name] = Relation(rel_schema, rows)
        if data:
            unknown = ", ".join(sorted(data))
            raise SchemaError(f"data for relations not in schema: {unknown}")
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "_relations", relations)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Instance is immutable")

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def relations(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def cardinality(self) -> int:
        """``|I|``: the total number of tuples across all relations."""
        return sum(rel.cardinality for rel in self._relations.values())

    def atoms(self) -> frozenset[Atom]:
        """``atom(I)``: atomic constants occurring anywhere in the instance."""
        result: frozenset[Atom] = frozenset()
        for rel in self._relations.values():
            result |= rel.atoms()
        return result

    def with_relation(self, name: str, tuples: Iterable[object]) -> "Instance":
        """Return a new instance with relation ``name`` replaced."""
        data = {rel.name: rel.tuples for rel in self._relations.values()}
        data[name] = tuples  # type: ignore[assignment]
        return Instance(self.schema, data)

    def rename_atoms(self, mapping: Mapping[Atom, Atom]) -> "Instance":
        """Apply an injective renaming of atomic constants.

        Used by the genericity tests: queries must commute with atom
        isomorphisms.
        """
        values = set(mapping.values())
        if len(values) != len(mapping):
            raise InstanceError("atom renaming must be injective")

        def rename(value: Value) -> Value:
            from .values import Atom as A, CSet, CTuple as T

            if isinstance(value, A):
                return mapping.get(value, value)
            if isinstance(value, T):
                return T(rename(item) for item in value.items)
            if isinstance(value, CSet):
                return CSet(rename(element) for element in value.elements)
            raise InstanceError(f"unknown value {value!r}")

        data = {
            rel.name: [rename(row) for row in rel.tuples]
            for rel in self._relations.values()
        }
        return Instance(self.schema, data)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Instance)
            and self.schema == other.schema
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (Instance, self.schema, tuple(self._relations[name]
                                          for name in sorted(self._relations)))
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{rel.cardinality}" for name, rel in self._relations.items()
        )
        return f"Instance({parts})"


def instance(schema: DatabaseSchema, **data: Iterable[object]) -> Instance:
    """Shorthand: ``instance(schema, G=[("a","b"), ("b","c")])``."""
    return Instance(schema, data)
