"""Type algebra for complex objects.

Complex object types are built recursively from the atomic type ``U``
using the set constructor ``{T}`` and tuple constructors ``[T1, ..., Tn]``
(Grumbach & Vianu, Section 2).  Types are immutable, hashable values with
structural equality, so they can key dictionaries and live in sets.

The module also implements the two structural measures the paper's
language restrictions are built on:

* the *set height* of a type — the maximum number of set nodes on a
  root-to-leaf path of its type tree;
* the *tuple width* — the maximal arity among tuple nodes in the tree.

A type is an ``<i, k>``-type when its set height is at most ``i`` and its
tuple width is at most ``k``; the calculus ``CALC_i^k`` only manipulates
such types.

A small text grammar mirrors the paper's notation::

    U                  atomic type
    {T}                set of T
    [T1, ..., Tn]      n-ary tuple

so ``parse_type("{[U,{[U,U]}]}")`` produces the paper's running example
(set height 2, tuple width 2).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Union


class TypeError_(Exception):
    """Raised when a type expression is malformed."""


class Type:
    """Abstract base class for complex object types.

    Concrete subclasses are :class:`AtomType`, :class:`SetType` and
    :class:`TupleType`.  All are immutable and hashable.
    """

    __slots__ = ()

    @property
    def set_height(self) -> int:
        """Maximum number of set nodes on a root-to-leaf path."""
        raise NotImplementedError

    @property
    def tuple_width(self) -> int:
        """Maximal arity among tuple constructors in this type (0 if none)."""
        raise NotImplementedError

    def is_ik_type(self, i: int, k: int) -> bool:
        """Return True iff this is an ``<i, k>``-type.

        That is, set height at most ``i`` and tuple width at most ``k``.
        """
        return self.set_height <= i and self.tuple_width <= k

    def subtypes(self) -> Iterator["Type"]:
        """Yield every node of the type tree (including this type itself).

        Duplicates are yielded once per occurrence; use ``set()`` on the
        result for the distinct subtypes.
        """
        raise NotImplementedError

    def is_non_trivial(self) -> bool:
        """Return True iff set height >= 1 and tuple width >= 2.

        Non-trivial types can represent binary relations over atoms (e.g.
        an order ``<_U``), which is what Theorems 4.1 and 5.3 require.
        """
        return self.set_height >= 1 and self.tuple_width >= 2

    # Subclasses provide __eq__/__hash__/__repr__.


class AtomType(Type):
    """The atomic type ``U``.

    There is a single atomic sort; all atomic constants share it.  Use the
    module-level singleton :data:`U` rather than constructing new
    instances.
    """

    __slots__ = ()

    @property
    def set_height(self) -> int:
        return 0

    @property
    def tuple_width(self) -> int:
        return 0

    def subtypes(self) -> Iterator[Type]:
        yield self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomType)

    def __hash__(self) -> int:
        return hash(AtomType)

    def __repr__(self) -> str:
        return "U"


class SetType(Type):
    """A set type ``{T}`` with element type ``T``."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        if not isinstance(element, Type):
            raise TypeError_(f"set element must be a Type, got {element!r}")
        object.__setattr__(self, "element", element)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SetType is immutable")

    @property
    def set_height(self) -> int:
        return 1 + self.element.set_height

    @property
    def tuple_width(self) -> int:
        return self.element.tuple_width

    def subtypes(self) -> Iterator[Type]:
        yield self
        yield from self.element.subtypes()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and self.element == other.element

    def __hash__(self) -> int:
        return hash((SetType, self.element))

    def __repr__(self) -> str:
        return "{" + repr(self.element) + "}"


class TupleType(Type):
    """A tuple type ``[T1, ..., Tn]`` with component types ``T1..Tn``."""

    __slots__ = ("components",)

    def __init__(self, components):
        components = tuple(components)
        if not components:
            raise TypeError_("tuple type needs at least one component")
        for comp in components:
            if not isinstance(comp, Type):
                raise TypeError_(f"tuple component must be a Type, got {comp!r}")
        object.__setattr__(self, "components", components)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TupleType is immutable")

    @property
    def arity(self) -> int:
        """Number of components of the tuple."""
        return len(self.components)

    @property
    def set_height(self) -> int:
        return max(comp.set_height for comp in self.components)

    @property
    def tuple_width(self) -> int:
        inner = max(comp.tuple_width for comp in self.components)
        return max(len(self.components), inner)

    def subtypes(self) -> Iterator[Type]:
        yield self
        for comp in self.components:
            yield from comp.subtypes()

    def component(self, i: int) -> Type:
        """Return the type of the ``i``-th component, 1-indexed (paper's x.i)."""
        if not 1 <= i <= len(self.components):
            raise TypeError_(
                f"component index {i} out of range for arity {len(self.components)}"
            )
        return self.components[i - 1]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and self.components == other.components

    def __hash__(self) -> int:
        return hash((TupleType, self.components))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(c) for c in self.components) + "]"


#: Singleton atomic type.
U = AtomType()


def set_of(element: Type) -> SetType:
    """Build the set type ``{element}``."""
    return SetType(element)


def tuple_of(*components: Type) -> TupleType:
    """Build the tuple type ``[components...]``."""
    return TupleType(components)


TypeLike = Union[Type, str]


def as_type(value: TypeLike) -> Type:
    """Coerce a :class:`Type` or a textual type expression to a Type."""
    if isinstance(value, Type):
        return value
    if isinstance(value, str):
        return parse_type(value)
    raise TypeError_(f"cannot interpret {value!r} as a type")


class _TypeParser:
    """Recursive-descent parser for the textual type grammar."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> Type:
        result = self._parse_type()
        self._skip_ws()
        if self.pos != len(self.text):
            raise TypeError_(
                f"trailing input at position {self.pos} in type {self.text!r}"
            )
        return result

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        if self.pos >= len(self.text):
            raise TypeError_(f"unexpected end of type expression {self.text!r}")
        return self.text[self.pos]

    def _expect(self, char: str) -> None:
        got = self._peek()
        if got != char:
            raise TypeError_(
                f"expected {char!r} at position {self.pos} in {self.text!r}, got {got!r}"
            )
        self.pos += 1

    def _parse_type(self) -> Type:
        char = self._peek()
        if char == "U":
            self.pos += 1
            return U
        if char == "{":
            self.pos += 1
            element = self._parse_type()
            self._expect("}")
            return SetType(element)
        if char == "[":
            self.pos += 1
            components = [self._parse_type()]
            while self._peek() == ",":
                self.pos += 1
                components.append(self._parse_type())
            self._expect("]")
            return TupleType(components)
        raise TypeError_(
            f"unexpected character {char!r} at position {self.pos} in {self.text!r}"
        )


@lru_cache(maxsize=1024)
def parse_type(text: str) -> Type:
    """Parse a textual type expression, e.g. ``"{[U,{[U,U]}]}"``.

    The grammar follows the paper's notation: ``U`` for the atomic type,
    ``{T}`` for sets, ``[T1,...,Tn]`` for tuples.  Whitespace is ignored.
    """
    return _TypeParser(text).parse()


def type_tree_lines(typ: Type, indent: str = "") -> list[str]:
    """Render a type as an ASCII tree (the paper's labelled-tree figure).

    Set nodes print as ``(+)``, tuple nodes as ``[x]`` and leaves as ``[]``,
    echoing the paper's circled-plus / crossed-box / square convention.
    """
    if isinstance(typ, AtomType):
        return [indent + "[] U"]
    if isinstance(typ, SetType):
        lines = [indent + "(+) set"]
        lines.extend(type_tree_lines(typ.element, indent + "    "))
        return lines
    if isinstance(typ, TupleType):
        lines = [indent + f"[x] tuple/{typ.arity}"]
        for comp in typ.components:
            lines.extend(type_tree_lines(comp, indent + "    "))
        return lines
    raise TypeError_(f"unknown type node {typ!r}")


def format_type_tree(typ: Type) -> str:
    """Return the ASCII tree rendering of ``typ`` as a single string."""
    return "\n".join(type_tree_lines(typ))
