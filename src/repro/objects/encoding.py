"""Standard Turing-machine tape encodings of complex objects (Section 2).

The paper presents instances to Turing machines in a *standard encoding*
determined by an enumeration of the atomic constants (Figure 2)::

    P[01#{00#01}#[10#{00#10}]][10#{10}#[00#{01#10}]]

Conventions (reverse-engineered from Figure 2 and Lemma 4.4, and checked
verbatim against the paper's figure in the tests):

* each atomic constant is written in binary, fixed width
  ``ceil(log2 |D|)`` bits (minimum 1);
* a tuple ``[o1, ..., on]`` encodes as ``[`` e1 ``#`` ... ``#`` en ``]``;
* a set encodes as ``{`` e1 ``#`` ... ``#`` em ``}`` with elements in
  increasing induced order ``<_T`` (so the encoding is canonical given the
  atom enumeration); the empty set is ``{}``;
* a relation encodes as its name followed by its tuples' encodings, tuples
  in increasing induced order;
* an instance is the concatenation of its relations' encodings in schema
  order.

``size`` measures (the paper's ``||o||``, ``||I||``) count tape symbols.
:func:`domain_encoding_size` computes ``||dom(T, D)||`` *analytically*
(exact big-integer arithmetic, no enumeration), which is what the
Proposition 2.1 benchmark sweeps; tests cross-check it against brute-force
enumeration on small domains.
"""

from __future__ import annotations

from functools import lru_cache

from .domains import domain_cardinality
from .instance import Instance, Relation
from .ordering import AtomOrder, sort_key
from .schema import DatabaseSchema, RelationSchema
from .types import AtomType, SetType, TupleType, Type
from .values import Atom, CSet, CTuple, Value


class EncodingError(Exception):
    """Raised on malformed encodings or decoding mismatches."""


def atom_bits(n: int) -> int:
    """Bits per atomic constant for a universe of ``n`` atoms (min 1)."""
    if n <= 0:
        raise EncodingError("atom universe must be non-empty")
    return max(1, (n - 1).bit_length())


def encode_atom(a: Atom, order: AtomOrder) -> str:
    """Fixed-width binary code of an atom under the given enumeration."""
    width = atom_bits(len(order))
    return format(order.index(a), f"0{width}b")


def encode_value(value: Value, order: AtomOrder) -> str:
    """``enc(o)``: the canonical tape encoding of a complex object."""
    if isinstance(value, Atom):
        return encode_atom(value, order)
    if isinstance(value, CTuple):
        inner = "#".join(encode_value(item, order) for item in value.items)
        return "[" + inner + "]"
    if isinstance(value, CSet):
        elements = sorted(value.elements, key=lambda v: sort_key(v, order))
        inner = "#".join(encode_value(element, order) for element in elements)
        return "{" + inner + "}"
    raise EncodingError(f"unknown value {value!r}")


def encode_relation(rel: Relation, order: AtomOrder) -> str:
    """Relation name followed by its tuples in increasing induced order."""
    rows = sorted(rel.tuples, key=lambda v: sort_key(v, order))
    return rel.name + "".join(encode_value(row, order) for row in rows)


def encode_instance(inst: Instance, order: AtomOrder | None = None) -> str:
    """``enc(I)``: the standard encoding of an instance.

    If ``order`` is omitted, the canonical label-sorted enumeration of
    ``atom(I)`` is used.  All atoms of the instance must be in the order.
    """
    if order is None:
        order = AtomOrder.sorted_by_label(inst.atoms())
    missing = inst.atoms() - set(order.atoms)
    if missing:
        raise EncodingError(f"atoms missing from enumeration: {missing}")
    return "".join(encode_relation(rel, order) for rel in inst.relations())


def value_size(value: Value, n_atoms: int) -> int:
    """``||o||``: number of tape symbols in ``enc(o)``, for ``|D| = n_atoms``.

    Depends only on the universe size, not on the particular enumeration.
    """
    if isinstance(value, Atom):
        return atom_bits(n_atoms)
    if isinstance(value, CTuple):
        inner = sum(value_size(item, n_atoms) for item in value.items)
        return 2 + inner + (value.arity - 1)
    if isinstance(value, CSet):
        if not value.elements:
            return 2
        inner = sum(value_size(element, n_atoms) for element in value.elements)
        return 2 + inner + (len(value.elements) - 1)
    raise EncodingError(f"unknown value {value!r}")


def instance_size(inst: Instance, n_atoms: int | None = None) -> int:
    """``||I||``: total tape symbols in the standard encoding of ``I``."""
    if n_atoms is None:
        n_atoms = max(1, len(inst.atoms()))
    total = 0
    for rel in inst.relations():
        total += len(rel.name)
        total += sum(value_size(row, n_atoms) for row in rel.tuples)
    return total


@lru_cache(maxsize=4096)
def domain_encoding_size(typ: Type, n: int) -> int:
    """Exact ``||dom(T, D)||`` for ``|D| = n``: total symbols needed to
    write every object of ``dom(T, D)`` (concatenated), per the encoding
    conventions above.

    Computed analytically:

    * ``U``: ``n * atom_bits(n)``;
    * ``{T'}`` with ``N = |dom(T', D)|``: every object of ``dom(T')``
      appears in ``2**(N-1)`` subsets, separators contribute
      ``N*2**(N-1) - (2**N - 1)``, braces ``2 * 2**N``;
    * ``[T1..Tm]``: each component domain is repeated once per choice of
      the other components, plus ``m-1`` separators and 2 brackets per
      tuple.
    """
    if isinstance(typ, AtomType):
        return n * atom_bits(n)
    if isinstance(typ, SetType):
        inner_card = domain_cardinality(typ.element, n)
        inner_size = domain_encoding_size(typ.element, n)
        if inner_card == 0:
            return 2  # only the empty set
        subsets = 1 << inner_card
        content = (1 << (inner_card - 1)) * inner_size
        separators = inner_card * (1 << (inner_card - 1)) - (subsets - 1)
        braces = 2 * subsets
        return content + separators + braces
    if isinstance(typ, TupleType):
        cards = [domain_cardinality(c, n) for c in typ.components]
        total_tuples = 1
        for card in cards:
            total_tuples *= card
        if total_tuples == 0:
            return 0
        content = 0
        for index, comp in enumerate(typ.components):
            repeats = total_tuples // cards[index] if cards[index] else 0
            content += repeats * domain_encoding_size(comp, n)
        separators = (typ.arity - 1) * total_tuples
        brackets = 2 * total_tuples
        return content + separators + brackets
    raise EncodingError(f"unknown type {typ!r}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

class _Decoder:
    """Recursive-descent decoder for the standard encoding."""

    def __init__(self, text: str, order: AtomOrder):
        self.text = text
        self.order = order
        self.pos = 0
        self.width = atom_bits(len(order))

    def decode_value(self, typ: Type) -> Value:
        if isinstance(typ, AtomType):
            return self._decode_atom()
        if isinstance(typ, TupleType):
            self._expect("[")
            items = [self.decode_value(typ.components[0])]
            for comp in typ.components[1:]:
                self._expect("#")
                items.append(self.decode_value(comp))
            self._expect("]")
            return CTuple(items)
        if isinstance(typ, SetType):
            self._expect("{")
            elements: list[Value] = []
            if self._peek() != "}":
                elements.append(self.decode_value(typ.element))
                while self._peek() == "#":
                    self.pos += 1
                    elements.append(self.decode_value(typ.element))
            self._expect("}")
            return CSet(elements)
        raise EncodingError(f"unknown type {typ!r}")

    def _decode_atom(self) -> Atom:
        bits = self.text[self.pos:self.pos + self.width]
        if len(bits) != self.width or any(b not in "01" for b in bits):
            raise EncodingError(
                f"bad atom code at position {self.pos}: {bits!r}"
            )
        self.pos += self.width
        index = int(bits, 2)
        if index >= len(self.order):
            raise EncodingError(f"atom index {index} out of range")
        return self.order.atoms[index]

    def _peek(self) -> str:
        if self.pos >= len(self.text):
            raise EncodingError("unexpected end of encoding")
        return self.text[self.pos]

    def _expect(self, char: str) -> None:
        got = self._peek()
        if got != char:
            raise EncodingError(
                f"expected {char!r} at position {self.pos}, got {got!r}"
            )
        self.pos += 1

    def decode_relation(self, schema: RelationSchema) -> list[CTuple]:
        name = self.text[self.pos:self.pos + len(schema.name)]
        if name != schema.name:
            raise EncodingError(
                f"expected relation name {schema.name!r} at {self.pos}, got {name!r}"
            )
        self.pos += len(schema.name)
        row_type = TupleType(schema.column_types)
        rows: list[CTuple] = []
        while self.pos < len(self.text) and self._peek() == "[":
            rows.append(self.decode_value(row_type))  # type: ignore[arg-type]
        return rows


def decode_value(text: str, typ: Type, order: AtomOrder) -> Value:
    """Decode a single object encoding back to a value."""
    decoder = _Decoder(text, order)
    value = decoder.decode_value(typ)
    if decoder.pos != len(text):
        raise EncodingError(f"trailing input at {decoder.pos} in {text!r}")
    return value


def decode_instance(
    text: str, schema: DatabaseSchema, order: AtomOrder
) -> Instance:
    """Decode ``enc(I)`` back to an instance of ``schema``.

    Relations must appear in schema order (as :func:`encode_instance`
    produces them).
    """
    decoder = _Decoder(text, order)
    data: dict[str, list[CTuple]] = {}
    for rel_schema in schema:
        data[rel_schema.name] = decoder.decode_relation(rel_schema)
    if decoder.pos != len(text):
        raise EncodingError(f"trailing input at position {decoder.pos}")
    return Instance(schema, data)
