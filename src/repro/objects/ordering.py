"""Induced orderings of complex object domains (Definition 4.2).

Given a total order ``<_U`` on atomic constants, the paper defines an
induced total order ``<_T`` on ``dom(T, D)`` for every type T:

* tuples compare lexicographically component-wise;
* sets compare by their maximal differing element:
  ``o1 <_T o2`` iff ``max(o1 - o2) <_S max(o2 - o1)`` (with the max of the
  empty set below everything).

This module implements the order three equivalent ways, and the tests
check they agree:

1. a direct comparator (:func:`compare`) transliterating Definition 4.2;
2. a sort key (:func:`sort_key`) — the set order equals lexicographic
   comparison of descending-sorted element sequences;
3. arithmetic ranks (:func:`rank` / :func:`unrank`) — the set order equals
   numeric order of the characteristic number ``sum(2**rank(e))``; tuple
   ranks use mixed radix.  Ranks make :func:`successor` and the tape
   indexing of the Theorem 4.1 simulation O(log) instead of enumerative.

The central object is :class:`AtomOrder`, an enumeration of a finite atom
universe D standing for ``<_U``.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from .domains import DEFAULT_MAX_ENUMERATION, DomainTooLarge, domain_cardinality
from .types import AtomType, SetType, TupleType, Type
from .values import Atom, CSet, CTuple, Value


class OrderError(Exception):
    """Raised when a value is outside the ordered universe, etc."""


class AtomOrder:
    """A total order ``<_U`` on a finite set of atomic constants.

    Constructed from an enumeration (sequence) of distinct atoms; the
    enumeration *is* the order.  ``AtomOrder.sorted_by_label(atoms)``
    builds the canonical order sorted by atom label, which is what the
    paper's examples (``abc``, ``abcde``) use.
    """

    __slots__ = ("atoms", "_index")

    def __init__(self, atoms: Iterable[Atom]):
        atoms = tuple(atoms)
        index: dict[Atom, int] = {}
        for position, a in enumerate(atoms):
            if not isinstance(a, Atom):
                raise OrderError(f"expected Atom, got {a!r}")
            if a in index:
                raise OrderError(f"duplicate atom {a!r} in order")
            index[a] = position
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "_index", index)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AtomOrder is immutable")

    @classmethod
    def sorted_by_label(cls, atoms: Iterable[Atom]) -> "AtomOrder":
        """The order sorting atoms by ``(type, label)`` — deterministic."""
        return cls(sorted(atoms, key=lambda a: (str(type(a.label).__name__),
                                                str(a.label))))

    @classmethod
    def from_labels(cls, labels: Iterable[object]) -> "AtomOrder":
        """Build from raw labels, e.g. ``AtomOrder.from_labels("abc")``."""
        return cls(Atom(label) for label in labels)  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __contains__(self, a: object) -> bool:
        return a in self._index

    def index(self, a: Atom) -> int:
        """Position of ``a`` in the order (0-based)."""
        try:
            return self._index[a]
        except KeyError:
            raise OrderError(f"atom {a!r} not in ordered universe") from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomOrder) and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash((AtomOrder, self.atoms))

    def __repr__(self) -> str:
        return f"AtomOrder({''.join(str(a) for a in self.atoms)!r})"


# ---------------------------------------------------------------------------
# 1. Direct comparator (Definition 4.2, verbatim)
# ---------------------------------------------------------------------------

def compare(a: Value, b: Value, order: AtomOrder) -> int:
    """Three-way comparison of two same-typed values under ``<_T``.

    Returns -1, 0 or 1.  Transliterates Definition 4.2: lexicographic on
    tuples; max-differing-element on sets.
    """
    if isinstance(a, Atom) and isinstance(b, Atom):
        ia, ib = order.index(a), order.index(b)
        return (ia > ib) - (ia < ib)
    if isinstance(a, CTuple) and isinstance(b, CTuple):
        if a.arity != b.arity:
            raise OrderError(f"comparing tuples of arities {a.arity}/{b.arity}")
        for item_a, item_b in zip(a.items, b.items):
            result = compare(item_a, item_b, order)
            if result != 0:
                return result
        return 0
    if isinstance(a, CSet) and isinstance(b, CSet):
        only_a = a.elements - b.elements
        only_b = b.elements - a.elements
        if not only_a and not only_b:
            return 0
        if not only_a:
            return -1  # max of empty set is below everything
        if not only_b:
            return 1
        max_a = _max_element(only_a, order)
        max_b = _max_element(only_b, order)
        return compare(max_a, max_b, order)
    raise OrderError(f"cannot compare {a!r} with {b!r}")


def _max_element(elements: Iterable[Value], order: AtomOrder) -> Value:
    """Maximum of a non-empty collection under ``<_S``."""
    best: Value | None = None
    for element in elements:
        if best is None or compare(element, best, order) > 0:
            best = element
    assert best is not None
    return best


def less_than(a: Value, b: Value, order: AtomOrder) -> bool:
    """``a <_T b`` (strict)."""
    return compare(a, b, order) < 0


# ---------------------------------------------------------------------------
# 2. Sort keys
# ---------------------------------------------------------------------------

def sort_key(value: Value, order: AtomOrder) -> tuple:
    """A key such that comparing keys == comparing values under ``<_T``.

    Sets map to their elements' keys sorted descending; lexicographic
    comparison of those sequences (with shorter-prefix-first) coincides
    with the max-differing-element order.
    """
    if isinstance(value, Atom):
        return (order.index(value),)
    if isinstance(value, CTuple):
        return tuple(sort_key(item, order) for item in value.items)
    if isinstance(value, CSet):
        keys = sorted((sort_key(e, order) for e in value.elements), reverse=True)
        return tuple(keys)
    raise OrderError(f"unknown value {value!r}")


def sorted_values(values: Iterable[Value], order: AtomOrder) -> list[Value]:
    """Sort same-typed values ascending under ``<_T``."""
    return sorted(values, key=lambda v: sort_key(v, order))


# ---------------------------------------------------------------------------
# 3. Arithmetic ranks
# ---------------------------------------------------------------------------

def rank(value: Value, typ: Type, order: AtomOrder) -> int:
    """Position of ``value`` in ``dom(typ, D)`` under ``<_T`` (0-based).

    Computed arithmetically: atoms use their index; tuples use mixed-radix
    over component ranks; sets use the characteristic number
    ``sum(2**rank(element))``, which realises exactly the induced order.
    """
    n = len(order)
    if isinstance(typ, AtomType):
        if not isinstance(value, Atom):
            raise OrderError(f"{value!r} is not an atom")
        return order.index(value)
    if isinstance(typ, TupleType):
        if not isinstance(value, CTuple) or value.arity != typ.arity:
            raise OrderError(f"{value!r} does not fit tuple type {typ!r}")
        result = 0
        for item, comp in zip(value.items, typ.components):
            radix = domain_cardinality(comp, n)
            result = result * radix + rank(item, comp, order)
        return result
    if isinstance(typ, SetType):
        if not isinstance(value, CSet):
            raise OrderError(f"{value!r} is not a set")
        result = 0
        for element in value.elements:
            result += 1 << rank(element, typ.element, order)
        return result
    raise OrderError(f"unknown type {typ!r}")


def unrank(position: int, typ: Type, order: AtomOrder) -> Value:
    """Inverse of :func:`rank`: the ``position``-th value of ``dom(typ, D)``."""
    n = len(order)
    total = domain_cardinality(typ, n)
    if not 0 <= position < total:
        raise OrderError(f"rank {position} out of range [0, {total}) for {typ!r}")
    if isinstance(typ, AtomType):
        return order.atoms[position]
    if isinstance(typ, TupleType):
        radices = [domain_cardinality(c, n) for c in typ.components]
        digits: list[int] = []
        for radix in reversed(radices):
            digits.append(position % radix)
            position //= radix
        digits.reverse()
        return CTuple(
            unrank(digit, comp, order)
            for digit, comp in zip(digits, typ.components)
        )
    if isinstance(typ, SetType):
        elements = []
        bit = 0
        while position:
            if position & 1:
                elements.append(unrank(bit, typ.element, order))
            position >>= 1
            bit += 1
        return CSet(elements)
    raise OrderError(f"unknown type {typ!r}")


def successor(value: Value, typ: Type, order: AtomOrder) -> Value | None:
    """The successor of ``value`` in ``dom(typ, D)``, or None if maximal."""
    position = rank(value, typ, order) + 1
    if position >= domain_cardinality(typ, len(order)):
        return None
    return unrank(position, typ, order)


def minimum(typ: Type, order: AtomOrder) -> Value:
    """The minimal element of ``dom(typ, D)`` under ``<_T``."""
    return unrank(0, typ, order)


def maximum(typ: Type, order: AtomOrder) -> Value:
    """The maximal element of ``dom(typ, D)`` under ``<_T``."""
    return unrank(domain_cardinality(typ, len(order)) - 1, typ, order)


def ordered_domain(
    typ: Type,
    order: AtomOrder,
    max_size: int | None = DEFAULT_MAX_ENUMERATION,
) -> Iterator[Value]:
    """Enumerate ``dom(typ, D)`` in increasing induced order.

    Guarded by ``max_size`` like :func:`repro.objects.domains.enumerate_domain`.
    """
    total = domain_cardinality(typ, len(order))
    if max_size is not None and total > max_size:
        raise DomainTooLarge(f"|dom({typ!r})| = {total} > cap {max_size}")
    for position in range(total):
        yield unrank(position, typ, order)


def tuple_rank(values: Sequence[Value], types: Sequence[Type],
               order: AtomOrder) -> int:
    """Rank of an m-tuple of values in the lexicographic product order.

    Used for the m-tuple timestamps/cell indices of the Theorem 4.1
    simulation, where the tuple is not wrapped in a CTuple.
    """
    result = 0
    for value, typ in zip(values, types):
        radix = domain_cardinality(typ, len(order))
        result = result * radix + rank(value, typ, order)
    return result


def tuple_unrank(position: int, types: Sequence[Type],
                 order: AtomOrder) -> tuple[Value, ...]:
    """Inverse of :func:`tuple_rank`."""
    radices = [domain_cardinality(t, len(order)) for t in types]
    digits: list[int] = []
    for radix in reversed(radices):
        digits.append(position % radix)
        position //= radix
    if position:
        raise OrderError("rank out of range for tuple_unrank")
    digits.reverse()
    return tuple(
        unrank(digit, typ, order) for digit, typ in zip(digits, types)
    )


def all_atom_orders(atoms: Iterable[Atom]) -> Iterator[AtomOrder]:
    """All |D|! enumerations of an atom universe (for invariance tests)."""
    for permutation in itertools.permutations(tuple(atoms)):
        yield AtomOrder(permutation)
