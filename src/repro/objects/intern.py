"""Value interning: dense integer ids for complex objects.

The engines of Sections 3-5 manipulate nested ``Atom``/``CTuple``/``CSet``
objects whose structural ``__eq__``/``__hash__`` walk the whole value on
every probe.  A :class:`ValueStore` replaces each distinct value by a
dense integer id assigned at construction via structural hashing: two
values receive the same id iff they are structurally equal, so relation
rows become tuples of machine ints and joins compare ids instead of
trees.  :class:`ColumnTable` packs such id-rows into ``array('q')``
columns — the columnar EDB representation the indexed semi-naive engine
(``datalog/engine.py``) probes.

Id assignment by :meth:`ValueStore.from_instance` is deterministic and
order-aware.  Values are collected under their *declared* column types
(inference would reject heterogeneous-but-conformant sets), grouped by
type, and the groups are processed in ascending type depth — a proper
subobject always has a strict-subterm type, hence a strictly smaller
depth, hence an earlier id.  Within one group the values are sorted by
the induced order ``<_T`` of Definition 4.2, so

    for values ``a``, ``b`` of the same declared type whose ids were
    both first assigned while processing that type's group,
    ``store.intern(a) < store.intern(b)``  iff  ``a <_T b``.

The guarantee is per declared type: a value conforming to several
declared types (e.g. ``[x, {}]`` under both ``[U,{U}]`` and
``[U,{{U}}]``) keeps the id of the earliest (smallest-depth) group that
contains it, and a perfect global order cannot exist across such shared
values.  Atoms always form the depth-1 group, so atom ids are exactly
their :class:`~repro.objects.ordering.AtomOrder` ranks.  Because the
collection and sorts are deterministic, re-parsing the same instance
(e.g. through ``instance_to_json``/``instance_from_json``) reproduces
the same id for every value — ids are stable names within an instance.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Mapping

from .instance import Instance
from .ordering import AtomOrder, sort_key
from .types import AtomType, SetType, TupleType, Type
from .values import Atom, CSet, CTuple, Value

__all__ = [
    "InternError",
    "ValueStore",
    "ColumnTable",
    "intern_instance",
    "type_depth",
]


class InternError(Exception):
    """Raised for values a store cannot intern or ids it does not know."""


def type_depth(typ: Type) -> int:
    """Structural depth of a type expression: ``depth(U) = 1``,
    ``depth({T}) = depth(T) + 1``, ``depth([T1..Tk]) = 1 + max depth``.

    Every proper subobject of a ``T``-value has a strict-subterm type of
    ``T``, so its depth is strictly smaller — the invariant
    :meth:`ValueStore.from_instance` relies on for bottom-up ids.
    """
    if isinstance(typ, AtomType):
        return 1
    if isinstance(typ, SetType):
        return 1 + type_depth(typ.element)
    if isinstance(typ, TupleType):
        return 1 + max(type_depth(c) for c in typ.components)
    raise InternError(f"unknown type {typ!r}")


class ValueStore:
    """A per-instance intern table: structural value ⟷ dense integer id.

    Ids are assigned on first :meth:`intern` in increasing order; the
    structural key of an atom is its label, of a tuple the tuple of its
    component ids, of a set the frozenset of its element ids — so
    interning is injective by construction (equal ids iff structurally
    equal values) and membership/equality on ids coincide with the
    object-level semantics.
    """

    __slots__ = ("_ids", "_keys", "_values")

    def __init__(self) -> None:
        # key -> id; keys are ("a", label) | ("t", id-tuple) | ("s", id-frozenset)
        self._ids: dict[tuple, int] = {}
        self._keys: list[tuple] = []
        self._values: list[Value | None] = []  # lazy reconstruction cache

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, value: object) -> bool:
        try:
            key = self._key_of(value)  # type: ignore[arg-type]
        except InternError:
            return False
        return key in self._ids

    def _key_of(self, value: Value) -> tuple:
        """The structural key of ``value`` **without** interning it.

        Raises :class:`InternError` when some subobject is unknown."""
        if isinstance(value, Atom):
            key: tuple = ("a", value.label)
        elif isinstance(value, CTuple):
            key = ("t", tuple(self._lookup(item) for item in value.items))
        elif isinstance(value, CSet):
            key = ("s", frozenset(self._lookup(e) for e in value.elements))
        else:
            raise InternError(f"cannot intern non-Value {value!r}")
        return key

    def _lookup(self, value: Value) -> int:
        vid = self._ids.get(self._key_of(value))
        if vid is None:
            raise InternError(f"value not interned: {value!r}")
        return vid

    def _add(self, key: tuple, value: Value | None) -> int:
        vid = len(self._keys)
        self._ids[key] = vid
        self._keys.append(key)
        self._values.append(value)
        return vid

    def intern(self, value: Value) -> int:
        """Return the dense id of ``value``, assigning one (and ids for
        all its subobjects) on first sight."""
        if isinstance(value, Atom):
            key: tuple = ("a", value.label)
        elif isinstance(value, CTuple):
            key = ("t", tuple(self.intern(item) for item in value.items))
        elif isinstance(value, CSet):
            key = ("s", frozenset(self.intern(e) for e in value.elements))
        else:
            raise InternError(f"cannot intern non-Value {value!r}")
        vid = self._ids.get(key)
        if vid is None:
            vid = self._add(key, value)
        elif self._values[vid] is None:
            self._values[vid] = value
        return vid

    def intern_row(self, row: Iterable[Value]) -> tuple[int, ...]:
        return tuple(self.intern(value) for value in row)

    def value(self, vid: int) -> Value:
        """The value named by ``vid`` (inverse of :meth:`intern`)."""
        try:
            cached = self._values[vid]
        except (IndexError, TypeError):
            raise InternError(f"unknown value id {vid!r}") from None
        if cached is not None:
            return cached
        kind, payload = self._keys[vid]
        if kind == "a":
            rebuilt: Value = Atom(payload)
        elif kind == "t":
            rebuilt = CTuple(self.value(i) for i in payload)
        else:
            rebuilt = CSet(self.value(i) for i in payload)
        self._values[vid] = rebuilt
        return rebuilt

    def unintern_row(self, ids: Iterable[int]) -> tuple[Value, ...]:
        return tuple(self.value(vid) for vid in ids)

    # -- id-level structure (what the interned engines operate on) --------

    def kind(self, vid: int) -> str:
        """``"atom"`` | ``"tuple"`` | ``"set"`` of the value behind ``vid``."""
        try:
            tag = self._keys[vid][0]
        except IndexError:
            raise InternError(f"unknown value id {vid!r}") from None
        return {"a": "atom", "t": "tuple", "s": "set"}[tag]

    def tuple_items(self, vid: int) -> tuple[int, ...] | None:
        """Component ids of a tuple value, ``None`` if not a tuple."""
        kind, payload = self._keys[vid]
        return payload if kind == "t" else None

    def set_members(self, vid: int) -> frozenset[int] | None:
        """Element ids of a set value, ``None`` if not a set."""
        kind, payload = self._keys[vid]
        return payload if kind == "s" else None

    def intern_tuple(self, item_ids: Iterable[int]) -> int:
        """Id of the tuple whose components are the given ids (building
        the structural key directly, no object materialisation)."""
        key = ("t", tuple(item_ids))
        self._check_ids(key[1])
        vid = self._ids.get(key)
        return self._add(key, None) if vid is None else vid

    def intern_set(self, member_ids: Iterable[int]) -> int:
        """Id of the set whose elements are the given ids."""
        key = ("s", frozenset(member_ids))
        self._check_ids(key[1])
        vid = self._ids.get(key)
        return self._add(key, None) if vid is None else vid

    def _check_ids(self, ids: Iterable[int]) -> None:
        total = len(self._keys)
        for vid in ids:
            if not 0 <= vid < total:
                raise InternError(f"unknown value id {vid!r}")

    # -- deterministic, order-compatible construction ----------------------

    @classmethod
    def from_instance(cls, inst: Instance,
                      order: AtomOrder | None = None) -> "ValueStore":
        """Intern every value occurring in ``inst`` deterministically.

        ``order`` defaults to ``AtomOrder.sorted_by_label(inst.atoms())``
        and must cover every atom of the instance.  See the module
        docstring for the order-compatibility guarantee.
        """
        if order is None:
            order = AtomOrder.sorted_by_label(inst.atoms())
        groups: dict[Type, set[Value]] = {}
        for rel in inst.relations():
            column_types = rel.schema.column_types
            for row in rel.tuples:
                for value, typ in zip(row.items, column_types):
                    _collect_typed(value, typ, groups)
        store = cls()
        # Atoms first (their group may be empty for atom-free instances,
        # but any atom mentioned by `order` still gets its rank as id).
        for atom_ in order.atoms:
            store.intern(atom_)
        for typ in sorted(groups, key=lambda t: (type_depth(t), repr(t))):
            for value in sorted(groups[typ], key=lambda v: sort_key(v, order)):
                store.intern(value)
        return store


def _collect_typed(value: Value, typ: Type,
                   groups: dict[Type, set[Value]]) -> None:
    """Record ``value`` under its declared type, recursing into subobjects
    (instance construction already typechecked conformance)."""
    groups.setdefault(typ, set()).add(value)
    if isinstance(value, CTuple) and isinstance(typ, TupleType):
        for item, component in zip(value.items, typ.components):
            _collect_typed(item, component, groups)
    elif isinstance(value, CSet) and isinstance(typ, SetType):
        for element in value.elements:
            _collect_typed(element, typ.element, groups)


class ColumnTable:
    """Interned rows stored column-major in ``array('q')`` buffers.

    The columnar layout keeps each relation's ids in contiguous machine
    ints; ``rows()`` re-zips them on demand and ``to_frozenset`` is the
    set-of-rows view the fixpoint protocols union over.
    """

    __slots__ = ("columns", "_length")

    def __init__(self, rows: Iterable[tuple[int, ...]], arity: int | None = None):
        materialized = [tuple(row) for row in rows]
        if arity is None:
            arity = len(materialized[0]) if materialized else 0
        columns = tuple(array("q") for _ in range(arity))
        for row in materialized:
            if len(row) != arity:
                raise InternError(
                    f"row {row!r} does not match table arity {arity}")
            for column, vid in zip(columns, row):
                column.append(vid)
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "_length", len(materialized))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ColumnTable is immutable")

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self._length

    def row(self, i: int) -> tuple[int, ...]:
        return tuple(column[i] for column in self.columns)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for i in range(self._length):
            yield tuple(column[i] for column in self.columns)

    def to_frozenset(self) -> frozenset[tuple[int, ...]]:
        return frozenset(self)


def intern_instance(
    inst: Instance,
    order: AtomOrder | None = None,
    store: ValueStore | None = None,
) -> tuple[ValueStore, Mapping[str, ColumnTable]]:
    """Intern ``inst`` into ``(store, {relation name: ColumnTable})``.

    Table rows are sorted by id-tuple, so the columnar buffers (not just
    the id assignment) are reproducible across re-parses.
    """
    if store is None:
        store = ValueStore.from_instance(inst, order)
    tables = {}
    for rel in inst.relations():
        id_rows = sorted(store.intern_row(row.items) for row in rel.tuples)
        tables[rel.name] = ColumnTable(id_rows, arity=rel.schema.arity)
    return store, tables
