"""Domains of complex object types.

Implements ``dom(T, D)`` — the set of objects of type ``T`` over a finite
set ``D`` of atomic constants — together with

* exact (big-integer) cardinality arithmetic ``|dom(T, D)|``,
* lazy and materialised enumeration of ``dom(T, D)``,
* the union domain ``dom(i, k, D)`` over all ``<i,k>``-types, and
* the hyperexponential bound ``hyper(i, k)(n)`` from Section 2.

Domain cardinalities explode hyperexponentially; every function that
could materialise or compute an astronomically large object takes an
explicit cap and raises :class:`DomainTooLarge` instead of hanging.

Following the paper (proof of Proposition 2.1) we use the normal form in
which tuple constructors are never nested directly inside tuple
constructors — there is always a set constructor between two nested
tuples.  ``all_ik_types`` enumerates exactly the normalised
``<i,k>``-types, which makes ``dom(i, k, D)`` a finite (typed, disjoint)
union.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterator, Sequence

from ..obs import get_tracer
from ..obs.metrics import value_node_count
from .types import AtomType, SetType, TupleType, Type
from .values import Atom, CSet, CTuple, Value

#: Default guard: refuse to compute exact integers with more than this
#: many bits (the value still fits comfortably in memory; the guard exists
#: to keep *towers* of exponentials from being attempted).
DEFAULT_MAX_BITS = 1_000_000

#: Default guard for materialised enumeration.
DEFAULT_MAX_ENUMERATION = 1_000_000


class DomainTooLarge(Exception):
    """Raised when a domain is too large for the requested operation."""


def hyper(i: int, k: int, n: int, max_bits: int = DEFAULT_MAX_BITS) -> int:
    """The hyperexponential function ``hyper(i, k)(n)`` of Section 2.

    ``hyper(0, k)(n) = n**k`` and
    ``hyper(i, k)(n) = 2**(k * hyper(i-1, k)(n))`` — a tower of ``i``
    exponentials.  It bounds ``|dom(T, D)|`` for every ``<i,k>``-type T
    with ``|D| = n``.

    Raises :class:`DomainTooLarge` if the result would exceed ``max_bits``
    bits.
    """
    if i < 0 or k < 0 or n < 0:
        raise ValueError("hyper arguments must be non-negative")
    value = n**k
    for _ in range(i):
        exponent = k * value
        if exponent > max_bits:
            # Avoid str()-ing an astronomically large exponent.
            raise DomainTooLarge(
                f"hyper({i},{k})({n}) needs an exponent of about "
                f"2**{exponent.bit_length() - 1} bits (> {max_bits})"
            )
        value = 2**exponent
    return value


def hyper_log2(i: int, k: int, n: int) -> float:
    """``log2(hyper(i, k)(n))`` computed without building the tower.

    Exact for ``i <= 1``; for larger ``i`` the tower itself is the
    exponent, so the *value* is returned as ``k * hyper(i-1, k)(n)`` when
    that fits, else :class:`DomainTooLarge` is raised.
    """
    import math

    if i == 0:
        return k * math.log2(n) if n > 0 else float("-inf")
    return float(k * hyper(i - 1, k, n))


def domain_cardinality(typ: Type, n: int, max_bits: int = DEFAULT_MAX_BITS) -> int:
    """Exact ``|dom(typ, D)|`` for ``|D| = n`` as a Python big integer.

    * ``|dom(U)| = n``
    * ``|dom({T})| = 2**|dom(T)|``
    * ``|dom([T1..Tm])| = prod |dom(Tj)|``

    Raises :class:`DomainTooLarge` when a power-set exponent exceeds
    ``max_bits``.
    """
    if isinstance(typ, AtomType):
        return n
    if isinstance(typ, SetType):
        inner = domain_cardinality(typ.element, n, max_bits)
        if inner > max_bits:
            raise DomainTooLarge(
                f"|dom({typ!r})| = 2**{inner} exceeds {max_bits} bits"
            )
        return 2**inner
    if isinstance(typ, TupleType):
        result = 1
        for comp in typ.components:
            result *= domain_cardinality(comp, n, max_bits)
            if result.bit_length() > max_bits:
                raise DomainTooLarge(f"|dom({typ!r})| exceeds {max_bits} bits")
        return result
    raise TypeError(f"unknown type {typ!r}")


def enumerate_domain(
    typ: Type,
    atoms: Sequence[Atom],
    max_size: int | None = DEFAULT_MAX_ENUMERATION,
) -> Iterator[Value]:
    """Lazily enumerate ``dom(typ, D)`` for ``D = atoms``.

    The enumeration order is deterministic given the order of ``atoms``
    (but it is *not* the paper's induced order ``<_T``; see
    :func:`repro.objects.ordering.ordered_domain` for that).

    If ``max_size`` is not None, :class:`DomainTooLarge` is raised up
    front when ``|dom(typ, D)| > max_size``.
    """
    atoms = list(atoms)
    if max_size is not None:
        cardinality = domain_cardinality(typ, len(atoms))
        if cardinality > max_size:
            raise DomainTooLarge(
                f"|dom({typ!r}, D)| = {cardinality} > cap {max_size}"
            )
    yield from _enumerate(typ, atoms)


def _enumerate(typ: Type, atoms: list[Atom]) -> Iterator[Value]:
    if isinstance(typ, AtomType):
        yield from atoms
        return
    if isinstance(typ, SetType):
        inner = list(_enumerate(typ.element, atoms))
        for size in range(len(inner) + 1):
            for combo in itertools.combinations(inner, size):
                yield CSet(combo)
        return
    if isinstance(typ, TupleType):
        component_domains = [list(_enumerate(c, atoms)) for c in typ.components]
        for combo in itertools.product(*component_domains):
            yield CTuple(combo)
        return
    raise TypeError(f"unknown type {typ!r}")


def materialize_domain(
    typ: Type,
    atoms: Sequence[Atom],
    max_size: int | None = DEFAULT_MAX_ENUMERATION,
) -> list[Value]:
    """Materialise ``dom(typ, D)`` as a list (guarded by ``max_size``).

    This is the chokepoint every domain materialisation funnels through,
    so space accounting lives here: the active tracer receives the value
    count, the deep node count (every atom/tuple/set node of every
    materialised object), and a histogram observation of the domain
    cardinality — the quantity ``hyper(i, k)`` bounds.
    """
    values = list(enumerate_domain(typ, atoms, max_size))
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("space.domain_values", len(values))
        tracer.count(
            "space.domain_nodes",
            sum(value_node_count(value) for value in values),
        )
        tracer.observe("space.domain_cardinality", len(values))
    return values


@lru_cache(maxsize=256)
def all_ik_types(i: int, k: int) -> tuple[Type, ...]:
    """All normalised ``<i,k>``-types, as a deterministic tuple.

    Normal form: tuple components are either ``U`` or set types (no tuple
    directly inside a tuple), matching the assumption in the proof of
    Proposition 2.1.  For fixed ``i`` and ``k`` the collection is finite.

    The count grows extremely fast with ``i`` and ``k``; callers should
    keep ``i <= 2`` and ``k <= 3`` (the tests document the exact counts).
    """
    if i < 0 or k < 0:
        raise ValueError("i and k must be non-negative")

    def build(h: int) -> list[Type]:
        """All normalised types of set height <= h (width bounded by k)."""
        result: list[Type] = [AtomType()]
        set_types: list[Type] = []
        if h >= 1:
            # Set types {T} where T is normalised of height <= h-1.
            set_types = [SetType(t) for t in build(h - 1)]
            result.extend(set_types)
        if k >= 2:
            # Tuple types of width 2..k; components are U or the set types
            # above (no tuple directly inside a tuple).
            comps: list[Type] = [AtomType()] + set_types
            for width in range(2, k + 1):
                for combo in itertools.product(comps, repeat=width):
                    result.append(TupleType(combo))
        return result

    return tuple(t for t in build(i) if t.is_ik_type(i, k))


def dom_ik_cardinality(i: int, k: int, n: int, max_bits: int = DEFAULT_MAX_BITS) -> int:
    """``|dom(i, k, D)|`` for ``|D| = n``.

    Computed as the sum of ``|dom(T, D)|`` over all normalised
    ``<i,k>``-types T (the typed disjoint-union convention).  This is
    polynomially equivalent to ``hyper(i, k)(n)``, which is all the
    density/sparsity definitions require.
    """
    total = 0
    for typ in all_ik_types(i, k):
        total += domain_cardinality(typ, n, max_bits)
    return total


def subset_count_at_least(universe: int, threshold: int) -> bool:
    """Return True iff ``2**universe >= threshold`` without overflow risk."""
    if threshold <= 1:
        return True
    return universe >= (threshold - 1).bit_length()
