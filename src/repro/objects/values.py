"""Immutable, hashable complex object values.

Complex objects are built from atomic constants with set and tuple
constructors (Section 2 of the paper).  Python's built-in ``set`` is not
hashable, so nested sets cannot directly contain other sets; this module
provides the immutable value layer the whole engine is built on:

* :class:`Atom` — an atomic constant (wraps a string or int label);
* :class:`CTuple` — a ``k``-ary tuple of complex objects;
* :class:`CSet` — a finite set of complex objects (wraps ``frozenset``).

All three are deeply immutable, hashable, and compare structurally, so
they can be members of other ``CSet``/``CTuple`` values and of ordinary
Python sets and dict keys.

Convenience constructors :func:`atom`, :func:`ctuple`, :func:`cset` and
the generic :func:`make_value` (which converts plain Python nested
structures) keep call sites terse.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from .types import AtomType, SetType, TupleType, Type, U


class ValueError_(Exception):
    """Raised when a complex object value is malformed or ill-typed."""


AtomLabel = Union[str, int]


class Value:
    """Abstract base class for complex object values."""

    __slots__ = ()

    def atoms(self) -> frozenset["Atom"]:
        """Return ``atom(O)``: the set of atomic constants occurring in self."""
        raise NotImplementedError

    def infer_type(self) -> Type:
        """Infer a type for this value.

        Empty sets infer as ``{U}`` (the minimal set type); sets whose
        elements infer distinct types raise :class:`ValueError_` since the
        model is strongly typed.
        """
        raise NotImplementedError

    def conforms_to(self, typ: Type) -> bool:
        """Return True iff this value is a member of ``dom(typ, D)``
        for some superset D of its atoms."""
        raise NotImplementedError

    def depth_counts(self) -> dict[Type, int]:
        """Count sub-objects per inferred type (used by density analysis)."""
        counts: dict[Type, int] = {}
        for sub in self.subobjects():
            typ = sub.infer_type()
            counts[typ] = counts.get(typ, 0) + 1
        return counts

    def subobjects(self) -> Iterator["Value"]:
        """Yield this value and all its sub-objects, pre-order."""
        raise NotImplementedError


class Atom(Value):
    """An atomic constant.

    Atoms are identified by their label (a string or int).  Two atoms are
    equal iff their labels are equal.  Labels only serve identity; queries
    must be generic (insensitive to isomorphisms of constants), which the
    test suite checks explicitly.
    """

    __slots__ = ("label",)

    def __init__(self, label: AtomLabel):
        if not isinstance(label, (str, int)) or isinstance(label, bool):
            raise ValueError_(f"atom label must be str or int, got {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    def atoms(self) -> frozenset["Atom"]:
        return frozenset((self,))

    def infer_type(self) -> Type:
        return U

    def conforms_to(self, typ: Type) -> bool:
        return isinstance(typ, AtomType)

    def subobjects(self) -> Iterator[Value]:
        yield self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and self.label == other.label

    def __hash__(self) -> int:
        return hash((Atom, self.label))

    def __repr__(self) -> str:
        return f"Atom({self.label!r})"

    def __str__(self) -> str:
        return str(self.label)


class CTuple(Value):
    """A ``k``-ary tuple ``[o1, ..., ok]`` of complex objects."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Value]):
        items = tuple(items)
        if not items:
            raise ValueError_("tuples must have at least one component")
        for item in items:
            if not isinstance(item, Value):
                raise ValueError_(f"tuple component must be a Value, got {item!r}")
        object.__setattr__(self, "items", items)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CTuple is immutable")

    @property
    def arity(self) -> int:
        return len(self.items)

    def component(self, i: int) -> Value:
        """Return the ``i``-th component, 1-indexed (the paper's ``o.i``)."""
        if not 1 <= i <= len(self.items):
            raise ValueError_(
                f"component index {i} out of range for arity {len(self.items)}"
            )
        return self.items[i - 1]

    def atoms(self) -> frozenset[Atom]:
        result: frozenset[Atom] = frozenset()
        for item in self.items:
            result |= item.atoms()
        return result

    def infer_type(self) -> Type:
        return TupleType(item.infer_type() for item in self.items)

    def conforms_to(self, typ: Type) -> bool:
        if not isinstance(typ, TupleType) or typ.arity != self.arity:
            return False
        return all(
            item.conforms_to(comp) for item, comp in zip(self.items, typ.components)
        )

    def subobjects(self) -> Iterator[Value]:
        yield self
        for item in self.items:
            yield from item.subobjects()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CTuple) and self.items == other.items

    def __hash__(self) -> int:
        return hash((CTuple, self.items))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(i) for i in self.items) + "]"

    def __str__(self) -> str:
        return "[" + ", ".join(str(i) for i in self.items) + "]"


class CSet(Value):
    """A finite set ``{o1, ..., on}`` of complex objects.

    Backed by ``frozenset`` so it is hashable and can be nested.  Elements
    must all conform to a common type; the empty set is allowed and
    conforms to every set type.
    """

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[Value] = ()):
        elements = frozenset(elements)
        for element in elements:
            if not isinstance(element, Value):
                raise ValueError_(f"set element must be a Value, got {element!r}")
        object.__setattr__(self, "elements", elements)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CSet is immutable")

    def atoms(self) -> frozenset[Atom]:
        result: frozenset[Atom] = frozenset()
        for element in self.elements:
            result |= element.atoms()
        return result

    def infer_type(self) -> Type:
        if not self.elements:
            return SetType(U)
        types = {element.infer_type() for element in self.elements}
        if len(types) > 1:
            raise ValueError_(
                f"heterogeneous set: element types {sorted(map(repr, types))}"
            )
        return SetType(next(iter(types)))

    def conforms_to(self, typ: Type) -> bool:
        if not isinstance(typ, SetType):
            return False
        return all(element.conforms_to(typ.element) for element in self.elements)

    def subobjects(self) -> Iterator[Value]:
        yield self
        for element in self.elements:
            yield from element.subobjects()

    # Set-algebra helpers used by the evaluator (∈, ⊆, set difference in
    # the induced-order definition).

    def contains(self, value: Value) -> bool:
        return value in self.elements

    def issubset(self, other: "CSet") -> bool:
        return self.elements <= other.elements

    def union(self, other: "CSet") -> "CSet":
        return CSet(self.elements | other.elements)

    def intersection(self, other: "CSet") -> "CSet":
        return CSet(self.elements & other.elements)

    def difference(self, other: "CSet") -> "CSet":
        return CSet(self.elements - other.elements)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CSet) and self.elements == other.elements

    def __hash__(self) -> int:
        return hash((CSet, self.elements))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, value: object) -> bool:
        return value in self.elements

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(e) for e in self.elements))
        return "{" + inner + "}"

    def __str__(self) -> str:
        inner = ", ".join(sorted(str(e) for e in self.elements))
        return "{" + inner + "}"


def atom(label: AtomLabel) -> Atom:
    """Build an atomic constant."""
    return Atom(label)


def ctuple(*items: Value) -> CTuple:
    """Build a tuple value from its components."""
    return CTuple(items)


def cset(*elements: Value) -> CSet:
    """Build a set value from its elements."""
    return CSet(elements)


def make_value(obj: object) -> Value:
    """Convert a nested plain-Python structure into a complex object.

    * ``str``/``int`` → :class:`Atom`
    * ``tuple``/``list`` → :class:`CTuple` (component-wise conversion)
    * ``set``/``frozenset`` → :class:`CSet` (element-wise conversion)
    * existing :class:`Value` instances pass through unchanged.

    Example::

        make_value(("a", {"b", "c"}))   # [a, {b, c}] of type [U, {U}]
    """
    if isinstance(obj, Value):
        return obj
    if isinstance(obj, (str, int)) and not isinstance(obj, bool):
        return Atom(obj)
    if isinstance(obj, (tuple, list)):
        return CTuple(make_value(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return CSet(make_value(item) for item in obj)
    raise ValueError_(f"cannot convert {obj!r} to a complex object value")


def value_sort_key(value: Value) -> tuple:
    """A deterministic structural sort key (NOT the paper's induced order).

    Useful for reproducible display and iteration.  For the paper's
    semantics-bearing order ``<_T`` induced by an atom order, see
    :mod:`repro.objects.ordering`.
    """
    if isinstance(value, Atom):
        return (0, (type(value.label).__name__, str(value.label)))
    if isinstance(value, CTuple):
        return (1, tuple(value_sort_key(item) for item in value.items))
    if isinstance(value, CSet):
        return (2, len(value.elements),
                tuple(sorted(value_sort_key(e) for e in value.elements)))
    raise ValueError_(f"unknown value {value!r}")
