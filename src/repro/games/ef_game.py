"""Ehrenfeucht-Fraissé games over complex object structures.

The separation results the paper leans on — ``CALC_i ⊊ CALC_i + IFP``,
used to motivate Proposition 5.2 — were proved in [GV90] "based on an
extension of Ehrenfeucht-Fraissé games to complex objects".  This module
implements the game so the separation phenomenon is *observable*:

* an **r-round game** on two instances: each round the spoiler picks a
  value of an allowed pebble type from either structure's domain, the
  duplicator answers in the other; the duplicator survives iff the
  pebble maps stay *partially isomorphic* — agreeing on every atomic
  formula (``R(...)``, ``=``, ``in``, ``sub``) over the pebbles;
* :func:`duplicator_wins` decides the game by exhaustive minimax with
  memoisation — feasible for the small structures the classic
  counterexamples need;
* the standard consequence: if the duplicator wins the r-round game,
  no calculus sentence of quantifier rank <= r (over the allowed pebble
  types, without fixpoints) distinguishes the structures — while a
  fixpoint query may.  The tests stage exactly that on the classic
  C6 vs C3+C3 pair.
"""

from __future__ import annotations

from typing import Sequence

from ..objects.domains import materialize_domain
from ..objects.instance import Instance
from ..objects.types import Type, TypeLike, as_type
from ..objects.values import CSet, CTuple, Value

__all__ = ["GameError", "partially_isomorphic", "duplicator_wins"]


class GameError(Exception):
    """Raised when a game cannot be set up (schema mismatch, caps)."""


def _atomic_profile(pebbles: Sequence[tuple[Value, Type]],
                    inst: Instance) -> tuple:
    """All atomic facts over the pebbles, as a hashable profile.

    Covers equality, membership and containment between compatible
    pebbles, and membership of pebble tuples in each database relation.
    """
    facts = []
    for i, (vi, ti) in enumerate(pebbles):
        for j, (vj, tj) in enumerate(pebbles):
            if i == j:
                continue
            if ti == tj:
                facts.append(("eq", i, j, vi == vj))
            from ..objects.types import SetType

            if isinstance(tj, SetType) and tj.element == ti \
                    and isinstance(vj, CSet):
                facts.append(("in", i, j, vi in vj))
            if (ti == tj and isinstance(ti, SetType)
                    and isinstance(vi, CSet) and isinstance(vj, CSet)):
                facts.append(("sub", i, j, vi.issubset(vj)))
    for rel in inst.relations():
        arity = rel.schema.arity
        column_types = rel.schema.column_types
        indices = [
            [i for i, (_, t) in enumerate(pebbles) if t == column_types[c]]
            for c in range(arity)
        ]
        import itertools

        for combo in itertools.product(*indices):
            row = CTuple(pebbles[i][0] for i in combo)
            facts.append(("rel", rel.name, combo,
                          row in rel.tuples))
    return tuple(sorted(facts, key=repr))


def partially_isomorphic(
    pebbles_a: Sequence[tuple[Value, Type]],
    inst_a: Instance,
    pebbles_b: Sequence[tuple[Value, Type]],
    inst_b: Instance,
) -> bool:
    """Do the two pebble sequences satisfy the same atomic formulas?"""
    if len(pebbles_a) != len(pebbles_b):
        return False
    for (_, ta), (_, tb) in zip(pebbles_a, pebbles_b):
        if ta != tb:
            return False
    return (_atomic_profile(pebbles_a, inst_a)
            == _atomic_profile(pebbles_b, inst_b))


def duplicator_wins(
    inst_a: Instance,
    inst_b: Instance,
    rounds: int,
    pebble_types: Sequence[TypeLike] = ("U",),
    max_domain: int = 4096,
) -> bool:
    """Decide the r-round EF game (exhaustive, memoised).

    ``pebble_types`` are the types the spoiler may play (the paper's
    CALC_i^k games allow all <i,k>-types; restrict to keep the search
    finite).  Raises :class:`DomainTooLarge` if a pebble domain exceeds
    ``max_domain``.
    """
    if inst_a.schema != inst_b.schema:
        raise GameError("EF games need a common schema")
    types = tuple(as_type(t) for t in pebble_types)

    def domain(inst: Instance, typ: Type) -> tuple[Value, ...]:
        atoms = sorted(inst.atoms(), key=lambda a: str(a.label))
        return tuple(materialize_domain(typ, atoms, max_domain))

    domains_a = {typ: domain(inst_a, typ) for typ in types}
    domains_b = {typ: domain(inst_b, typ) for typ in types}

    from functools import lru_cache as _lru

    @_lru(maxsize=None)
    def wins(pebbles_a: tuple, pebbles_b: tuple, remaining: int) -> bool:
        if not partially_isomorphic(pebbles_a, inst_a, pebbles_b, inst_b):
            return False
        if remaining == 0:
            return True
        for typ in types:
            # Spoiler plays in A; duplicator must answer in B.
            for value_a in domains_a[typ]:
                if not any(
                    wins(pebbles_a + ((value_a, typ),),
                         pebbles_b + ((value_b, typ),), remaining - 1)
                    for value_b in domains_b[typ]
                ):
                    return False
            # Spoiler plays in B; duplicator must answer in A.
            for value_b in domains_b[typ]:
                if not any(
                    wins(pebbles_a + ((value_a, typ),),
                         pebbles_b + ((value_b, typ),), remaining - 1)
                    for value_a in domains_a[typ]
                ):
                    return False
        return True

    return wins((), (), rounds)
