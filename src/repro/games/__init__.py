"""Ehrenfeucht-Fraisse games for complex objects ([GV90], cited for the
CALC_i vs CALC_i+IFP separation)."""

from .ef_game import GameError, duplicator_wins, partially_isomorphic

__all__ = ["GameError", "duplicator_wins", "partially_isomorphic"]
