"""repro — Tractable Query Languages for Complex Object Databases.

A complete, executable reproduction of Grumbach & Vianu (PODS 1991 /
JCSS 1995): complex object databases, the typed calculus ``CALC_i^k``
with inflationary (IFP) and partial (PFP) fixpoint operators, density and
sparsity analysis, range restriction with derived range functions, the
induced-order and Turing-machine-simulation machinery behind the PTIME
capture theorem, a complex-object Datalog, and a nested relational
algebra baseline.

Quickstart::

    from repro import *

    schema = database_schema(G=["{U}", "{U}"])
    a, b, c = cset(atom("a")), cset(atom("b")), cset(atom("c"))
    I = instance(schema, G=[(a, b), (b, c)])
    tc = transitive_closure_query()
    evaluate(tc, I)                      # active-domain semantics
    evaluate_range_restricted(tc, I)     # Theorem 5.1's PTIME evaluation

Subpackages:

* :mod:`repro.objects` — types, values, domains, orderings, encodings;
* :mod:`repro.core` — the calculus, fixpoints, range restriction, safety;
* :mod:`repro.analysis` — density/sparsity (Section 4);
* :mod:`repro.machines` — TMs, CODE relations, the Theorem 4.1 pipeline;
* :mod:`repro.datalog` — inf-Datalog for complex objects;
* :mod:`repro.algebra` — nested algebra (powerset recursion baseline);
* :mod:`repro.obs` — tracing, counters, EXPLAIN-style profiling;
* :mod:`repro.workloads` — generators and canonical paper queries.
"""

from .objects import (
    Atom,
    AtomOrder,
    CSet,
    CTuple,
    DatabaseSchema,
    Instance,
    Relation,
    RelationSchema,
    SetType,
    TupleType,
    Type,
    U,
    Value,
    atom,
    cset,
    ctuple,
    database_schema,
    decode_instance,
    domain_cardinality,
    encode_instance,
    encode_value,
    hyper,
    instance,
    instance_size,
    make_value,
    materialize_domain,
    parse_type,
    relation,
    set_of,
    tuple_of,
    value_size,
)
from .core import (
    Evaluator,
    Fixpoint,
    Query,
    Var,
    analyze_query,
    compute_ranges,
    evaluate,
    evaluate_formula,
    evaluate_range_restricted,
    is_range_restricted,
    parse_formula,
    parse_query,
    query_level,
    verify_safety,
)
from .obs import (
    Tracer,
    render_tree,
    summary_table,
    trace_to_json,
    use_tracer,
)
from .workloads import (
    bipartite_query,
    cyclic_nodes_query,
    nest_query,
    nest_query_ifp,
    transitive_closure_query,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # objects
    "Atom", "AtomOrder", "CSet", "CTuple", "DatabaseSchema", "Instance",
    "Relation", "RelationSchema", "SetType", "TupleType", "Type", "U",
    "Value", "atom", "cset", "ctuple", "database_schema",
    "decode_instance", "domain_cardinality", "encode_instance",
    "encode_value", "hyper", "instance", "instance_size", "make_value",
    "materialize_domain", "parse_type", "relation", "set_of", "tuple_of",
    "value_size",
    # core
    "Evaluator", "Fixpoint", "Query", "Var", "analyze_query",
    "compute_ranges", "evaluate", "evaluate_formula",
    "evaluate_range_restricted", "is_range_restricted", "parse_formula",
    "parse_query", "query_level", "verify_safety",
    # observability
    "Tracer", "render_tree", "summary_table", "trace_to_json",
    "use_tracer",
    # canonical queries
    "bipartite_query", "cyclic_nodes_query", "nest_query",
    "nest_query_ifp", "transitive_closure_query",
]
