"""Command-line interface: ``python -m repro <command> ...`` (or the
``repro`` console script).

Commands:

* ``query``    — evaluate a query (textual syntax) over a JSON instance;
* ``profile``  — evaluate with tracing on; print the EXPLAIN-style trace
  tree and a counter summary (or the trace as JSON);
* ``bench``    — the scaling observatory: run declared benchmark suites,
  record time + space per point, fit curves, gate against a baseline;
* ``analyze``  — type-check a query and run the range-restriction analysis;
* ``lint``     — the :mod:`repro.lint` static analyzer (structured
  diagnostics, ``--json``, ``--explain CODE``, ``--fail-on``);
* ``encode``   — print the standard TM-tape encoding of an instance;
* ``density``  — density/sparsity verdicts of an instance w.r.t. <i,k>;
* ``example``  — emit a sample instance document to get started;
* ``obs``      — the run ledger and trace streams: ``history``,
  ``aggregate``, ``diff``, ``replay``.

Every ``query``/``profile``/``bench``/``lint`` invocation appends a
record to the run ledger (``.repro/ledger.jsonl``; ``--ledger PATH`` to
redirect, ``--no-ledger`` or ``REPRO_LEDGER=""`` to disable).  The
evaluation commands also take ``--stream FILE`` (live JSONL trace
telemetry that survives a SIGKILL) and ``--stall-after``/
``--stall-abort`` (a watchdog over the engines' heartbeats).

The instance format is the tagged JSON of :mod:`repro.objects.io`.

Exit codes (uniform across commands, CI-friendly):

* ``0`` — clean: the command ran and found nothing wrong;
* ``1`` — findings: lint diagnostics at/above the ``--fail-on``
  threshold, a not-range-restricted query under ``analyze`` or
  ``query --mode rr``, a failed expectation/gate/tolerance under
  ``bench``;
* ``2`` — usage or load error: bad arguments, unreadable/malformed
  instance files, queries that do not parse or type check (where the
  command is not itself reporting that as a finding).

Examples::

    repro example > graph.json
    repro encode graph.json
    repro query graph.json \\
        "{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})](G(x,y) or \\
          exists z:{U} (S(x,z) and G(z,y)))(x, y)}"
    repro profile graph.json "..." --mode active
    repro analyze graph.json "{[x:{U}] | exists y:{U} (G(x,y))}"
    repro lint graph.json "{[x:{U}] | not G(x, x)}" --json
    repro lint --explain RR004
    repro density graph.json --i 1 --k 2
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import re
import sys
import time

from .analysis.density import is_dense_witness, is_sparse_witness, log2_dom_ik
from .analysis.statistics import instance_stats
from .core.fixpoint import PFPDivergenceError
from .core.parser import ParseError, parse_query
from .core.range_restriction import RangeComputationError, analyze_query
from .core.safety import evaluate_range_restricted
from .core.evaluation import evaluate
from .core.typecheck import TypeCheckError, check_query
from .datalog.parser import (
    DatalogParseError,
    looks_like_program,
    parse_program,
)
from .lint import (
    Diagnostic,
    LintReport,
    Severity,
    explain,
    lint_program,
    lint_query,
    lint_source,
)
from .obs import (
    NULL_TRACER,
    ExportError,
    RunRecorder,
    StallError,
    Tracer,
    Watchdog,
    aggregate_records,
    aggregate_table,
    append_record,
    chrome_trace,
    collapsed_stacks,
    default_ledger_path,
    diff_records,
    find_record,
    history_table,
    instance_checksum,
    memory_table,
    metrics_table,
    LedgerError,
    query_hash,
    read_ledger,
    render_tree,
    replay_stream,
    summary_table,
    titled_table,
    trace_to_json,
    tracer_from_document,
    use_tracer,
)
from .objects.encoding import encode_instance
from .objects.io import instance_from_json, instance_to_json
from .objects.schema import SchemaError
from .objects.types import parse_type
from .objects.values import CTuple

__all__ = ["EXIT_ERROR", "EXIT_FINDINGS", "EXIT_OK", "main"]

#: Exit-code convention (see the module docstring).
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Commands that append a record to the run ledger.
_LEDGERED_COMMANDS = ("query", "profile", "bench", "lint")

#: The invocation's active :class:`repro.obs.RunRecorder` (None when the
#: ledger is disabled or the command is not ledgered) and the ledger
#: path it will be appended to.  Command handlers feed fields in through
#: :func:`_record`; :func:`main` finalises in its ``finally`` block, so
#: even a run that dies with a traceback leaves a record.
_RECORDER: RunRecorder | None = None
_LEDGER_PATH: str | None = None


def _make_recorder(args: argparse.Namespace) -> None:
    """Install the module-level recorder for a ledgered invocation."""
    global _RECORDER, _LEDGER_PATH
    _RECORDER, _LEDGER_PATH = None, None
    if getattr(args, "command", None) not in _LEDGERED_COMMANDS:
        return
    if getattr(args, "no_ledger", False):
        return
    path = getattr(args, "ledger", None) or default_ledger_path()
    if path is None:  # REPRO_LEDGER="" disables recording
        return
    _RECORDER = RunRecorder(args.command)
    _LEDGER_PATH = path


def _record(**fields) -> None:
    """Note ledger fields as a command handler learns them (no-op when
    the run is not being recorded)."""
    if _RECORDER is not None:
        _RECORDER.note(**fields)


def _record_tracer(tracer) -> None:
    if _RECORDER is not None and isinstance(tracer, Tracer):
        _RECORDER.attach_tracer(tracer)


def _finalize_recorder(outcome: str, error_text: str | None) -> None:
    """Append the invocation's record; a ledger write failure is a
    stderr note, never a run failure."""
    global _RECORDER, _LEDGER_PATH
    recorder, path = _RECORDER, _LEDGER_PATH
    _RECORDER, _LEDGER_PATH = None, None
    if recorder is None or path is None:
        return
    record = recorder.finish(outcome, error=error_text)
    try:
        append_record(record, path)
    except OSError as error:
        print(f"note: could not write run ledger {path}: {error}",
              file=sys.stderr)


@contextlib.contextmanager
def _stream_sink(args: argparse.Namespace):
    """The ``--stream`` sink: None (off), stderr (``-``), or an opened
    file that is closed when the command finishes."""
    target = getattr(args, "stream", None)
    if not target:
        yield None
    elif target == "-":
        yield sys.stderr
    else:
        # Append, like the ledger: each run starts a new begin-delimited
        # segment, and `repro obs replay --segment` selects among them.
        with open(target, "a", encoding="utf-8") as handle:
            yield handle


def _wants_watchdog(args: argparse.Namespace) -> bool:
    return (getattr(args, "stall_after", None) is not None
            or getattr(args, "stall_abort", False))


@contextlib.contextmanager
def _maybe_watchdog(args: argparse.Namespace, tracer):
    """Run the body under a stall watchdog when ``--stall-after`` or
    ``--stall-abort`` asked for one (bare ``--stall-abort`` defaults the
    window to 30 seconds)."""
    if not _wants_watchdog(args) or not isinstance(tracer, Tracer):
        yield None
        return
    stall = getattr(args, "stall_after", None)
    if stall is None:
        stall = 30.0
    with Watchdog(tracer, stall, abort=args.stall_abort) as dog:
        yield dog


def _load_instance(path: str):
    with open(path, encoding="utf-8") as handle:
        return instance_from_json(json.load(handle))


def _format_row(row: CTuple) -> str:
    return str(row)


def _run_query(args: argparse.Namespace, tracer) -> tuple[frozenset, str]:
    """Evaluate per ``--mode``; returns (answer, mode actually used).

    In ``auto`` mode a range-restriction failure falls back to
    active-domain semantics; the reason is reported as a trace event and
    a stderr note rather than swallowed, so users learn why the fast
    path was skipped.
    """
    with tracer.span("load_instance"):
        inst = _load_instance(args.instance)
    with tracer.span("parse_query"):
        query = parse_query(args.query)
    strategy = getattr(args, "strategy", "seminaive")
    intern = getattr(args, "intern", False)
    _record(query_hash=query_hash(args.query),
            instance_checksum=instance_checksum(inst),
            strategy=strategy, intern=intern)
    if args.mode == "active":
        return (evaluate(query, inst, max_domain_size=args.max_domain,
                         strategy=strategy, intern=intern), "active")
    try:
        return (evaluate_range_restricted(query, inst, strategy=strategy,
                                          intern=intern).answer, "rr")
    except RangeComputationError as error:
        # Only the RR-analysis rejection triggers the fallback; genuine
        # engine failures propagate instead of masquerading as "not RR".
        if args.mode == "rr":
            raise
        tracer.event("fallback", to="active", reason=str(error))
        print(f"note: range-restricted evaluation unavailable "
              f"({error}); falling back to active-domain semantics",
              file=sys.stderr)
        return (evaluate(query, inst, max_domain_size=args.max_domain,
                         strategy=strategy, intern=intern), "active")


def _cmd_query(args: argparse.Namespace) -> int:
    with _stream_sink(args) as sink:
        # A ledgered run needs a live tracer too: the record's headline
        # counters (eval.*, space.*, stages) come off it.
        tracing = (args.trace or args.stats or args.trace_json
                   or sink is not None or _wants_watchdog(args)
                   or _RECORDER is not None)
        tracer = Tracer(stream=sink) if tracing else NULL_TRACER
        _record_tracer(tracer)
        try:
            with use_tracer(tracer), _maybe_watchdog(args, tracer):
                answer, mode_used = _run_query(args, tracer)
        except RangeComputationError as error:
            # args.mode == "rr" (other modes fall back inside
            # _run_query): a not-RR query is a finding, not a usage
            # error.
            print(f"range-restricted evaluation failed: {error}",
                  file=sys.stderr)
            _record(outcome="error", error=str(error))
            return EXIT_FINDINGS
        except BaseException:
            # Flush the stream (open spans aborted) before unwinding,
            # so a failed run still leaves a replayable trace.
            tracer.close()
            raise
        tracer.close()
        _record(mode=mode_used, rows=len(answer))
    stats_json = args.stats and args.format == "json"
    for row in sorted(answer, key=str):
        print(_format_row(row))
    if not stats_json:
        # In JSON stats mode stderr carries exactly one parseable
        # document; the row count rides inside it instead.
        print(f"-- {len(answer)} tuple(s)", file=sys.stderr)
    if args.trace:
        print(render_tree(tracer), file=sys.stderr)
    if args.stats:
        if stats_json:
            document = _stats_document(tracer)
            document["answer_rows"] = len(answer)
            json.dump(document, sys.stderr, indent=2)
            print(file=sys.stderr)
        else:
            print(summary_table(tracer), file=sys.stderr)
    if args.trace_json:
        with open(args.trace_json, "w", encoding="utf-8") as handle:
            json.dump(trace_to_json(tracer), handle, indent=2)
    return EXIT_OK


def _stats_document(tracer: Tracer) -> dict:
    """Counters + typed metrics as one machine-readable document
    (``--format json`` for ``query --stats`` and ``profile``)."""
    from .obs import metrics_to_json

    return {
        "schema": 1,
        "counters": dict(tracer.counters),
        "metrics": metrics_to_json(tracer.metrics)["metrics"],
    }


def _emit_trace(tracer: Tracer, fmt: str, args: argparse.Namespace) -> None:
    """Write an already-closed trace in an export format (chrome-trace or
    flame) to stdout."""
    if fmt == "chrome-trace":
        json.dump(chrome_trace(tracer), sys.stdout, indent=2)
        print()
    else:
        flame = collapsed_stacks(tracer, metric=args.flame_metric)
        if flame:
            print(flame)


def _cmd_profile(args: argparse.Namespace) -> int:
    fmt = "json" if args.json else args.format
    if args.from_file is not None:
        # Re-export a saved `repro profile --json` document: no
        # evaluation, just format conversion of the recorded span tree.
        if args.instance is not None or args.query is not None:
            print("error: --from re-exports a saved trace; instance and "
                  "query arguments do not apply", file=sys.stderr)
            return EXIT_ERROR
        if args.memory:
            print("error: --memory attributes a live run; it cannot be "
                  "added to a saved trace (--from)", file=sys.stderr)
            return EXIT_ERROR
        with open(args.from_file, encoding="utf-8") as handle:
            tracer = tracer_from_document(json.load(handle))
        if fmt in ("chrome-trace", "flame"):
            _emit_trace(tracer, fmt, args)
        elif fmt == "json":
            json.dump(trace_to_json(tracer), sys.stdout, indent=2)
            print()
        else:
            print(render_tree(tracer, times=not args.no_times))
        return EXIT_OK
    if args.instance is None or args.query is None:
        print("error: profile needs an instance file and a query "
              "(or --from FILE to re-export a saved trace)",
              file=sys.stderr)
        return EXIT_ERROR
    with _stream_sink(args) as sink:
        tracer = Tracer(memory=args.memory, stream=sink)
        _record_tracer(tracer)
        start = time.perf_counter()
        try:
            with use_tracer(tracer), _maybe_watchdog(args, tracer):
                answer, mode_used = _run_query(args, tracer)
        except RangeComputationError as error:
            # args.mode == "rr": a not-RR query is a finding, as for
            # query.
            print(f"range-restricted evaluation failed: {error}",
                  file=sys.stderr)
            _record(outcome="error", error=str(error))
            return EXIT_FINDINGS
        except Exception:
            # The query died mid-evaluation.  The partial trace is
            # exactly what a profiler user wants at that point: close()
            # flushes the still-open spans (marked aborted, streamed)
            # and the tree goes to stderr before the traceback.
            tracer.close()
            if tracer.root.children:
                print("-- query failed; partial trace (open spans "
                      "aborted):", file=sys.stderr)
                print(render_tree(tracer, times=not args.no_times),
                      file=sys.stderr)
            raise
        elapsed = time.perf_counter() - start
        tracer.close()
        _record(mode=mode_used, rows=len(answer))
    if fmt in ("chrome-trace", "flame"):
        _emit_trace(tracer, fmt, args)
        return EXIT_OK
    if fmt == "json":
        document = trace_to_json(tracer)
        document["mode"] = mode_used
        document["answer_rows"] = len(answer)
        document["seconds"] = elapsed
        json.dump(document, sys.stdout, indent=2)
        print()
        return EXIT_OK
    times = not args.no_times
    print(f"mode: {mode_used}")
    print("== trace ==")
    print(render_tree(tracer, times=times))
    print("== counters ==")
    print(summary_table(tracer))
    print("== metrics ==")
    print(metrics_table(tracer.metrics))
    if args.memory:
        print("== memory ==")
        print(memory_table(tracer))
    if times:
        print(f"-- {len(answer)} tuple(s) in {elapsed * 1000:.1f} ms")
    else:
        print(f"-- {len(answer)} tuple(s)")
    return EXIT_OK


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"bad --sizes {text!r}; expected e.g. 8,16,32") from None
    if not sizes:
        raise ValueError("--sizes needs at least one size")
    return sizes


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    """``repro bench --trend FILE...``: the cross-PR trajectory report."""
    from .bench import (
        TrendError,
        build_trend,
        load_documents,
        migrated_path,
        render_trend,
    )

    try:
        records = load_documents(args.trend)
    except TrendError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.migrate:
        for record in records:
            if not record["legacy"]:
                continue
            path = migrated_path(record["path"])
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(record["document"], handle, indent=2)
                handle.write("\n")
            print(f"-- migrated {record['path']} -> {path}",
                  file=sys.stderr)
    trend = build_trend(records, full=args.full)
    if args.format == "json":
        print(json.dumps(trend, indent=2))
    else:
        print(render_trend(trend))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(trend, handle, indent=2)
            handle.write("\n")
        print(f"-- wrote {args.json}", file=sys.stderr)
    if trend["regressions"]:
        for entry in trend["regressions"]:
            print(f"FAIL: {entry}", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        GROUPS,
        SUITES,
        BenchError,
        LegacyBaselineError,
        diff_against_baseline,
        document_failures,
        render_document,
        resolve_suites,
        run_suites,
    )

    if args.trend:
        return _cmd_bench_trend(args)
    if args.migrate:
        print("error: --migrate only applies to --trend inputs",
              file=sys.stderr)
        return EXIT_ERROR
    if args.full:
        print("error: --full only applies to --trend reports",
              file=sys.stderr)
        return EXIT_ERROR
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return EXIT_ERROR
    if args.list:
        for name, members in sorted(GROUPS.items()):
            print(f"{name} (group): {', '.join(members)}")
        for name, suite in sorted(SUITES.items()):
            print(f"{name}: {suite.title} "
                  f"[sizes {','.join(map(str, suite.sizes))}; "
                  f"{'/'.join(suite.strategies)}]")
        return EXIT_OK
    try:
        suites = resolve_suites(args.suite)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return EXIT_ERROR
    sizes = _parse_sizes(args.sizes) if args.sizes else None
    _record(suites=sorted(suite.name for suite in suites), jobs=args.jobs,
            strategy=args.strategy)
    try:
        with _stream_sink(args) as sink:
            document = run_suites(suites, sizes=sizes,
                                  strategy=args.strategy,
                                  tracemalloc=args.tracemalloc,
                                  jobs=args.jobs,
                                  point_timeout=args.timeout,
                                  memory=args.memory, stream=sink)
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        _record(outcome="error", error=str(error))
        return EXIT_ERROR
    failures = document_failures(document)
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        try:
            breaches = diff_against_baseline(document, baseline, suites)
        except LegacyBaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_ERROR
        document["baseline"] = {"path": args.baseline, "breaches": breaches}
        failures.extend(breaches)
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        print(render_document(document))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"-- wrote {args.json}", file=sys.stderr)
    _record(failures=len(failures))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_OK


def _cmd_analyze(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    query = parse_query(args.query)
    report = check_query(query, inst.schema)
    i, k = report.level
    print(f"level      : CALC_{i}^{k}"
          + (" + IFP/PFP" if report.fixpoints else ""))
    print(f"types      : {sorted(repr(t) for t in report.types)}")
    result = analyze_query(query, inst.schema)
    print(f"range-restricted: {result.is_range_restricted}")
    if result.fixpoint_columns:
        for name, columns in sorted(result.fixpoint_columns.items()):
            print(f"  tau*({name}) = {sorted(columns)}")
    for violation in result.violations:
        print(f"  violation: {violation}")
    print("diagnostics:")
    lint_report = lint_query(query, inst.schema)
    for diagnostic in lint_report:
        print("  " + diagnostic.render().replace("\n", "\n  "))
    return EXIT_OK if result.is_range_restricted else EXIT_FINDINGS


def _parse_severity(text: str) -> Severity:
    return Severity[text.upper()]


def _read_query_arg(argument: str) -> tuple[str, str]:
    """A lint query argument is a literal query or a path to one."""
    if os.path.exists(argument):
        with open(argument, encoding="utf-8") as handle:
            return argument, handle.read().strip()
    return "<arg>", argument


def _lint_argument(source: str, text: str, schema, exempt) -> LintReport:
    """Lint one CLI argument: a Datalog program (``.dl`` file or text
    that reads as one) through the program pipeline, anything else as a
    CALC/IFP/PFP query."""
    if source.endswith(".dl") or looks_like_program(text):
        try:
            program, query = parse_program(text)
        except DatalogParseError as exc:
            report = LintReport()
            report.add(Diagnostic("DLG003", Severity.ERROR, str(exc)))
            return report
        return lint_program(program, schema, exempt_types=exempt,
                            query=query)
    return lint_source(text, schema, exempt_types=exempt)


def _analysis_tables(analysis) -> str:
    """The ``--explain`` rendering of a program analysis: dependency
    edges, per-SCC routing (with strata), and the adorned program."""
    edge_rows = [("source", "target", "polarity")]
    for edge in sorted(analysis.edges):
        edge_rows.append((edge.source, edge.target,
                          "+" if edge.positive else "-"))
    scc_rows = [("scc", "recursion", "stratum", "route")]
    for verdict in analysis.routing:
        scc_rows.append((
            "{" + ", ".join(verdict.scc) + "}",
            verdict.recursion,
            "-" if verdict.stratum is None else str(verdict.stratum),
            verdict.route,
        ))
    adorn_rows = [("predicate", "adornments")]
    for predicate, adornments in sorted(analysis.adornment.table.items()):
        adorn_rows.append((predicate, ", ".join(adornments)))
    sections = [
        titled_table("dependency graph", edge_rows),
        titled_table("routing (per SCC, bottom-up)", scc_rows),
        titled_table(
            f"adorned program (query {analysis.query!r})", adorn_rows),
    ]
    return "\n".join(sections)


#: Sentinel for a bare ``--explain`` (no CODE): render analysis tables.
_EXPLAIN_TABLES = "@tables"


def _lint_verdict(reports) -> str | None:
    """The complexity verdict a lint run decided on, for the run ledger:
    the CPX001 Theorem 5.1 bound (``LOGSPACE``/``PTIME``/``PSPACE``) or
    the CPX003 rejection (``no-BOUND-guarantee``).  The last verdict
    wins when several queries were linted together."""
    verdict = None
    for report in reports:
        for diagnostic in report:
            if diagnostic.code == "CPX001":
                match = re.search(r"evaluable in (\w+)", diagnostic.message)
                if match:
                    verdict = match.group(1)
            elif diagnostic.code == "CPX003":
                match = re.search(r"no Theorem 5\.1 (\w+) guarantee",
                                  diagnostic.message)
                verdict = (f"no-{match.group(1)}-guarantee" if match
                           else "not-range-restricted")
    return verdict


def _cmd_lint(args: argparse.Namespace) -> int:
    explain_tables = args.explain == _EXPLAIN_TABLES
    if args.explain is not None and not explain_tables:
        try:
            print(explain(args.explain))
        except KeyError:
            print(f"unknown diagnostic code {args.explain!r}",
                  file=sys.stderr)
            return EXIT_ERROR
        return EXIT_OK
    if args.instance is None or not args.queries:
        print("error: lint needs an instance file and at least one query "
              "(or --explain CODE)", file=sys.stderr)
        return EXIT_ERROR
    inst = _load_instance(args.instance)
    _record(instance_checksum=instance_checksum(inst))
    exempt = frozenset(parse_type(text) for text in args.exempt or ())
    fail_on = _parse_severity(args.fail_on)
    documents = []
    reports = []
    failed = False
    for argument in args.queries:
        source, text = _read_query_arg(argument)
        report = _lint_argument(source, text, inst.schema, exempt)
        reports.append(report)
        if len(args.queries) == 1:
            _record(query_hash=query_hash(text))
        failed = failed or report.fails(fail_on)
        if args.json:
            document = {"source": source, "query": text,
                        "diagnostics": report.to_dicts()}
            if report.analysis is not None:
                document["program"] = report.analysis.to_dict()
            documents.append(document)
        else:
            print(f"== {source}: {text}")
            print(report.render())
            if explain_tables and report.analysis is not None:
                print(_analysis_tables(report.analysis))
    if args.json:
        json.dump(documents, sys.stdout, indent=2)
        print()
    _record(verdict=_lint_verdict(reports))
    return EXIT_FINDINGS if failed else EXIT_OK


def _cmd_encode(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    print(encode_instance(inst))
    return EXIT_OK


def _cmd_density(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    stats = instance_stats(inst)
    log_dom = log2_dom_ik(args.i, args.k, stats.n_atoms)
    print(f"|I| = {stats.cardinality}, ||I|| = {stats.size}, "
          f"atoms = {stats.n_atoms}")
    print(f"log2 |dom({args.i},{args.k})| = {log_dom:.1f}")
    dense = is_dense_witness(inst, args.i, args.k,
                             degree=args.degree, coefficient=args.coefficient)
    sparse = is_sparse_witness(inst, args.i, args.k,
                               degree=args.degree,
                               coefficient=args.coefficient)
    print(f"dense  (|dom| <= {args.coefficient}*|I|^{args.degree}): {dense}")
    print(f"sparse (|I| <= {args.coefficient}*log^{args.degree}|dom|): "
          f"{sparse}")
    return EXIT_OK


def _cmd_example(args: argparse.Namespace) -> int:
    from .workloads import singleton_chain

    json.dump(instance_to_json(singleton_chain("abc")), sys.stdout, indent=2)
    print()
    return EXIT_OK


# ---------------------------------------------------------------------------
# repro obs: the reporting side of the run ledger and trace streams
# ---------------------------------------------------------------------------

def _obs_read_records(args: argparse.Namespace) -> list:
    """The ledger records an obs subcommand reports over.  Missing,
    malformed, or empty ledgers raise :class:`LedgerError` (a
    ``ValueError``), which the uniform handler maps to exit 2."""
    path = args.ledger or default_ledger_path()
    if path is None:
        raise LedgerError(
            "the run ledger is disabled (REPRO_LEDGER is empty); "
            "pass --ledger PATH")
    records = read_ledger(path)
    if not records:
        raise LedgerError(f"ledger {path} has no records")
    return records


def _cmd_obs_history(args: argparse.Namespace) -> int:
    records = _obs_read_records(args)
    if args.limit > 0:
        records = records[-args.limit:]
    if args.format == "json":
        print(json.dumps(records, indent=2))
    else:
        print(history_table(records))
    return EXIT_OK


def _cmd_obs_aggregate(args: argparse.Namespace) -> int:
    aggregates = aggregate_records(_obs_read_records(args))
    if args.format == "json":
        print(json.dumps(aggregates, indent=2))
    else:
        print(aggregate_table(aggregates))
    return EXIT_OK


def _render_diff(diff: dict) -> str:
    """Text rendering of a :func:`repro.obs.diff_records` document."""
    rows = [("field", "a", "b", "delta")]
    rows.append(("ts", str(diff["a"]["ts"]), str(diff["b"]["ts"]), ""))
    for name, entry in diff["fields"].items():
        rows.append((name, str(entry["a"]), str(entry["b"]),
                     "=" if entry["equal"] else "!="))
    wall = diff.get("wall_seconds")
    if wall:
        ratio = wall.get("ratio")
        rows.append(("wall_seconds", f"{wall['a']:.4f}", f"{wall['b']:.4f}",
                     "-" if ratio is None else f"x{ratio}"))
    rss = diff.get("rss_peak_bytes")
    if rss:
        rows.append(("rss_peak_bytes", str(rss["a"]), str(rss["b"]),
                     f"{rss['delta']:+d}"))
    sections = [titled_table(
        f"run {diff['a']['id']} vs {diff['b']['id']}", rows)]
    if diff["counters"]:
        counter_rows = [("counter", "a", "b", "delta")]
        for name, entry in diff["counters"].items():
            delta = entry.get("delta")
            counter_rows.append((name, str(entry["a"]), str(entry["b"]),
                                 "" if delta is None else f"{delta:+g}"))
        sections.append(titled_table("counters", counter_rows))
    return "\n".join(sections)


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    records = _obs_read_records(args)
    diff = diff_records(find_record(records, args.run_a),
                        find_record(records, args.run_b))
    if args.format == "json":
        print(json.dumps(diff, indent=2))
    else:
        print(_render_diff(diff))
    return EXIT_OK


def _cmd_obs_replay(args: argparse.Namespace) -> int:
    """Reconstruct a (possibly torn) ``--stream`` file as a span tree
    and feed it through the normal render/export paths."""
    if args.stream_file == "-":
        tracer = replay_stream(sys.stdin, segment=args.segment)
    else:
        with open(args.stream_file, encoding="utf-8") as handle:
            tracer = replay_stream(handle, segment=args.segment)
    if args.format in ("chrome-trace", "flame"):
        _emit_trace(tracer, args.format, args)
    elif args.format == "json":
        json.dump(trace_to_json(tracer), sys.stdout, indent=2)
        print()
    else:
        print(render_tree(tracer, times=not args.no_times))
        print(summary_table(tracer))
    return EXIT_OK


def _add_obs_flags(cmd: argparse.ArgumentParser, *, stream: bool = False,
                   watchdog: bool = False) -> None:
    """The shared observability flags: every ledgered command gets
    ``--ledger``/``--no-ledger``; live-traceable commands add
    ``--stream``; single-evaluation commands add the stall watchdog."""
    group = cmd.add_argument_group("observability")
    group.add_argument(
        "--ledger", metavar="PATH",
        help="append this run's ledger record to PATH "
             "(default: .repro/ledger.jsonl, or $REPRO_LEDGER)")
    group.add_argument("--no-ledger", action="store_true",
                       help="do not record this run in the ledger")
    if stream:
        group.add_argument(
            "--stream", metavar="FILE",
            help="stream span/event/counter JSONL live to FILE ('-' = "
                 "stderr), appending a new segment per run; a killed "
                 "run leaves a replayable partial trace "
                 "(repro obs replay)")
    if watchdog:
        group.add_argument(
            "--stall-after", type=float, metavar="SECONDS",
            help="dump engine counters to stderr after SECONDS without "
                 "a heartbeat (fixpoint stage / Datalog rule)")
        group.add_argument(
            "--stall-abort", action="store_true",
            help="also abort a stalled run with StallError (ledger "
                 "outcome 'timeout'; implies --stall-after 30 if unset)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tractable query languages for complex object databases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query_cmd = commands.add_parser(
        "query", help="evaluate a query over a JSON instance")
    query_cmd.add_argument("instance", help="instance JSON file")
    query_cmd.add_argument("query", help="query in the textual syntax")
    query_cmd.add_argument(
        "--mode", choices=("auto", "rr", "active"), default="auto",
        help="rr: range-restricted only; active: reference semantics; "
             "auto: rr with active fallback (default)")
    query_cmd.add_argument("--max-domain", type=int, default=1_000_000,
                           help="cap on materialised domains (active mode)")
    query_cmd.add_argument(
        "--strategy", choices=("naive", "seminaive"), default="seminaive",
        help="fixpoint evaluation strategy: seminaive (delta-driven, "
             "default) or naive (re-derive everything each stage)")
    query_cmd.add_argument(
        "--intern", action=argparse.BooleanOptionalAction, default=False,
        help="evaluate over the interned columnar kernel (dense value "
             "ids + indexed joins); --no-intern (default) keeps the "
             "object engines")
    query_cmd.add_argument("--trace", action="store_true",
                           help="print the trace tree to stderr")
    query_cmd.add_argument("--stats", action="store_true",
                           help="print engine counters to stderr")
    query_cmd.add_argument("--trace-json", metavar="FILE",
                           help="export the trace as JSON to FILE")
    query_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="--stats output format: aligned table (default) or JSON")
    _add_obs_flags(query_cmd, stream=True, watchdog=True)
    query_cmd.set_defaults(func=_cmd_query)

    profile_cmd = commands.add_parser(
        "profile",
        help="evaluate with tracing; print the EXPLAIN tree + counters")
    profile_cmd.add_argument("instance", nargs="?",
                             help="instance JSON file")
    profile_cmd.add_argument("query", nargs="?",
                             help="query in the textual syntax")
    profile_cmd.add_argument(
        "--mode", choices=("auto", "rr", "active"), default="auto",
        help="evaluation mode (as for the query command)")
    profile_cmd.add_argument("--max-domain", type=int, default=1_000_000,
                             help="cap on materialised domains (active mode)")
    profile_cmd.add_argument(
        "--strategy", choices=("naive", "seminaive"), default="seminaive",
        help="fixpoint evaluation strategy (as for the query command)")
    profile_cmd.add_argument(
        "--intern", action=argparse.BooleanOptionalAction, default=False,
        help="evaluate over the interned columnar kernel "
             "(as for the query command)")
    profile_cmd.add_argument("--json", action="store_true",
                             help="emit the trace document as JSON on stdout "
                                  "(alias for --format json)")
    profile_cmd.add_argument(
        "--format", choices=("text", "json", "chrome-trace", "flame"),
        default="text",
        help="output format: EXPLAIN tree + tables (default), the "
             "trace/metrics document as JSON, Chrome Trace Event JSON "
             "(load into Perfetto / chrome://tracing), or collapsed "
             "flamegraph stacks")
    profile_cmd.add_argument(
        "--flame-metric", choices=("time", "alloc"), default="time",
        help="what --format flame weighs frames by: self wall time "
             "(default) or self-allocated bytes (needs --memory)")
    profile_cmd.add_argument(
        "--memory", action="store_true",
        help="attribute allocated bytes to spans via tracemalloc "
             "(~2x slower; adds the == memory == table / JSON fields)")
    profile_cmd.add_argument(
        "--from", dest="from_file", metavar="FILE",
        help="re-export a saved `profile --json` document instead of "
             "evaluating (schema-1 documents only)")
    profile_cmd.add_argument("--no-times", action="store_true",
                             help="omit wall times (deterministic output)")
    _add_obs_flags(profile_cmd, stream=True, watchdog=True)
    profile_cmd.set_defaults(func=_cmd_profile)

    bench_cmd = commands.add_parser(
        "bench",
        help="run benchmark suites: time + space per point, fitted "
             "scaling curves, baseline regression gates")
    bench_cmd.add_argument(
        "--suite", action="append", metavar="NAME",
        help="suite or group name (repeatable; default: smoke). "
             "See --list.")
    bench_cmd.add_argument("--list", action="store_true",
                           help="list suites and groups, then exit")
    bench_cmd.add_argument("--sizes", metavar="CSV",
                           help="override the size series, e.g. 8,16,32")
    bench_cmd.add_argument(
        "--strategy", metavar="NAME",
        help="run only this strategy, e.g. seminaive or ifp (suites "
             "not declaring it are skipped)")
    bench_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard points over N worker processes (default 1: serial, "
             "bit-for-bit today's behaviour)")
    bench_cmd.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point timeout; a point exceeding it is marked failed "
             "and the run degrades to a flagged partial report")
    bench_cmd.add_argument("--json", metavar="FILE",
                           help="write the observatory (or trend) "
                                "document to FILE")
    bench_cmd.add_argument("--baseline", metavar="FILE",
                           help="regress-gate counters against this "
                                "schema-1 baseline document")
    bench_cmd.add_argument(
        "--trend", nargs="+", metavar="FILE",
        help="cross-PR trend mode: align these BENCH_PR*.json documents "
             "(legacy flat or schema-1) into per-suite trajectories "
             "with regression flags")
    bench_cmd.add_argument(
        "--migrate", action="store_true",
        help="with --trend: rewrite each legacy input as FILE.schema1."
             "json (the sanctioned path off the retired flat layout)")
    bench_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format for the report or trend table")
    bench_cmd.add_argument("--tracemalloc", action="store_true",
                           help="also record peak allocated bytes per "
                                "point (slower)")
    bench_cmd.add_argument(
        "--memory", action="store_true",
        help="run each point under span-level memory attribution "
             "(records space.traced_peak; ~2x slower)")
    bench_cmd.add_argument(
        "--full", action="store_true",
        help="with --trend: include every counter seen in the inputs "
             "(not just the curated set) and add sparkline columns")
    _add_obs_flags(bench_cmd, stream=True)
    bench_cmd.set_defaults(func=_cmd_bench)

    analyze_cmd = commands.add_parser(
        "analyze", help="type level + range-restriction analysis")
    analyze_cmd.add_argument("instance", help="instance JSON file (schema)")
    analyze_cmd.add_argument("query", help="query in the textual syntax")
    analyze_cmd.set_defaults(func=_cmd_analyze)

    lint_cmd = commands.add_parser(
        "lint",
        help="static analysis: types, CALC_i^k level + cost, "
             "range-restriction proof, complexity verdict")
    lint_cmd.add_argument("instance", nargs="?",
                          help="instance JSON file (schema source)")
    lint_cmd.add_argument("queries", nargs="*", metavar="query",
                          help="query text, a Datalog program (.dl file "
                               "or rule text), or a file containing one")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit diagnostics as a JSON document")
    lint_cmd.add_argument("--explain", metavar="CODE", nargs="?",
                          const=_EXPLAIN_TABLES,
                          help="explain a diagnostic code and exit; bare "
                               "--explain with a program argument renders "
                               "the dependency/strata/adornment tables")
    lint_cmd.add_argument("--fail-on", choices=("error", "warning"),
                          default="error",
                          help="severity that makes the exit code 1 "
                               "(default: error)")
    lint_cmd.add_argument("--exempt", action="append", metavar="TYPE",
                          help="exempt type for Theorem 5.3's RR_T "
                               "discipline (repeatable)")
    _add_obs_flags(lint_cmd)
    lint_cmd.set_defaults(func=_cmd_lint)

    encode_cmd = commands.add_parser(
        "encode", help="standard TM-tape encoding of an instance")
    encode_cmd.add_argument("instance", help="instance JSON file")
    encode_cmd.set_defaults(func=_cmd_encode)

    density_cmd = commands.add_parser(
        "density", help="density/sparsity verdicts w.r.t. <i,k>-types")
    density_cmd.add_argument("instance", help="instance JSON file")
    density_cmd.add_argument("--i", type=int, default=1)
    density_cmd.add_argument("--k", type=int, default=2)
    density_cmd.add_argument("--degree", type=int, default=3)
    density_cmd.add_argument("--coefficient", type=float, default=8.0)
    density_cmd.set_defaults(func=_cmd_density)

    example_cmd = commands.add_parser(
        "example", help="emit a sample instance JSON document")
    example_cmd.set_defaults(func=_cmd_example)

    obs_cmd = commands.add_parser(
        "obs",
        help="run-ledger history, aggregates, diffs, and trace-stream "
             "replay")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    history_cmd = obs_sub.add_parser(
        "history", help="recent ledger records as a table (or JSON)")
    history_cmd.add_argument("-n", "--limit", type=int, default=20,
                             metavar="N",
                             help="show the last N records (default 20; "
                                  "0 = all)")
    history_cmd.add_argument("--ledger", metavar="PATH",
                             help="ledger file to read "
                                  "(default: .repro/ledger.jsonl)")
    history_cmd.add_argument("--format", choices=("text", "json"),
                             default="text")
    history_cmd.set_defaults(func=_cmd_obs_history)

    agg_cmd = obs_sub.add_parser(
        "aggregate",
        help="per-query-hash aggregates: runs, outcomes, wall p50/p99, "
             "counter drift")
    agg_cmd.add_argument("--ledger", metavar="PATH",
                         help="ledger file to read "
                              "(default: .repro/ledger.jsonl)")
    agg_cmd.add_argument("--format", choices=("text", "json"),
                         default="text")
    agg_cmd.set_defaults(func=_cmd_obs_aggregate)

    diff_cmd = obs_sub.add_parser(
        "diff", help="field-by-field comparison of two ledger runs")
    diff_cmd.add_argument("run_a", metavar="RUN_A",
                          help="run id prefix, or a negative index like "
                               "-2 (second most recent)")
    diff_cmd.add_argument("run_b", metavar="RUN_B",
                          help="run id prefix or negative index")
    diff_cmd.add_argument("--ledger", metavar="PATH",
                          help="ledger file to read "
                               "(default: .repro/ledger.jsonl)")
    diff_cmd.add_argument("--format", choices=("text", "json"),
                          default="text")
    diff_cmd.set_defaults(func=_cmd_obs_diff)

    replay_cmd = obs_sub.add_parser(
        "replay",
        help="reconstruct a --stream JSONL file (possibly from a killed "
             "run) as a span tree")
    replay_cmd.add_argument("stream_file", metavar="FILE",
                            help="stream file ('-' = stdin)")
    replay_cmd.add_argument(
        "--format", choices=("text", "json", "chrome-trace", "flame"),
        default="text",
        help="tree + counter table (default), trace JSON, Chrome Trace "
             "Event JSON, or collapsed flamegraph stacks")
    replay_cmd.add_argument(
        "--flame-metric", choices=("time", "alloc"), default="time",
        help="what --format flame weighs frames by")
    replay_cmd.add_argument(
        "--segment", type=int, default=-1, metavar="K",
        help="which begin-delimited run to replay when the file holds "
             "several (default: -1, the last)")
    replay_cmd.add_argument("--no-times", action="store_true",
                            help="omit wall times (deterministic output)")
    replay_cmd.set_defaults(func=_cmd_obs_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _make_recorder(args)
    outcome, error_text = "ok", None
    try:
        code = args.func(args)
        if code == EXIT_ERROR and _RECORDER is not None \
                and _RECORDER.outcome is None:
            _RECORDER.outcome = "error"
        return code
    except StallError:
        outcome = "timeout"
        error_text = ("stalled: no engine heartbeat within the "
                      "--stall-after window; aborted by the watchdog")
        print(f"error: {error_text}", file=sys.stderr)
        return EXIT_ERROR
    except PFPDivergenceError as error:
        # A diverging PFP is an expected boundary of the paper's
        # semantics (Theorem 4.1), not a crash: friendly message,
        # ledger outcome "divergence".
        outcome, error_text = "divergence", str(error)
        print(f"error: pfp diverged: {error}", file=sys.stderr)
        return EXIT_ERROR
    except (OSError, json.JSONDecodeError, ParseError, TypeCheckError,
            SchemaError, ExportError, ValueError) as error:
        # Load/usage failures, per the exit-code convention.
        outcome, error_text = "error", str(error)
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except BaseException as error:
        # Unexpected crash: record it, then let the traceback escape.
        outcome = "error"
        error_text = f"{type(error).__name__}: {error}"
        raise
    finally:
        _finalize_recorder(outcome, error_text)


if __name__ == "__main__":
    raise SystemExit(main())
