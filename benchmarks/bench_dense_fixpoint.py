"""E11 — Theorem 4.1(2): on dense inputs, CALC+IFP evaluation is
polynomial in the instance.

A dense family (all subsets of the universe stored in R, with a
successor-style graph over them) is queried with a fixpoint.  Because
the instance is as large as the domain, even the *naive* active-domain
evaluator's cost is polynomial in ``||I||`` — the paper's point that
density tames the domains.  The bench fits the growth degree.
"""

import math

from conftest import fit_growth, measure_seconds

from repro.analysis import is_dense_witness
from repro.core.evaluation import evaluate
from repro.objects import (
    CSet,
    database_schema,
    instance,
    instance_size,
    materialize_domain,
    parse_type,
)
from repro.workloads import atoms_universe, transitive_closure_query


def _dense_subset_graph(n: int):
    """Graph on ALL subsets of an n-atom universe: S -> S ∪ {a}.

    |I| = number of (subset, extension) pairs ~ n * 2**(n-1): the
    instance fills its node domain — dense w.r.t. <1,1>-types.
    """
    atoms = atoms_universe(n)
    subsets = materialize_domain(parse_type("{U}"), atoms)
    edges = []
    for subset in subsets:
        for a in atoms:
            if a not in subset:  # type: ignore[operator]
                bigger = CSet(set(subset.elements) | {a})  # type: ignore[union-attr]
                edges.append((subset, bigger))
    schema = database_schema(G=["{U}", "{U}"])
    return instance(schema, G=edges)


def test_family_is_dense(benchmark):
    def check():
        return [is_dense_witness(_dense_subset_graph(n), 1, 1)
                for n in (2, 3, 4)]

    verdicts = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(verdicts)


def test_naive_fixpoint_on_dense_input(benchmark):
    inst = _dense_subset_graph(3)
    answer = benchmark(lambda: evaluate(transitive_closure_query(), inst))
    # {} reaches all 7 non-empty subsets, etc.: strict-superset pairs
    assert len(answer) == sum(
        1 for s1 in range(8) for s2 in range(8)
        if s1 != s2 and (s1 & s2) == s1
    )


def test_strategy_agreement_on_dense_input(benchmark):
    """PR 3: the delta-driven evaluator returns the same closure on the
    dense subset graph (where stages are large and skips frequent)."""
    inst = _dense_subset_graph(3)
    query = transitive_closure_query()

    def compare():
        naive_seconds, naive_answer = measure_seconds(
            evaluate, query, inst, strategy="naive")
        semi_seconds, semi_answer = measure_seconds(
            evaluate, query, inst, strategy="seminaive")
        assert naive_answer == semi_answer
        return naive_seconds, semi_seconds

    naive_seconds, semi_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print(f"\nE11/PR3: dense subset graph n=3 — naive {naive_seconds:.4f}s, "
          f"semi-naive {semi_seconds:.4f}s")


def test_polynomial_growth_on_dense_family(benchmark):
    """Runtime vs ||I|| fits a polynomial of modest degree."""
    sizes = [2, 3, 4]
    instance_sizes, times = [], []

    def sweep():
        instance_sizes.clear()
        times.clear()
        for n in sizes:
            inst = _dense_subset_graph(n)
            seconds, _ = measure_seconds(
                evaluate, transitive_closure_query(), inst)
            instance_sizes.append(instance_size(inst))
            times.append(seconds)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    degree = fit_growth(instance_sizes, times)
    print("\nE11: naive CALC+IFP on the dense subset-graph family")
    print(f"  {'n':>2} {'||I||':>8} {'seconds':>9}")
    for n, size, seconds in zip(sizes, instance_sizes, times):
        print(f"  {n:>2} {size:>8} {seconds:>9.4f}")
    print(f"  fitted degree: time ~ ||I||^{degree:.2f}")
    # Theorem 4.1's shape: polynomial (the naive evaluator's degree is
    # roughly 2-3 here: |dom|^2 pairs per stage, |dom| ~ |I| by density).
    assert degree < 4.5
