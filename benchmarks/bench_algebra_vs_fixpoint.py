"""E20 — the conclusion's first bullet: fixpoints are tractable
recursion, the powerset operator is not.

Transitive closure by powerset enumeration (the algebra-with-powerset
formulation) against the IFP route and the native loop, over growing
graphs.  The powerset route's cost explodes with the number of
non-edges; the fixpoint routes grow polynomially.
"""

import pytest
from conftest import measure_seconds

from repro.algebra import AlgebraError, tc_via_loop, tc_via_powerset
from repro.core.safety import evaluate_range_restricted
from repro.workloads import chain_graph, transitive_closure_query


def test_powerset_tc_small(benchmark):
    inst = chain_graph(3)
    pairs = benchmark(lambda: tc_via_powerset(inst))
    assert pairs == tc_via_loop(inst)


def test_ifp_tc_same_graph(benchmark):
    inst = chain_graph(3)
    report = benchmark(lambda: evaluate_range_restricted(
        transitive_closure_query("U"), inst))
    pairs = frozenset((r.component(1), r.component(2))
                      for r in report.answer)
    assert pairs == tc_via_loop(inst)


def test_native_loop_same_graph(benchmark):
    inst = chain_graph(3)
    pairs = benchmark(lambda: tc_via_loop(inst))
    assert len(pairs) == 3


def test_crossover_shape(benchmark):
    """Powerset cost explodes where IFP stays flat: the crossover the
    paper's conclusion predicts."""
    def sweep():
        rows = []
        for n in (3, 4):
            inst = chain_graph(n)
            powerset_seconds, powerset_pairs = measure_seconds(
                tc_via_powerset, inst)
            ifp_seconds, report = measure_seconds(
                evaluate_range_restricted,
                transitive_closure_query("U"), inst)
            ifp_pairs = frozenset((r.component(1), r.component(2))
                                  for r in report.answer)
            assert powerset_pairs == ifp_pairs == tc_via_loop(inst)
            rows.append((n, powerset_seconds, ifp_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE20: TC via powerset vs via IFP (seconds)")
    print(f"  {'nodes':>5} {'powerset':>10} {'IFP':>8} {'blowup':>7}")
    previous_powerset = None
    for n, powerset_seconds, ifp_seconds in rows:
        blowup = (powerset_seconds / previous_powerset
                  if previous_powerset else 1.0)
        print(f"  {n:>5} {powerset_seconds:>10.4f} {ifp_seconds:>8.4f} "
              f"{blowup:>7.1f}x")
        previous_powerset = powerset_seconds
    # exponential vs polynomial: one extra node multiplies the powerset
    # cost far more than the fixpoint cost
    assert rows[-1][1] > 4 * rows[0][1]


def test_powerset_wall(benchmark):
    """At 6 nodes the candidate space alone (2^(36-5) subsets) is out of
    reach: the powerset route hits its cap, the fixpoint does not."""
    inst = chain_graph(6)

    def run():
        with pytest.raises(AlgebraError):
            tc_via_powerset(inst, max_subsets=10 ** 6)
        return evaluate_range_restricted(
            transitive_closure_query("U"), inst).answer

    answer = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(answer) == 15
