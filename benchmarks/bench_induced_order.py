"""E09 — Lemma 4.3: induced orders, native vs formula-defined.

Benchmarks the three native implementations (comparator, sort keys,
arithmetic ranks) and the generated CALC formula, on whole domains.
The formula route is orders of magnitude slower — it exists to witness
*definability*, the native routes to be used; the bench quantifies that
gap.
"""

import itertools

from conftest import measure_seconds

from repro.core.evaluation import Evaluator
from repro.core.order_formulas import less_than_formula, order_schema, with_order_relation
from repro.core.syntax import Var
from repro.objects import (
    AtomOrder,
    Instance,
    compare,
    database_schema,
    materialize_domain,
    parse_type,
    rank,
    sort_key,
    sorted_values,
    unrank,
)

TYPE = parse_type("{[U,U]}")
ORDER = AtomOrder.from_labels("ab")
DOMAIN = materialize_domain(TYPE, ORDER.atoms)


def test_native_comparator(benchmark):
    def all_pairs():
        return sum(
            1 for left, right in itertools.product(DOMAIN, repeat=2)
            if compare(left, right, ORDER) < 0
        )

    count = benchmark(all_pairs)
    assert count == len(DOMAIN) * (len(DOMAIN) - 1) // 2


def test_sort_keys(benchmark):
    ordered = benchmark(lambda: sorted_values(DOMAIN, ORDER))
    assert len(ordered) == len(DOMAIN)
    for left, right in zip(ordered, ordered[1:]):
        assert compare(left, right, ORDER) < 0


def test_arithmetic_ranks(benchmark):
    def roundtrip():
        return [unrank(rank(value, TYPE, ORDER), TYPE, ORDER)
                for value in DOMAIN]

    values = benchmark(roundtrip)
    assert values == DOMAIN or set(values) == set(DOMAIN)


def test_formula_defined_order(benchmark):
    """Lemma 4.3's CALC formula, evaluated over all pairs."""
    base = database_schema(Seed=["U"])
    inst = with_order_relation(
        Instance(base, {"Seed": [(a,) for a in ORDER.atoms]}), ORDER)
    lt = less_than_formula(TYPE)
    phi = lt(Var("x", TYPE), Var("y", TYPE))
    evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)

    def all_pairs():
        return sum(
            1 for left, right in itertools.product(DOMAIN, repeat=2)
            if evaluator.evaluate_formula(
                phi, inst, {"x": left, "y": right},
                free_variable_types={"x": TYPE, "y": TYPE})
        )

    count = benchmark.pedantic(all_pairs, rounds=1, iterations=1)
    assert count == len(DOMAIN) * (len(DOMAIN) - 1) // 2


def test_native_vs_formula_gap(benchmark):
    base = database_schema(Seed=["U"])
    inst = with_order_relation(
        Instance(base, {"Seed": [(a,) for a in ORDER.atoms]}), ORDER)
    lt = less_than_formula(TYPE)
    phi = lt(Var("x", TYPE), Var("y", TYPE))
    evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
    pair = (DOMAIN[3], DOMAIN[7])

    def measure():
        native_seconds, native_result = measure_seconds(
            lambda: compare(*pair, ORDER) < 0)
        formula_seconds, formula_result = measure_seconds(
            evaluator.evaluate_formula, phi, inst,
            {"x": pair[0], "y": pair[1]},
            {"x": TYPE, "y": TYPE})
        assert native_result == formula_result
        return native_seconds, formula_seconds

    native_seconds, formula_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    print(f"\nE09: one comparison — native {native_seconds * 1e6:.1f}us, "
          f"formula {formula_seconds * 1e6:.1f}us "
          f"({formula_seconds / max(native_seconds, 1e-9):.0f}x)")
