"""E04 — the hyper(i,k) table of Section 2.

Regenerates the hyperexponential domain-cardinality bounds and checks
``|dom(T, D)| <= hyper(i, k)(n)`` across the normalised ``<i,k>``-types;
benchmarks the exact big-integer arithmetic.
"""

from repro.objects.domains import (
    all_ik_types,
    dom_ik_cardinality,
    domain_cardinality,
    hyper,
)


def _hyper_table() -> list[tuple[int, int, int, int]]:
    rows = []
    for i in (0, 1, 2):
        for k in (1, 2):
            for n in (1, 2, 3):
                if i == 2 and n == 3 and k == 2:
                    continue  # 0.5 Mbit number; covered in tests
                rows.append((i, k, n, hyper(i, k, n)))
    return rows


def test_hyper_table(benchmark):
    rows = benchmark(_hyper_table)
    print("\nE04: hyper(i,k)(n)")
    for i, k, n, value in rows:
        shown = value if value.bit_length() <= 64 else f"2^{value.bit_length() - 1}"
        print(f"  hyper({i},{k})({n}) = {shown}")
    # spot values from the definition
    table = {(i, k, n): v for i, k, n, v in rows}
    assert table[(0, 2, 3)] == 9
    assert table[(1, 2, 3)] == 2 ** 18
    assert table[(2, 1, 2)] == 2 ** 4


def test_domain_cardinalities_bounded_by_hyper(benchmark):
    def check():
        results = []
        for i, k in [(1, 1), (1, 2)]:
            for n in (1, 2, 3):
                bound = hyper(i, k, n)
                for typ in all_ik_types(i, k):
                    cardinality = domain_cardinality(typ, n)
                    assert cardinality <= bound, (typ, n)
                results.append((i, k, n, dom_ik_cardinality(i, k, n)))
        return results

    results = benchmark(check)
    print("\nE04: |dom(i,k,D)| (typed union)")
    for i, k, n, value in results:
        shown = value if value.bit_length() <= 64 else f"~2^{value.bit_length() - 1}"
        print(f"  |dom({i},{k},{n} atoms)| = {shown}")


def test_exact_arithmetic_speed(benchmark):
    """The big-int arithmetic itself must stay cheap (used everywhere)."""
    def compute():
        return dom_ik_cardinality(1, 2, 4)

    value = benchmark(compute)
    assert value > 2 ** 30
