"""E08 — Lemma 4.1: cardinality- and size-based measures move together.

Sweeps a dense family and a sparse family, computing all four measures
(|I|, ||I||, |dom|, ||dom||) and checking the polynomial relationships
of the lemma's facts (a)-(c); benchmarks the measure computation.
"""

import math

from repro.analysis import classify_family, lemma41_witness
from repro.workloads import all_subsets_instance, sparse_chain_family


def test_lemma41_measures_dense(benchmark):
    def sweep():
        return [lemma41_witness(all_subsets_instance(n), 1, 1)
                for n in (2, 3, 4, 5)]

    witnesses = benchmark(sweep)
    print("\nE08: Lemma 4.1 measures, dense family (all subsets)")
    print(f"  {'|I|':>6} {'||I||':>8} {'|dom|':>8} {'||dom||':>9} "
          f"{'dom/I':>6}")
    for w in witnesses:
        print(f"  {w.cardinality:>6} {w.size:>8} {w.dom_cardinality:>8} "
              f"{w.dom_size:>9} {w.dom_cardinality / w.cardinality:>6.2f}")
        assert all(w.facts.values())
        # density in both measures, one fixed polynomial
        assert w.dom_cardinality <= 4 * w.cardinality
        assert w.dom_size <= 8 * w.size


def test_lemma41_measures_sparse(benchmark):
    def sweep():
        return [lemma41_witness(sparse_chain_family(n), 1, 1)
                for n in (4, 6, 8, 10)]

    witnesses = benchmark(sweep)
    print("\nE08: Lemma 4.1 measures, sparse family (singleton chain)")
    for w in witnesses:
        log_dom = math.log2(w.dom_cardinality)
        log_dom_size = math.log2(w.dom_size)
        print(f"  |I|={w.cardinality:>3} ||I||={w.size:>4} "
              f"log|dom|={log_dom:>5.1f} log||dom||={log_dom_size:>5.1f}")
        assert all(w.facts.values())
        # sparsity in both measures
        assert w.cardinality <= 4 * log_dom
        assert w.size <= 8 * log_dom_size ** 2


def test_family_classification(benchmark):
    def classify():
        dense = classify_family(all_subsets_instance, 1, 1, [3, 4, 5, 6, 7])
        sparse = classify_family(sparse_chain_family, 1, 2, [3, 4, 6, 8, 10])
        return dense, sparse

    dense, sparse = benchmark(classify)
    print("\nE08: family classification")
    print(f"  all-subsets: dense={dense.looks_dense} "
          f"(degree {dense.dense_exponent:.2f}), sparse={dense.looks_sparse}")
    print(f"  chain      : dense={sparse.looks_dense}, "
          f"sparse={sparse.looks_sparse} (degree {sparse.sparse_exponent:.2f})")
    assert dense.looks_dense and not dense.looks_sparse
    assert sparse.looks_sparse and not sparse.looks_dense
