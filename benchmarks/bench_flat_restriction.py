"""E18 — Theorem 6.1: flat-to-flat queries with height-1 intermediate
types cost one exponential in the worst case.

The kernel query (one existential {U} variable) on growing flat graphs:
the set quantifier ranges over 2**n subsets, so cost doubles per node —
the ``P(hyper(1,k))`` shape of ``(CALC_1^2)_0``.
"""

from conftest import fit_growth, measure_seconds

from repro.core.evaluation import evaluate
from repro.workloads import cycle_graph

import sys
import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "..", "tests"))


def _kernel_query():
    from repro.core.builder import V, exists, forall, member, proj, query, rel

    t = V("t", "[U,U]")
    X = V("X", "{U}")
    u, v = V("u", "U"), V("v", "U")
    w, z = V("w", "U"), V("z", "U")
    G = rel("G")
    independent = forall([u, v],
                         (member(u, X) & member(v, X)).implies(~G(u, v)))
    is_node = (exists(V("n1", "U"), G(w, V("n1", "U")))
               | exists(V("n2", "U"), G(V("n2", "U"), w)))
    dominated = member(w, X) | exists(z, member(z, X) & G(z, w))
    dominating = forall(w, is_node.implies(dominated))
    return query([t], G(proj(t, 1), proj(t, 2))
                 & exists(X, independent & dominating))


def test_kernel_on_even_cycle(benchmark):
    inst = cycle_graph(4)
    answer = benchmark(lambda: evaluate(_kernel_query(), inst))
    assert len(answer) == 4  # even cycles have kernels


def test_kernel_on_odd_cycle(benchmark):
    inst = cycle_graph(5)
    answer = benchmark(lambda: evaluate(_kernel_query(), inst))
    assert answer == frozenset()  # C5 has no kernel


def test_exponential_growth_in_nodes(benchmark):
    """Cost roughly doubles per node (the 2**n subset space).

    Odd cycles are the worst case: no kernel exists, so the existential
    set quantifier cannot short-circuit and sweeps all 2**n subsets.
    """
    sizes = [3, 5, 7]
    times = []

    def sweep():
        times.clear()
        for n in sizes:
            inst = cycle_graph(n)
            seconds, _ = measure_seconds(evaluate, _kernel_query(), inst)
            times.append(seconds)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE18: kernel query on odd cycles (no-kernel worst case)")
    for n, seconds in zip(sizes, times):
        print(f"  n={n}: {seconds:.4f}s")
    degree = fit_growth(sizes, times)
    print(f"  growth degree on log-log: ~n^{degree:.1f} "
          "(super-polynomial: doubling per node)")
    assert times[2] > 3 * times[1] > 3 * times[0] / 3
    assert times[2] > 6 * times[0]
