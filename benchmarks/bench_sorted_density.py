"""E21 — Remark 4.1: multi-sorted density, measured.

The schedule database (employees / days / teams) is dense w.r.t.
``{U@day}`` and sparse w.r.t. ``{U@emp}``.  Quantifying over day-sets
costs on the order of the database; the employee-set domain is ``2^130``
— the benchmark quantifies over day-sets (feasible) and shows the
sorted-density analysis predicting the asymmetry.
"""

from conftest import measure_seconds

from repro.analysis import (
    SortAssignment,
    is_dense_for_sorted_type,
    is_sparse_for_sorted_type,
    log2_sorted_domain_cardinality,
    parse_sorted_type,
    sorted_subobjects,
)
from repro.core.builder import V, exists, forall, member, query, rel
from repro.core.evaluation import Evaluator
from repro.workloads import schedule_instance

INSTANCE = schedule_instance(130, n_days=7, n_teams=3)
SORTS = SortAssignment.by_prefix({"e": "emp", "d": "day"}, INSTANCE.atoms())
DAY_SETS = parse_sorted_type("{U@day}")
EMP_SETS = parse_sorted_type("{U@emp}")


def test_sorted_density_analysis(benchmark):
    def analyse():
        return {
            "day_used": len(sorted_subobjects(INSTANCE, DAY_SETS, SORTS)),
            "day_log_dom": log2_sorted_domain_cardinality(
                DAY_SETS, SORTS.counts()),
            "emp_used": len(sorted_subobjects(INSTANCE, EMP_SETS, SORTS)),
            "emp_log_dom": log2_sorted_domain_cardinality(
                EMP_SETS, SORTS.counts()),
            "day_dense": is_dense_for_sorted_type(
                INSTANCE, DAY_SETS, SORTS, degree=1, coefficient=2),
            "emp_sparse": is_sparse_for_sorted_type(
                INSTANCE, EMP_SETS, SORTS, degree=1, coefficient=2),
        }

    result = benchmark(analyse)
    print("\nE21: Remark 4.1's schedule database")
    print(f"  day-sets : {result['day_used']} used of "
          f"2^{result['day_log_dom']:.0f} possible -> dense: "
          f"{result['day_dense']}")
    print(f"  emp-sets : {result['emp_used']} used of "
          f"2^{result['emp_log_dom']:.0f} possible -> sparse: "
          f"{result['emp_sparse']}")
    assert result["day_dense"]
    assert result["emp_sparse"]


def test_quantifying_over_the_dense_sort(benchmark):
    """'Queries may use variables of type set-of-days without a
    prohibitive cost': a universal day-set quantifier over the full
    2^7-subset domain, against the 133-atom database."""
    from repro.core.builder import subset

    s = V("s", "{U}")
    e = V("e", "U")
    # A tautological universal day-set quantifier: cannot short-circuit,
    # sweeps the whole sorted domain per head candidate.
    q = query(
        [("e", "U")],
        exists(s, rel("Schedule")(e, s))
        & forall(V("s2", "{U}"), subset(V("s2", "{U}"), V("s2", "{U}"))),
    )
    # The evaluator's active domain spans ALL atoms; restrict the
    # quantified variable's range to day-subsets to model the *sorted*
    # quantifier of Remark 4.1:
    from repro.objects import materialize_domain, parse_type

    day_atoms = sorted(SORTS.atoms_of("day"), key=lambda a: str(a.label))
    day_sets = materialize_domain(parse_type("{U}"), day_atoms)
    stored_sets = [row.component(2)
                   for row in INSTANCE.relation("Schedule")]
    evaluator = Evaluator(
        INSTANCE.schema,
        variable_ranges={"s2": day_sets,
                         "s": stored_sets,  # range-restricted via Schedule
                         "e": sorted(SORTS.atoms_of("emp"),
                                     key=lambda a: str(a.label))},
        max_product=10 ** 8,
    )

    def run():
        return evaluator.evaluate(q, INSTANCE)

    answer = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds, _ = measure_seconds(run)
    iterations = evaluator.last_stats["quantifier_iterations"]
    print(f"\nE21: day-set quantifier sweep: {iterations} iterations, "
          f"{seconds:.3f}s over a 130-employee database")
    assert len(answer) == 130
    # The same query with an employee-set quantifier would sweep 2^130
    # candidates; the sorted analysis above is what rules it out.
