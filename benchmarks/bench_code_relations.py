"""E10 — Lemma 4.4: CODE_T dictionary construction.

Benchmarks building CODE_U (the paper's successor-rule induction) and
CODE_T for nested types, and verifies the words they spell equal the
standard encodings.
"""

from repro.machines.code_relations import code_relation, code_u_table
from repro.objects import AtomOrder, encode_value, materialize_domain, parse_type


def test_code_u_construction(benchmark):
    order = AtomOrder.from_labels("abcdefghijklmnop")
    rows = benchmark(lambda: code_u_table(order))
    # total digits = sum of binary lengths of 0..15
    assert len(rows) == sum(len(format(i, "b")) for i in range(16))


def test_code_set_type(benchmark):
    order = AtomOrder.from_labels("abc")
    typ = parse_type("{U}")
    relation = benchmark(lambda: code_relation(typ, order))
    for value in materialize_domain(typ, order.atoms):
        assert relation.word_of(value) == encode_value(value, order)


def test_code_nested_type(benchmark):
    order = AtomOrder.from_labels("ab")
    typ = parse_type("{[U,{U}]}")
    relation = benchmark(lambda: code_relation(typ, order))
    print(f"\nE10: CODE_{{[U,{{U}}]}} over 2 atoms: "
          f"{len(relation.rows)} rows, index arity m = {relation.index_arity}")
    # spot-check a word
    domain = materialize_domain(typ, order.atoms)
    assert relation.word_of(domain[-1]) == encode_value(domain[-1], order)


def test_code_row_counts_track_encoding_sizes(benchmark):
    """#rows of CODE_T == total symbols of all encodings (the dictionary
    stores exactly one row per positioned symbol)."""
    from repro.objects.encoding import domain_encoding_size

    order = AtomOrder.from_labels("abc")

    def check():
        results = []
        for text in ("{U}", "[U,{U}]"):
            typ = parse_type(text)
            relation = code_relation(typ, order)
            expected = domain_encoding_size(typ, 3)
            assert len(relation.rows) == expected
            results.append((text, len(relation.rows)))
        return results

    results = benchmark(check)
    for text, count in results:
        assert count > 0
