"""E19 — the Section 3 Datalog connection: inf-Datalog vs CALC+IFP.

Same-answer checks plus cost comparison of the Datalog engine (join
planner) against the calculus evaluator on shared workloads.
"""

from conftest import measure_seconds

from repro.core.evaluation import evaluate
from repro.datalog import (
    BuiltinLiteral,
    Literal,
    Program,
    Rule,
    evaluate_inflationary,
    program_to_query,
)
from repro.workloads import chain_graph, set_random_graph

GRAPH = set_random_graph(3, 6, p=0.3, seed=77)


def _tc_program():
    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["{U}", "{U}"]},
    )


def _members_program():
    return Program(
        rules=[Rule(Literal("M", ["e"]),
                    [Literal("G", ["x", "y"]),
                     BuiltinLiteral("in", "e", "x")])],
        idb_types={"M": ["U"]},
    )


def test_datalog_tc(benchmark):
    program = _tc_program()
    result = benchmark(lambda: evaluate_inflationary(program, GRAPH))
    assert result["T"]


def test_calc_translation_tc(benchmark):
    program = _tc_program()
    query = program_to_query(program, GRAPH.schema)
    answer = benchmark(lambda: evaluate(query, GRAPH))
    calc_rows = frozenset(tuple(row.items) for row in answer)
    assert calc_rows == evaluate_inflationary(program, GRAPH)["T"]


def test_datalog_with_builtins(benchmark):
    program = _members_program()
    result = benchmark(lambda: evaluate_inflationary(program, GRAPH))
    assert len(result["M"]) <= 3


def _flat_tc_program():
    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["U", "U"]},
    )


def test_seminaive_beats_naive_on_long_chain(benchmark):
    """PR 3's headline: on chain TC the naive strategy re-fires every
    settled row each stage (O(n) stages x O(n^2) rows), the delta
    rewrite touches each row once.  The gap must be at least 2x."""
    inst = chain_graph(48)
    program = _flat_tc_program()

    def compare():
        naive_seconds, naive_result = measure_seconds(
            evaluate_inflationary, program, inst, strategy="naive")
        semi_seconds, semi_result = measure_seconds(
            evaluate_inflationary, program, inst, strategy="seminaive")
        assert naive_result == semi_result
        assert len(semi_result["T"]) == 48 * 47 // 2
        return naive_seconds, semi_seconds

    naive_seconds, semi_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print(f"\nE19/PR3: chain(48) TC — naive {naive_seconds:.4f}s, "
          f"semi-naive {semi_seconds:.4f}s "
          f"({naive_seconds / max(semi_seconds, 1e-9):.1f}x)")
    assert semi_seconds * 2 < naive_seconds


def test_engine_comparison(benchmark):
    """The Datalog join planner is far cheaper than enumerating the
    calculus quantifiers over full domains (same language level)."""
    program = _tc_program()
    query = program_to_query(program, GRAPH.schema)

    def compare():
        datalog_seconds, datalog_result = measure_seconds(
            evaluate_inflationary, program, GRAPH)
        calc_seconds, calc_answer = measure_seconds(evaluate, query, GRAPH)
        calc_rows = frozenset(tuple(row.items) for row in calc_answer)
        assert calc_rows == datalog_result["T"]
        return datalog_seconds, calc_seconds

    datalog_seconds, calc_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print(f"\nE19: TC — datalog {datalog_seconds:.4f}s, "
          f"naive CALC+IFP {calc_seconds:.4f}s "
          f"({calc_seconds / max(datalog_seconds, 1e-9):.0f}x)")
    assert datalog_seconds < calc_seconds
