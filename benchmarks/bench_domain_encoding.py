"""E03 — Proposition 2.1: ||dom(T,D)|| <= |dom(T,D)| * P(log|dom(T,D)|).

Sweeps universe sizes and types, computing the analytic encoding size
and confirming the quasi-linear bound; benchmarks the analytic
computation against brute-force enumeration.
"""

import math

from repro.objects.domains import domain_cardinality, materialize_domain
from repro.objects.encoding import domain_encoding_size, value_size
from repro.objects.values import Atom

TYPES = ["{U}", "[U,{U}]", "{[U,U]}", "{{U}}"]


def test_proposition_2_1_bound(benchmark):
    from repro.objects.types import parse_type

    def sweep():
        rows = []
        for text in TYPES:
            typ = parse_type(text)
            for n in (1, 2, 3, 4):
                cardinality = domain_cardinality(typ, n)
                if cardinality.bit_length() > 64:
                    continue
                size = domain_encoding_size(typ, n)
                log = max(1.0, math.log2(cardinality))
                ratio = size / (cardinality * log)
                rows.append((text, n, cardinality, size, ratio))
        return rows

    rows = benchmark(sweep)
    print("\nE03: ||dom(T,D)|| vs |dom| * log|dom|")
    print(f"  {'type':<10} {'n':>2} {'|dom|':>8} {'||dom||':>10} {'ratio':>7}")
    for text, n, cardinality, size, ratio in rows:
        print(f"  {text:<10} {n:>2} {cardinality:>8} {size:>10} {ratio:>7.2f}")
        # the paper's bound with P(x) = 8x^3 + 8
        log = max(1.0, math.log2(cardinality))
        assert size <= cardinality * (8 * log ** 3 + 8)


def test_analytic_vs_bruteforce(benchmark):
    """The analytic recurrence must match enumeration (and be faster)."""
    from repro.objects.types import parse_type

    typ = parse_type("{[U,U]}")
    n = 3
    atoms = [Atom(f"x{index}") for index in range(n)]

    def brute():
        domain_encoding_size.cache_clear()
        return sum(value_size(v, n) for v in materialize_domain(typ, atoms))

    brute_value = brute()

    def analytic():
        domain_encoding_size.cache_clear()
        return domain_encoding_size(typ, n)

    analytic_value = benchmark(analytic)
    assert analytic_value == brute_value
