"""E15 — Examples 5.1 and 5.3: three routes to the nest operation.

* rule-9 calculus form (``forall y (y in s <-> P(x,y))``), RR-evaluated;
* IFP-term form (``s = IFP(P(x,y) or Q(y), Q)``), RR-evaluated;
* the algebra's Nest operator (the [AB86] baseline).

All three agree; the bench records their costs as the relation grows.
"""

from conftest import measure_seconds

from repro.algebra import BaseRel, Nest
from repro.core.safety import evaluate_range_restricted
from repro.objects import database_schema, instance
from repro.workloads import atoms_universe, nest_query, nest_query_ifp


def _relation_instance(n_keys: int, values_per_key: int):
    atoms = atoms_universe(n_keys + values_per_key)
    keys = atoms[:n_keys]
    values = atoms[n_keys:]
    schema = database_schema(P=["U", "U"])
    rows = [(key, value) for key in keys for value in values]
    return instance(schema, P=rows)


INSTANCE = _relation_instance(4, 4)


def _algebra_rows(inst):
    return Nest(BaseRel("P"), [1], [2]).evaluate(inst)


def test_nest_rule9(benchmark):
    report = benchmark(lambda: evaluate_range_restricted(nest_query(),
                                                         INSTANCE))
    assert len(report.answer) == 4


def test_nest_ifp_term(benchmark):
    report = benchmark(lambda: evaluate_range_restricted(nest_query_ifp(),
                                                         INSTANCE))
    assert len(report.answer) == 4


def test_nest_algebra(benchmark):
    rows = benchmark(lambda: _algebra_rows(INSTANCE))
    assert len(rows) == 4


def test_all_three_agree(benchmark):
    def compare():
        rule9 = evaluate_range_restricted(nest_query(), INSTANCE).answer
        ifp_term = evaluate_range_restricted(nest_query_ifp(),
                                             INSTANCE).answer
        algebra = frozenset(
            tuple(row) for row in _algebra_rows(INSTANCE)
        )
        calculus = frozenset(tuple(row.items) for row in rule9)
        assert rule9 == ifp_term
        assert calculus == algebra
        return len(rule9)

    count = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert count == 4


def test_growth(benchmark):
    """All routes stay polynomial as the relation grows."""
    def sweep():
        rows = []
        for keys in (2, 4, 6):
            inst = _relation_instance(keys, 4)
            r9_seconds, _ = measure_seconds(
                evaluate_range_restricted, nest_query(), inst)
            ifp_seconds, _ = measure_seconds(
                evaluate_range_restricted, nest_query_ifp(), inst)
            algebra_seconds, _ = measure_seconds(_algebra_rows, inst)
            rows.append((keys, r9_seconds, ifp_seconds, algebra_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE15: nest, three routes (seconds)")
    print(f"  {'keys':>4} {'rule 9':>9} {'IFP term':>9} {'algebra':>9}")
    for keys, r9, ifp_t, algebra in rows:
        print(f"  {keys:>4} {r9:>9.4f} {ifp_t:>9.4f} {algebra:>9.6f}")
    # the specialised algebra operator wins, both calculus routes stay sane
    assert rows[-1][3] <= rows[-1][1]
    assert rows[-1][1] < 30 * max(rows[0][1], 1e-3)
