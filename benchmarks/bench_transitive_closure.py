"""E06 — Example 3.1: transitive closure across engines.

One query, four evaluation routes: naive active-domain CALC+IFP,
range-restricted CALC+IFP, inflationary Datalog, and the hand-rolled
semi-naive loop.  All must agree; the bench records their costs.
"""

from conftest import measure_seconds

from repro.algebra import tc_via_loop
from repro.core.evaluation import evaluate
from repro.core.safety import evaluate_range_restricted
from repro.datalog import Literal, Program, Rule, evaluate_inflationary
from repro.workloads import set_random_graph, transitive_closure_query

GRAPH = set_random_graph(3, 6, p=0.35, seed=41)  # 6 set-typed nodes
QUERY = transitive_closure_query()


def _datalog_program():
    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["{U}", "{U}"]},
    )


def _reference_pairs():
    return tc_via_loop(GRAPH)


def test_tc_naive_active_domain(benchmark):
    answer = benchmark(lambda: evaluate(QUERY, GRAPH))
    pairs = frozenset((r.component(1), r.component(2)) for r in answer)
    assert pairs == _reference_pairs()


def test_tc_range_restricted(benchmark):
    report = benchmark(lambda: evaluate_range_restricted(QUERY, GRAPH))
    pairs = frozenset((r.component(1), r.component(2)) for r in report.answer)
    assert pairs == _reference_pairs()


def test_tc_datalog_inflationary(benchmark):
    program = _datalog_program()
    result = benchmark(lambda: evaluate_inflationary(program, GRAPH))
    assert frozenset(result["T"]) == frozenset(
        tuple(pair) for pair in _reference_pairs()
    )


def test_tc_native_semi_naive(benchmark):
    pairs = benchmark(lambda: tc_via_loop(GRAPH))
    assert pairs == _reference_pairs()


def test_tc_engines_agree_and_rank(benchmark):
    """Record the relative costs (native < datalog/RR << naive)."""
    def compare():
        naive_seconds, _ = measure_seconds(evaluate, QUERY, GRAPH)
        rr_seconds, _ = measure_seconds(
            evaluate_range_restricted, QUERY, GRAPH)
        datalog_seconds, _ = measure_seconds(
            evaluate_inflationary, _datalog_program(), GRAPH)
        native_seconds, _ = measure_seconds(tc_via_loop, GRAPH)
        return naive_seconds, rr_seconds, datalog_seconds, native_seconds

    naive, rr, datalog, native = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print("\nE06: transitive closure engine comparison (seconds)")
    print(f"  naive active-domain : {naive:.4f}")
    print(f"  range-restricted    : {rr:.4f}")
    print(f"  datalog inflationary: {datalog:.4f}")
    print(f"  native semi-naive   : {native:.4f}")
    assert native <= min(naive, rr, datalog)


def test_tc_strategy_differential(benchmark):
    """PR 3: naive vs delta-driven evaluation of the same query — the
    answers must agree; the bench records both costs for both engines."""
    program = _datalog_program()

    def compare():
        calc_naive, answer_naive = measure_seconds(
            evaluate, QUERY, GRAPH, strategy="naive")
        calc_semi, answer_semi = measure_seconds(
            evaluate, QUERY, GRAPH, strategy="seminaive")
        assert answer_naive == answer_semi
        dl_naive, result_naive = measure_seconds(
            evaluate_inflationary, program, GRAPH, strategy="naive")
        dl_semi, result_semi = measure_seconds(
            evaluate_inflationary, program, GRAPH, strategy="seminaive")
        assert result_naive == result_semi
        return calc_naive, calc_semi, dl_naive, dl_semi

    calc_naive, calc_semi, dl_naive, dl_semi = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print("\nE06/PR3: naive vs semi-naive on one TC query (seconds)")
    print(f"  CALC+IFP naive      : {calc_naive:.4f}")
    print(f"  CALC+IFP semi-naive : {calc_semi:.4f}")
    print(f"  datalog naive       : {dl_naive:.4f}")
    print(f"  datalog semi-naive  : {dl_semi:.4f}")


def test_tc_counter_report(obs_counters):
    """Report the engine counters behind the timings (not itself timed):
    fixpoint stage counts, range sizes, and Datalog dedup pressure."""
    evaluate_range_restricted(QUERY, GRAPH)
    evaluate_inflationary(_datalog_program(), GRAPH)
    stages = obs_counters.get("ifp.stages", 0)
    print("\nE06: engine counters for one run of each engine")
    for name in sorted(obs_counters):
        print(f"  {name}: {obs_counters[name]}")
    # TC over a graph with reachable paths converges in >= 2 IFP stages,
    # and both engines (calculus + datalog) report their stages.
    assert stages >= 4  # two engines, each >= 2 stages
    assert obs_counters.get("datalog.rows_derived", 0) > 0
