"""E13 — Theorem 4.2: the cost of quantifying one set level above the
density boundary is one exponential.

The same flat instance (dense w.r.t. <0,k>-types, sparse above) is
queried with existential variables of increasing set height.  Each
height adds one level of the hyper tower to the quantification space;
the measured quantifier-iteration counts track |dom(height)| exactly.
"""

from conftest import measure_seconds

from repro.core.builder import V, exists, forall, member, query, rel
from repro.core.evaluation import Evaluator
from repro.objects import database_schema, domain_cardinality, instance, parse_type
from repro.workloads import atoms_universe


def _flat_instance(n: int):
    atoms = atoms_universe(n)
    schema = database_schema(P=["U"])
    return instance(schema, P=[(a,) for a in atoms])


def _query_with_height(height: int):
    """Forces one *universal* quantifier over a type of the given set
    height, with a tautological body — the quantifier cannot
    short-circuit, so the full domain of the height is enumerated
    (exactly the cost the theorem accounts for)."""
    x = V("x", "U")
    if height == 0:
        return query([x], rel("P")(x))
    typ = ["{U}", "{{U}}"][height - 1]
    s = V("s", typ)
    if height == 1:
        tautology = member(x, s).implies(member(x, s))
    else:
        inner = V("t", "{U}")
        tautology = exists(inner, member(inner, s)).implies(
            exists(V("t2", "{U}"), member(V("t2", "{U}"), s)))
    return query([x], rel("P")(x) & forall(s, tautology))


def test_height_zero(benchmark):
    inst = _flat_instance(3)
    evaluator = Evaluator(inst.schema)
    answer = benchmark(lambda: evaluator.evaluate(_query_with_height(0), inst))
    assert len(answer) == 3


def test_height_one(benchmark):
    inst = _flat_instance(3)
    evaluator = Evaluator(inst.schema)
    answer = benchmark(lambda: evaluator.evaluate(_query_with_height(1), inst))
    assert len(answer) == 3


def test_height_two(benchmark):
    inst = _flat_instance(3)
    evaluator = Evaluator(inst.schema)
    answer = benchmark(lambda: evaluator.evaluate(_query_with_height(2), inst))
    assert len(answer) == 3


def test_tower_shape(benchmark):
    """Quantifier iterations grow by one exponential per height level."""
    n = 3
    inst = _flat_instance(n)

    def sweep():
        rows = []
        for height in (0, 1, 2):
            evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
            seconds, answer = measure_seconds(
                evaluator.evaluate, _query_with_height(height), inst)
            assert len(answer) == n
            iterations = evaluator.last_stats["quantifier_iterations"]
            rows.append((height, iterations, seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE13: quantification cost per set height (n = 3 atoms)")
    print(f"  {'height':>6} {'iterations':>11} {'seconds':>9} {'|dom|':>8}")
    doms = [n, domain_cardinality(parse_type("{U}"), n),
            domain_cardinality(parse_type("{{U}}"), n)]
    for (height, iterations, seconds), dom in zip(rows, doms):
        print(f"  {height:>6} {iterations:>11} {seconds:>9.4f} {dom:>8}")
    # hyper shape: each level multiplies the work by ~|dom(level)|
    assert rows[1][1] > 2 * rows[0][1]
    assert rows[2][1] > 8 * rows[1][1]


def test_sparse_input_pays_full_tower(benchmark):
    """Theorem 4.2's contrast: on an input sparse w.r.t. <2,k>-types,
    the level-2 quantifier costs ~2^(2^n) regardless of |I| — growing
    the universe by one atom squares the cost."""
    def sweep():
        rows = []
        for n in (2, 3):
            inst = _flat_instance(n)
            evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
            seconds, _ = measure_seconds(
                evaluator.evaluate, _query_with_height(2), inst)
            rows.append((n, evaluator.last_stats["quantifier_iterations"],
                         seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE13: level-2 quantification vs universe size")
    for n, iterations, seconds in rows:
        print(f"  n={n}: {iterations} iterations, {seconds:.4f}s")
    # 2^(2^3) / 2^(2^2) = 16x more sets; iterations blow up accordingly.
    assert rows[1][1] > 8 * rows[0][1]
