"""E14 — Theorem 5.1: range-restricted evaluation is polynomial where
active-domain evaluation is hyperexponential.

The headline benchmark: the same RR query (Example 5.1's nest) evaluated

* under the active-domain semantics — cost grows with ``|dom({U})| = 2**n``
  because the set variable s ranges over all subsets;
* under the derived-range semantics — cost grows polynomially with the
  instance.

The crossover is immediate and widens with every atom added.
"""

from conftest import fit_growth, measure_seconds

from repro.core.evaluation import evaluate
from repro.core.safety import evaluate_range_restricted
from repro.objects import database_schema, instance
from repro.workloads import atoms_universe, nest_query


def _pairs_instance(n: int):
    atoms = atoms_universe(n)
    schema = database_schema(P=["U", "U"])
    rows = [(atoms[index], atoms[(index + 1) % n]) for index in range(n)]
    rows += [(atoms[index], atoms[(index + 2) % n]) for index in range(n)]
    return instance(schema, P=rows)


def test_active_domain_nest(benchmark):
    inst = _pairs_instance(8)  # dom({U}) has 256 elements: still feasible
    result = benchmark(lambda: evaluate(nest_query(), inst))
    assert len(result) == 8


def test_range_restricted_nest(benchmark):
    inst = _pairs_instance(8)
    result = benchmark(lambda: evaluate_range_restricted(nest_query(), inst))
    assert len(result.answer) == 8


def test_growth_shapes(benchmark):
    """Active-domain cost doubles per atom; RR cost grows polynomially."""
    sizes = [4, 6, 8, 10]
    active_times, restricted_times = [], []

    def sweep():
        active_times.clear()
        restricted_times.clear()
        for n in sizes:
            inst = _pairs_instance(n)
            active_seconds, active_answer = measure_seconds(
                evaluate, nest_query(), inst)
            restricted_seconds, restricted_report = measure_seconds(
                evaluate_range_restricted, nest_query(), inst)
            assert active_answer == restricted_report.answer
            active_times.append(active_seconds)
            restricted_times.append(restricted_seconds)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE14: nest query, active vs range-restricted (seconds)")
    print(f"  {'atoms':>5} {'active':>10} {'restricted':>10} {'speedup':>8}")
    for n, a, r in zip(sizes, active_times, restricted_times):
        print(f"  {n:>5} {a:>10.4f} {r:>10.4f} {a / max(r, 1e-9):>8.1f}x")
    active_growth = fit_growth(sizes, active_times)
    restricted_growth = fit_growth(sizes, restricted_times)
    print(f"  growth degree: active ~n^{active_growth:.1f}, "
          f"restricted ~n^{restricted_growth:.1f}")
    # Shape: active-domain evaluation grows much faster (it is
    # exponential in n; on a log-log fit that shows as a huge degree).
    assert active_times[-1] > 4 * restricted_times[-1]
    assert active_growth > restricted_growth + 1.0


def test_range_restriction_makes_infeasible_feasible(benchmark):
    """At 16 atoms the active domain for s has 65,536 sets; the naive
    evaluator would need ~16M quantifier iterations per head candidate,
    while the RR evaluation finishes instantly."""
    inst = _pairs_instance(16)
    report = benchmark(lambda: evaluate_range_restricted(nest_query(), inst))
    seconds = 0.0
    seconds, report = measure_seconds(
        evaluate_range_restricted, nest_query(), inst)
    print(f"\nE14: 16 atoms, RR evaluation: {seconds:.4f}s, "
          f"ranges {report.range_sizes}")
    assert len(report.answer) == 16
    assert seconds < 5.0
