"""Benchmark smoke for PR 3: naive vs semi-naive series -> BENCH_PR3.json.

Runs the chain-graph transitive-closure workload through the three
engines that grew a ``strategy`` switch (Datalog, CALC+IFP, algebra
loop), records seconds and work counters for both strategies, and
writes the series to ``BENCH_PR3.json`` at the repo root.  Exits
non-zero if the strategies disagree or the semi-naive Datalog engine
fails to beat naive by at least 2x on the largest chain — the gate CI
enforces.

Usage::

    PYTHONPATH=src python benchmarks/smoke_pr3.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.algebra import tc_via_loop
from repro.core.evaluation import evaluate
from repro.datalog import Literal, Program, Rule, evaluate_inflationary
from repro.obs import Tracer, use_tracer
from repro.workloads import chain_graph, transitive_closure_query

DATALOG_SIZES = (8, 16, 32, 64)
CALC_SIZES = (6, 8, 10, 12)
LOOP_SIZES = (64, 128, 256)


def _tc_program() -> Program:
    return Program(
        [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
         Rule(Literal("T", ["x", "y"]),
              [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])])],
        idb_types={"T": ["U", "U"]},
    )


def _timed_with_counters(fn, *args, **kwargs):
    tracer = Tracer()
    with use_tracer(tracer):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        seconds = time.perf_counter() - start
    return seconds, result, dict(tracer.counters)


def datalog_series() -> list[dict]:
    series = []
    for n in DATALOG_SIZES:
        inst = chain_graph(n)
        point: dict = {"n": n, "closure_rows": n * (n - 1) // 2}
        results = {}
        for strategy in ("naive", "seminaive"):
            seconds, result, counters = _timed_with_counters(
                evaluate_inflationary, _tc_program(), inst,
                strategy=strategy)
            results[strategy] = result
            point[strategy] = {
                "seconds": round(seconds, 6),
                "rows_derived": counters.get("datalog.rows_derived", 0),
                "dedup_hits": counters.get("datalog.dedup_hits", 0),
                "refires_avoided": counters.get("datalog.refires_avoided", 0),
                "stages": counters.get("ifp.stages", 0),
            }
        assert results["naive"] == results["seminaive"], f"datalog n={n}"
        assert len(results["seminaive"]["T"]) == point["closure_rows"]
        series.append(point)
    return series


def calc_series() -> list[dict]:
    series = []
    query = transitive_closure_query("U")
    for n in CALC_SIZES:
        inst = chain_graph(n)
        point: dict = {"n": n, "closure_rows": n * (n - 1) // 2}
        answers = {}
        for strategy in ("naive", "seminaive"):
            seconds, answer, counters = _timed_with_counters(
                evaluate, query, inst, strategy=strategy)
            answers[strategy] = answer
            point[strategy] = {
                "seconds": round(seconds, 6),
                "delta_rows": counters.get("eval.delta_rows", 0),
                "stage_skips": counters.get("eval.stage_skips", 0),
                "stages": counters.get("ifp.stages", 0),
            }
        assert answers["naive"] == answers["seminaive"], f"calc n={n}"
        series.append(point)
    return series


def loop_series() -> list[dict]:
    series = []
    for n in LOOP_SIZES:
        inst = chain_graph(n)
        point: dict = {"n": n}
        pairs = {}
        for strategy in ("naive", "seminaive"):
            start = time.perf_counter()
            pairs[strategy] = tc_via_loop(inst, strategy=strategy)
            point[strategy] = {
                "seconds": round(time.perf_counter() - start, 6),
            }
        assert pairs["naive"] == pairs["seminaive"], f"loop n={n}"
        series.append(point)
    return series


def main(argv: list[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else Path("BENCH_PR3.json")
    document = {
        "experiment": "PR3 naive vs semi-naive fixpoint evaluation",
        "workload": "transitive closure of chain_graph(n), flat U nodes",
        "datalog": datalog_series(),
        "calc_ifp": calc_series(),
        "algebra_loop": loop_series(),
    }
    largest = document["datalog"][-1]
    speedup = (largest["naive"]["seconds"]
               / max(largest["seminaive"]["seconds"], 1e-9))
    document["datalog_speedup_at_largest_n"] = round(speedup, 2)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {output} (datalog n={largest['n']}: "
          f"semi-naive {speedup:.1f}x faster)")
    if speedup < 2.0:
        print("FAIL: semi-naive not measurably faster", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
