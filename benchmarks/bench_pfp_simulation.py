"""E12b — Theorem 4.1(3): the PFP (PSPACE) simulation vs the IFP one.

The paper: the partial-fixpoint simulation keeps only the current
configuration — no timestamps.  Measured: PFP is both smaller (rows)
and faster (no history scans) than the inflationary construction on the
same machine runs.
"""

from conftest import measure_seconds

from repro.machines import copy_machine, simulate_query, simulate_query_pfp
from repro.objects import database_schema, instance
from repro.workloads import atoms_universe

TAPE_ALPHABET = set("01#[]{}G:")


def _graph(n_edges: int):
    atoms = atoms_universe(n_edges + 1)
    schema = database_schema(G=["U", "U"])
    return instance(schema, G=list(zip(atoms, atoms[1:])))


def test_pfp_copy_simulation(benchmark):
    inst = _graph(1)
    machine = copy_machine(TAPE_ALPHABET)
    result = benchmark(lambda: simulate_query_pfp(machine, inst,
                                                  max_steps=500_000))
    assert result.final_state == "done"


def test_ifp_vs_pfp_space_and_time(benchmark):
    machine = copy_machine(TAPE_ALPHABET)

    def compare():
        rows = []
        for n_edges in (1, 2):
            inst = _graph(n_edges)
            ifp_seconds, ifp_result = measure_seconds(
                simulate_query, machine, inst, None, None, 500_000)
            pfp_seconds, pfp_result = measure_seconds(
                simulate_query_pfp, machine, inst, None, None, 500_000)
            assert ifp_result.final_tape == pfp_result.final_tape
            rows.append((n_edges, ifp_result.rm_cardinality, ifp_seconds,
                         pfp_result.rm_cardinality, pfp_seconds))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nE12b: IFP (timestamped) vs PFP (current-config) simulation")
    print(f"  {'edges':>5} {'IFP rows':>9} {'IFP s':>8} "
          f"{'PFP rows':>9} {'PFP s':>8}")
    for edges, ifp_rows, ifp_s, pfp_rows, pfp_s in rows:
        print(f"  {edges:>5} {ifp_rows:>9} {ifp_s:>8.3f} "
              f"{pfp_rows:>9} {pfp_s:>8.3f}")
    # the paper's simplification: no timestamps => far fewer rows, and
    # no growing history to rescan => faster
    for _, ifp_rows, ifp_s, pfp_rows, pfp_s in rows:
        assert pfp_rows < ifp_rows / 10
        assert pfp_s < ifp_s
