"""E17 — Proposition 5.2: fixpoint elimination by tuple-encoding on
sparse inputs.

Transitive closure over a sparse graph of set-typed nodes, computed
(a) directly over the nested objects and (b) through the Q_T encoding
(nodes become atom tuples, set height drops).  Answers agree; the
encoded route quantifies over a polynomial space instead of 2**n sets.
"""

from conftest import measure_seconds

from repro.analysis import SparseEncoding
from repro.core.safety import evaluate_range_restricted
from repro.objects import domain_cardinality, parse_type
from repro.workloads import sparse_chain_family, transitive_closure_query


def test_direct_nested_tc(benchmark):
    inst = sparse_chain_family(7)
    report = benchmark(lambda: evaluate_range_restricted(
        transitive_closure_query("{U}"), inst))
    assert len(report.answer) == 21


def test_encoded_flat_tc(benchmark):
    inst = sparse_chain_family(7)
    encoding = SparseEncoding(inst)
    flat = encoding.encode_instance()
    node_type = flat.schema["G"].column_types[0]

    def run():
        answer = evaluate_range_restricted(
            transitive_closure_query(node_type), flat).answer
        return encoding.decode_rows(answer)

    decoded = benchmark(run)
    direct = evaluate_range_restricted(
        transitive_closure_query("{U}"), inst).answer
    assert decoded == direct


def test_quantification_space_collapse(benchmark):
    """The proof's payoff: the encoded node domain is n**m, not 2**n."""
    def sweep():
        rows = []
        for n in (6, 8, 10):
            inst = sparse_chain_family(n)
            encoding = SparseEncoding(inst)
            flat = encoding.encode_instance()
            nested_space = domain_cardinality(parse_type("{U}"), n)
            flat_space = domain_cardinality(
                flat.schema["G"].column_types[0], n)
            direct_seconds, direct = measure_seconds(
                evaluate_range_restricted,
                transitive_closure_query("{U}"), inst)
            node_type = flat.schema["G"].column_types[0]
            encoded_seconds, encoded = measure_seconds(
                evaluate_range_restricted,
                transitive_closure_query(node_type), flat)
            assert encoding.decode_rows(encoded.answer) == direct.answer
            rows.append((n, nested_space, flat_space,
                         direct_seconds, encoded_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE17: Proposition 5.2 encoding on the sparse chain")
    print(f"  {'n':>3} {'2^n sets':>9} {'encoded':>8} "
          f"{'direct s':>9} {'encoded s':>10}")
    for n, nested, flat, direct_s, encoded_s in rows:
        print(f"  {n:>3} {nested:>9} {flat:>8} {direct_s:>9.4f} "
              f"{encoded_s:>10.4f}")
        assert flat < nested
