"""E12 — Theorem 4.1's constructive proof: relational TM simulation.

Measures the cost of running a machine through the inflationary R_M
construction versus natively, and how R_M grows with the run (the
timestamping makes it quadratic-ish in steps x cells — the price of
inflationary semantics the proof pays knowingly).
"""

from conftest import measure_seconds

from repro.machines import TMSimulation, copy_machine, identity_machine, simulate_query
from repro.objects import database_schema, encode_instance, instance
from repro.workloads import atoms_universe

TAPE_ALPHABET = set("01#[]{}G:")


def _graph_instance(n_edges: int):
    atoms = atoms_universe(n_edges + 1)
    schema = database_schema(G=["U", "U"])
    return instance(schema, G=list(zip(atoms, atoms[1:])))


def test_identity_simulation(benchmark):
    inst = _graph_instance(2)
    schema = inst.schema
    machine = identity_machine(TAPE_ALPHABET)
    result = benchmark(
        lambda: simulate_query(machine, inst, output_schema=schema))
    assert result.output == inst


def test_copy_simulation(benchmark):
    inst = _graph_instance(1)
    machine = copy_machine(TAPE_ALPHABET)
    result = benchmark(lambda: simulate_query(machine, inst,
                                              max_steps=500_000))
    native = machine.run(encode_instance(inst))
    assert result.final_tape == native.output


def test_simulation_overhead_and_growth(benchmark):
    """Relational vs native cost, and R_M size vs steps."""
    machine = copy_machine(TAPE_ALPHABET)

    def sweep():
        rows = []
        for n_edges in (1, 2):
            inst = _graph_instance(n_edges)
            tape = encode_instance(inst)
            native_seconds, native = measure_seconds(
                machine.run, tape, 500_000)
            sim_seconds, result = measure_seconds(
                simulate_query, machine, inst, None, None, 500_000)
            assert result.final_tape == native.output
            rows.append((n_edges, native.steps, native_seconds,
                         sim_seconds, result.rm_cardinality,
                         result.index_arity))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE12: relational TM simulation vs native run (copy machine)")
    print(f"  {'edges':>5} {'steps':>6} {'native s':>9} {'R_M s':>8} "
          f"{'R_M rows':>9} {'m':>2}")
    for edges, steps, native_s, sim_s, rm_rows, m in rows:
        print(f"  {edges:>5} {steps:>6} {native_s:>9.4f} {sim_s:>8.4f} "
              f"{rm_rows:>9} {m:>2}")
    # R_M accumulates one configuration per step: rows ~ steps * cells.
    for edges, steps, _, _, rm_rows, _ in rows:
        assert rm_rows >= steps  # at least one row per timestamp
    # the relational route costs more than the native run (it is a
    # constructive proof, not an optimiser)
    assert rows[-1][3] > rows[-1][2]
