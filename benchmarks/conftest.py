"""Shared helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index (E03-E20).  Benchmarks assert the *shape* of the
paper's claims (who wins, polynomial vs exponential growth) with
generous factors, and print the series they measure so EXPERIMENTS.md
can quote them.
"""

from __future__ import annotations

import time

import pytest


@pytest.fixture
def obs_counters():
    """Engine counters (fixpoint stages, domain cardinalities, dedup
    hits...) captured for the duration of one benchmark.

    Installs a live :class:`repro.obs.Tracer` and yields its ``counters``
    dict; benchmarks read/print it so series report stages and domain
    sizes alongside seconds.  Counters accumulate across repeated
    benchmark rounds — divide by round count for per-run figures, or use
    the fixture in a separate non-timed reporting test.
    """
    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        yield tracer.counters


def measure_seconds(fn, *args, **kwargs) -> tuple[float, object]:
    """Wall-time one call (for intra-benchmark shape comparisons that
    pytest-benchmark's one-function-one-timer model doesn't cover)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def fit_growth(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log2(y) against log2(x): the growth degree."""
    import math

    points = [(math.log2(x), math.log2(max(y, 1e-9)))
              for x, y in zip(xs, ys) if x > 0]
    n = len(points)
    mean_x = sum(p[0] for p in points) / n
    mean_y = sum(p[1] for p in points) / n
    denominator = sum((p[0] - mean_x) ** 2 for p in points)
    if denominator == 0:
        return 0.0
    return sum((p[0] - mean_x) * (p[1] - mean_y) for p in points) / denominator
