"""Tests for complex-object Datalog (Section 3's deductive connection;
experiment E19)."""

import pytest

from repro.core.evaluation import evaluate
from repro.core.fixpoint import PFPDivergenceError
from repro.datalog import (
    BuiltinLiteral,
    DatalogError,
    DConst,
    DVar,
    Literal,
    Program,
    Rule,
    evaluate_inflationary,
    evaluate_partial,
    inflationary_stages,
    program_to_query,
)
from repro.objects import atom, cset, database_schema, instance


@pytest.fixture
def set_graph():
    schema = database_schema(G=["{U}", "{U}"])
    a, b, c, d = (cset(atom(ch)) for ch in "abcd")
    return instance(schema, G=[(a, b), (b, c), (c, d)])


@pytest.fixture
def tc_program():
    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["{U}", "{U}"]},
    )


class TestSyntax:
    def test_bare_lowercase_strings_are_variables(self):
        lit = Literal("P", ["x", DConst("A")])
        assert isinstance(lit.terms[0], DVar)
        assert isinstance(lit.terms[1], DConst)

    def test_head_must_be_positive(self):
        with pytest.raises(DatalogError):
            Rule(Literal("T", ["x"], positive=False), [])

    def test_undeclared_idb_rejected(self):
        with pytest.raises(DatalogError):
            Program([Rule(Literal("T", ["x"]), [Literal("P", ["x"])])],
                    idb_types={})

    def test_head_arity_checked(self):
        with pytest.raises(DatalogError):
            Program([Rule(Literal("T", ["x"]), [Literal("P", ["x"])])],
                    idb_types={"T": ["U", "U"]})

    def test_program_level(self, tc_program):
        assert tc_program.level() == (1, 0)

    def test_edb_predicates(self, tc_program):
        assert tc_program.edb_predicates() == {"G"}


class TestInflationary:
    def test_transitive_closure(self, set_graph, tc_program):
        result = evaluate_inflationary(tc_program, set_graph)
        assert len(result["T"]) == 6  # 3 + 2 + 1

    def test_matches_calc_ifp(self, set_graph, tc_program):
        """The Section 3 claim: inf-Datalog == CALC+IFP on this query."""
        query = program_to_query(tc_program, set_graph.schema)
        calc_rows = frozenset(
            tuple(row.items) for row in evaluate(query, set_graph)
        )
        assert calc_rows == evaluate_inflationary(tc_program, set_graph)["T"]

    def test_stages_grow_monotonically(self, set_graph, tc_program):
        sizes = [len(stage["T"])
                 for stage in inflationary_stages(tc_program, set_graph)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 6

    def test_negation_against_previous_stage(self, set_graph):
        """Inflationary negation: 'unreached' tuples derived at stage 1
        persist even after the positive atom appears later."""
        program = Program(
            rules=[
                Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
                Rule(Literal("T", ["x", "y"]),
                     [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
                Rule(Literal("New", ["x", "y"]),
                     [Literal("G", ["x", "z"]), Literal("G", ["z", "y"]),
                      Literal("T", ["x", "y"], positive=False)]),
            ],
            idb_types={"T": ["{U}", "{U}"], "New": ["{U}", "{U}"]},
        )
        result = evaluate_inflationary(program, set_graph)
        # At stage 1, T is empty, so every 2-step pair lands in New.
        assert len(result["New"]) == 2

    def test_constants_in_rules(self, set_graph):
        a = cset(atom("a"))
        program = Program(
            rules=[Rule(Literal("FromA", ["y"]),
                        [Literal("G", [DConst(a), "y"])])],
            idb_types={"FromA": ["{U}"]},
        )
        result = evaluate_inflationary(program, set_graph)
        assert result["FromA"] == frozenset({(cset(atom("b")),)})

    def test_builtin_equality_binds(self, set_graph):
        program = Program(
            rules=[Rule(Literal("Pairs", ["x", "y"]),
                        [Literal("G", ["x", "z"]),
                         BuiltinLiteral("=", "y", "z")])],
            idb_types={"Pairs": ["{U}", "{U}"]},
        )
        result = evaluate_inflationary(program, set_graph)
        assert len(result["Pairs"]) == 3

    def test_builtin_membership_generates(self, set_graph):
        program = Program(
            rules=[Rule(Literal("M", ["e"]),
                        [Literal("G", ["x", "y"]),
                         BuiltinLiteral("in", "e", "x")])],
            idb_types={"M": ["U"]},
        )
        result = evaluate_inflationary(program, set_graph)
        assert {str(r[0]) for r in result["M"]} == {"a", "b", "c"}

    def test_builtin_subset_filter(self, set_graph):
        program = Program(
            rules=[Rule(Literal("Sub", ["x", "y"]),
                        [Literal("G", ["x", "w"]), Literal("G", ["y", "w2"]),
                         BuiltinLiteral("sub", "x", "y"),
                         BuiltinLiteral("=", "x", "y", positive=False)])],
            idb_types={"Sub": ["{U}", "{U}"]},
        )
        # singleton nodes: no strict subset pairs
        assert evaluate_inflationary(program, set_graph)["Sub"] == frozenset()

    def test_unsafe_rule_rejected(self, set_graph):
        program = Program(
            rules=[Rule(Literal("Bad", ["x"]),
                        [Literal("G", ["y", "z"],  positive=False)])],
            idb_types={"Bad": ["{U}"]},
        )
        with pytest.raises(DatalogError):
            evaluate_inflationary(program, set_graph)


class TestPartialSemantics:
    def test_fixed_point_reached(self, set_graph, tc_program):
        """TC rules re-derive every tuple each stage once T is complete,
        so partial semantics converges to the same closure here... but
        the non-inflationary stage loses the base at stage 2 unless the
        rules re-assert it; the plain program does re-assert G-edges
        every stage, so it oscillates only if derivations shrink."""
        result = evaluate_partial(tc_program, set_graph)
        assert len(result["T"]) == 6

    def test_divergence(self, set_graph):
        program = Program(
            rules=[Rule(Literal("Flip", ["x"]),
                        [Literal("G", ["x", "y"]),
                         Literal("Flip", ["x"], positive=False)])],
            idb_types={"Flip": ["{U}"]},
        )
        with pytest.raises(PFPDivergenceError):
            evaluate_partial(program, set_graph)


class TestTranslation:
    def test_single_idb_required(self, set_graph):
        program = Program(
            rules=[
                Rule(Literal("A", ["x"]), [Literal("G", ["x", "y"])]),
                Rule(Literal("B", ["x"]), [Literal("G", ["y", "x"])]),
            ],
            idb_types={"A": ["{U}"], "B": ["{U}"]},
        )
        with pytest.raises(DatalogError):
            program_to_query(program, set_graph.schema)

    def test_translation_with_negation(self, set_graph):
        """Safe negation (all variables bound positively) translates."""
        program = Program(
            rules=[Rule(Literal("OneWay", ["x", "y"]),
                        [Literal("G", ["x", "y"]),
                         Literal("G", ["y", "x"], positive=False)])],
            idb_types={"OneWay": ["{U}", "{U}"]},
        )
        query = program_to_query(program, set_graph.schema)
        calc_rows = frozenset(
            tuple(row.items) for row in evaluate(query, set_graph)
        )
        datalog_rows = evaluate_inflationary(program, set_graph)["OneWay"]
        assert calc_rows == datalog_rows
        assert len(datalog_rows) == 3  # the chain has no back edges

    def test_translation_with_builtin(self, set_graph):
        program = Program(
            rules=[Rule(Literal("M", ["e"]),
                        [Literal("G", ["x", "y"]),
                         BuiltinLiteral("in", "e", "x")])],
            idb_types={"M": ["U"]},
        )
        query = program_to_query(program, set_graph.schema)
        calc_rows = frozenset(
            tuple(row.items) for row in evaluate(query, set_graph)
        )
        assert calc_rows == evaluate_inflationary(program, set_graph)["M"]
