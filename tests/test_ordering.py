"""Tests for the induced order <_T (Definition 4.2; E09).

Three implementations of the order must agree everywhere:
the direct comparator, the sort keys and the arithmetic ranks.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.domains import domain_cardinality, materialize_domain
from repro.objects.ordering import (
    AtomOrder,
    OrderError,
    all_atom_orders,
    compare,
    less_than,
    maximum,
    minimum,
    ordered_domain,
    rank,
    sort_key,
    sorted_values,
    successor,
    tuple_rank,
    tuple_unrank,
    unrank,
)
from repro.objects.types import U, parse_type
from repro.objects.values import Atom, cset, ctuple, atom

from .conftest import values_of_type

ORDER3 = AtomOrder.from_labels("abc")
SMALL_TYPES = ["U", "{U}", "[U,U]", "[U,{U}]", "{[U,U]}", "{{U}}"]


class TestAtomOrder:
    def test_index(self):
        assert ORDER3.index(Atom("a")) == 0
        assert ORDER3.index(Atom("c")) == 2

    def test_unknown_atom(self):
        with pytest.raises(OrderError):
            ORDER3.index(Atom("z"))

    def test_duplicates_rejected(self):
        with pytest.raises(OrderError):
            AtomOrder.from_labels("aba")

    def test_sorted_by_label(self):
        order = AtomOrder.sorted_by_label([Atom("c"), Atom("a"), Atom("b")])
        assert [a.label for a in order] == ["a", "b", "c"]

    def test_all_atom_orders_count(self):
        orders = list(all_atom_orders([Atom(ch) for ch in "abc"]))
        assert len(orders) == 6
        assert len(set(orders)) == 6


class TestDefinition42:
    """Hand-checked cases straight from Definition 4.2."""

    def test_tuple_lexicographic(self):
        t1 = ctuple(atom("a"), atom("c"))
        t2 = ctuple(atom("b"), atom("a"))
        assert compare(t1, t2, ORDER3) < 0  # first component decides

    def test_tuple_tie_breaks_right(self):
        t1 = ctuple(atom("a"), atom("b"))
        t2 = ctuple(atom("a"), atom("c"))
        assert compare(t1, t2, ORDER3) < 0

    def test_set_max_difference(self):
        # {a,c} vs {b}: max({a,c}-{b}) = c > max({b}-{a,c}) = b  =>  {b} < {a,c}
        s1 = cset(atom("a"), atom("c"))
        s2 = cset(atom("b"))
        assert compare(s2, s1, ORDER3) < 0

    def test_subset_is_smaller(self):
        # x - y empty => x <= y; {c} < {a,c}
        assert less_than(cset(atom("c")), cset(atom("a"), atom("c")), ORDER3)

    def test_empty_set_is_minimum(self):
        typ = parse_type("{U}")
        assert minimum(typ, ORDER3) == cset()
        for value in materialize_domain(typ, ORDER3.atoms):
            if value != cset():
                assert less_than(cset(), value, ORDER3)

    def test_full_set_is_maximum(self):
        typ = parse_type("{U}")
        assert maximum(typ, ORDER3) == cset(atom("a"), atom("b"), atom("c"))

    def test_known_order_of_subsets(self):
        """The characteristic-number order on subsets of {a,b,c}."""
        typ = parse_type("{U}")
        expected = ["{}", "{a}", "{b}", "{a, b}", "{c}", "{a, c}",
                    "{b, c}", "{a, b, c}"]
        actual = [str(v) for v in ordered_domain(typ, ORDER3)]
        assert actual == expected


class TestThreeImplementationsAgree:
    @pytest.mark.parametrize("text", SMALL_TYPES)
    def test_comparator_vs_sort_key(self, text):
        typ = parse_type(text)
        order = AtomOrder.from_labels("ab")
        values = materialize_domain(typ, order.atoms)
        for v1, v2 in itertools.product(values, repeat=2):
            by_compare = compare(v1, v2, order)
            k1, k2 = sort_key(v1, order), sort_key(v2, order)
            by_key = (k1 > k2) - (k1 < k2)
            assert by_compare == by_key, (v1, v2)

    @pytest.mark.parametrize("text", SMALL_TYPES)
    def test_comparator_vs_rank(self, text):
        typ = parse_type(text)
        order = AtomOrder.from_labels("ab")
        values = materialize_domain(typ, order.atoms)
        for v1, v2 in itertools.product(values, repeat=2):
            by_compare = compare(v1, v2, order)
            r1, r2 = rank(v1, typ, order), rank(v2, typ, order)
            assert by_compare == (r1 > r2) - (r1 < r2), (v1, v2)

    @pytest.mark.parametrize("text", SMALL_TYPES)
    def test_rank_unrank_roundtrip(self, text):
        typ = parse_type(text)
        total = domain_cardinality(typ, len(ORDER3))
        for position in range(min(total, 200)):
            value = unrank(position, typ, ORDER3)
            assert rank(value, typ, ORDER3) == position

    def test_rank_out_of_range(self):
        with pytest.raises(OrderError):
            unrank(8, parse_type("{U}"), ORDER3.atoms and ORDER3)
            # |dom({U})| = 8 over 3 atoms; rank 8 is out of range
        with pytest.raises(OrderError):
            unrank(-1, parse_type("U"), ORDER3)


class TestSuccessor:
    def test_chain_covers_domain(self):
        typ = parse_type("{U}")
        current = minimum(typ, ORDER3)
        seen = [current]
        while (nxt := successor(current, typ, ORDER3)) is not None:
            assert less_than(current, nxt, ORDER3)
            seen.append(nxt)
            current = nxt
        assert len(seen) == domain_cardinality(typ, 3)

    def test_maximum_has_no_successor(self):
        typ = parse_type("[U,U]")
        assert successor(maximum(typ, ORDER3), typ, ORDER3) is None


class TestTupleRanks:
    def test_roundtrip(self):
        types = [U, parse_type("{U}")]
        total = 3 * 8
        for position in range(total):
            values = tuple_unrank(position, types, ORDER3)
            assert tuple_rank(values, types, ORDER3) == position

    def test_lexicographic(self):
        types = [U, U]
        previous = None
        for position in range(9):
            values = tuple_unrank(position, types, ORDER3)
            if previous is not None:
                # first component non-decreasing; strictly increasing overall
                assert ORDER3.index(values[0]) >= ORDER3.index(previous[0])
            previous = values


class TestSortedValues:
    @given(st.frozensets(values_of_type(parse_type("{U}"), "abc"),
                         min_size=2, max_size=8))
    @settings(max_examples=50)
    def test_sorted_is_strictly_increasing(self, values):
        ordered = sorted_values(values, ORDER3)
        for left, right in zip(ordered, ordered[1:]):
            assert less_than(left, right, ORDER3)

    def test_order_depends_on_enumeration(self):
        """Different <_U enumerations induce different <_T (genericity of
        the final simulation results is established separately)."""
        s_a, s_b = cset(atom("a")), cset(atom("b"))
        order_ab = AtomOrder.from_labels("ab")
        order_ba = AtomOrder.from_labels("ba")
        assert less_than(s_a, s_b, order_ab)
        assert less_than(s_b, s_a, order_ba)
