"""Tests for range restriction (Definitions 5.2/5.3, Theorem 5.1;
experiments E14, E15, E16)."""

import pytest

from repro.core.builder import C, V, eq, exists, forall, ifp, member, proj, query, rel
from repro.core.range_restriction import (
    RangeComputationError,
    analyze,
    analyze_query,
    compute_ranges,
    is_range_restricted,
    negate,
    nnf,
)
from repro.core.safety import evaluate_range_restricted, verify_safety
from repro.core.syntax import And, Forall, Implies, Not, Or
from repro.objects import atom, cset, database_schema, instance
from repro.workloads import (
    bipartite_query,
    nest_query,
    nest_query_ifp,
    transitive_closure_query,
    transitive_closure_term_query,
)


@pytest.fixture
def p_schema():
    return database_schema(P=["U", "U"])


@pytest.fixture
def p_instance(p_schema):
    return instance(p_schema, P=[("a", "b"), ("a", "c"), ("b", "c")])


class TestNNF:
    def test_double_negation(self):
        f = rel("P")(V("x", "U"))
        assert nnf(Not(Not(f))) == f

    def test_de_morgan(self):
        a, b = rel("P")(V("x", "U")), rel("Q")(V("x", "U"))
        assert nnf(Not(a & b)) == Or((Not(a), Not(b)))
        assert nnf(Not(a | b)) == And((Not(a), Not(b)))

    def test_quantifier_duality(self):
        f = exists(V("x", "U"), rel("P")(V("x", "U")))
        pushed = negate(f)
        assert isinstance(pushed, Forall)
        assert isinstance(pushed.body, Not)

    def test_implication_expansion(self):
        a, b = rel("P")(V("x", "U")), rel("Q")(V("x", "U"))
        assert nnf(Implies(a, b)) == Or((Not(a), b))
        assert nnf(Not(Implies(a, b))) == And((a, Not(b)))


class TestDefinition52Rules:
    """Each rule of Definition 5.2 exercised in isolation."""

    def _rr(self, formula, schema, **types):
        from repro.objects import parse_type as pt

        resolved = {n: pt(t) if isinstance(t, str) else t
                    for n, t in types.items()}
        return analyze(formula, resolved, frozenset(schema.relation_names))

    def test_rule1_database_atom(self, p_schema):
        f = rel("P")(V("x", "U"), V("y", "U"))
        result = self._rr(f, p_schema, x="U", y="U")
        assert ("x",) in result.restricted
        assert ("y",) in result.restricted

    def test_rules_2_3_projections(self):
        schema = database_schema(R=["[U,{U}]"])
        t = V("t", "[U,{U}]")
        f = rel("R")(t)
        result = self._rr(f, schema, t="[U,{U}]")
        # rule 2: t restricted => t.1, t.2 restricted
        assert ("t", 1) in result.restricted
        assert ("t", 2) in result.restricted

    def test_rule3_components_to_tuple(self, p_schema):
        t = V("t", "[U,U]")
        f = rel("P")(proj(t, 1), proj(t, 2))
        result = self._rr(f, p_schema, t="[U,U]")
        assert ("t",) in result.restricted  # all components restricted

    def test_rule4_equality_constant(self, p_schema):
        f = eq(V("x", "U"), C("a"))
        result = self._rr(f, p_schema, x="U")
        assert ("x",) in result.restricted

    def test_rule4_equality_chaining(self, p_schema):
        x, y = V("x", "U"), V("y", "U")
        f = eq(x, y) & rel("P")(y, y)
        result = self._rr(f, p_schema, x="U", y="U")
        assert ("x",) in result.restricted

    def test_rule4_membership_chaining(self):
        schema = database_schema(R=["{U}"])
        x, s = V("x", "U"), V("s", "{U}")
        f = member(x, s) & rel("R")(s)
        result = self._rr(f, schema, x="U", s="{U}")
        assert ("x",) in result.restricted

    def test_rule5_conjunction_union(self, p_schema):
        x, y = V("x", "U"), V("y", "U")
        f = rel("P")(x, x) & eq(y, C("b"))
        result = self._rr(f, p_schema, x="U", y="U")
        assert {("x",), ("y",)} <= set(result.restricted)

    def test_rule6_disjunction_needs_both(self, p_schema):
        x, y = V("x", "U"), V("y", "U")
        good = rel("P")(x, x) | eq(x, C("a"))
        result = self._rr(good, p_schema, x="U")
        assert ("x",) in result.restricted
        bad = rel("P")(x, x) | rel("P")(y, y)  # x missing from 2nd disjunct
        result = self._rr(bad, p_schema, x="U", y="U")
        assert ("x",) not in result.restricted
        assert ("y",) not in result.restricted

    def test_rule7_universal(self, p_schema):
        y = V("y", "U")
        # forall y (P(y,y) -> P(y,y)): nnf(not body) = P(y,y) and not P(y,y)
        f = forall(y, rel("P")(y, y).implies(rel("P")(y, y)))
        result = self._rr(f, p_schema, y="U")
        assert not result.violations

    def test_rule7_violation(self, p_schema):
        y = V("y", "U")
        f = forall(y, rel("P")(y, y))  # not(P(y,y)) gives y nothing
        result = self._rr(f, p_schema, y="U")
        assert result.violations

    def test_rule8_existential(self, p_schema):
        z = V("z", "U")
        f = exists(z, rel("P")(z, z))
        result = self._rr(f, p_schema, z="U")
        assert not result.violations

    def test_rule8_violation(self, p_schema):
        z = V("z", "U")
        f = exists(z, ~rel("P")(z, z))
        result = self._rr(f, p_schema, z="U")
        assert result.violations

    def test_rule9_nest_pattern(self, p_schema):
        """forall y (y in s <-> P(x, y)) restricts s."""
        x, s, y = V("x", "U"), V("s", "{U}"), V("y", "U")
        f = forall(y, member(y, s).iff(rel("P")(x, y)))
        result = self._rr(f, p_schema, x="U", s="{U}", y="U")
        assert ("s",) in result.restricted

    def test_negation_blocks_restriction(self, p_schema):
        x = V("x", "U")
        f = ~rel("P")(x, x)
        result = self._rr(f, p_schema, x="U")
        assert ("x",) not in result.restricted


class TestPaperExamples:
    def test_example_5_1_nest_is_rr(self, p_schema):
        assert is_range_restricted(nest_query(), p_schema)

    def test_example_5_3_nest_ifp_is_rr(self, p_schema):
        result = analyze_query(nest_query_ifp(), p_schema)
        assert result.is_range_restricted
        assert result.fixpoint_columns["Q"] == frozenset({1})

    def test_example_5_2_tau_star(self):
        """The paper's exact iteration: tau* = {2}, RR(xi) = {y}."""
        schema = database_schema(Pu=["U"])
        x, y, z, t = (V(n, "U") for n in "xyzt")
        phi = (exists(t, rel("S52")(z, x, t) & rel("S52")(t, y, y))
               | (~rel("Pu")(x) & rel("Pu")(y)))
        fix = ifp("S52", [x, y, z], phi)
        q = query([x, y, z], fix(x, y, z))
        result = analyze_query(q, schema)
        assert result.fixpoint_columns["S52"] == frozenset({2})
        assert ("y",) in result.restricted
        assert ("x",) not in result.restricted
        assert ("z",) not in result.restricted
        assert not result.is_range_restricted

    def test_tc_is_rr_with_all_columns(self, set_graph_schema):
        result = analyze_query(transitive_closure_query(), set_graph_schema)
        assert result.is_range_restricted
        assert result.fixpoint_columns["S"] == frozenset({1, 2})

    def test_tc_term_query_is_rr(self, set_graph_schema):
        """Rule 9': x = IFP(...) with all columns restricted."""
        result = analyze_query(transitive_closure_term_query(),
                               set_graph_schema)
        assert result.is_range_restricted

    def test_bipartite_is_not_rr(self, flat_graph_schema):
        result = analyze_query(bipartite_query(), flat_graph_schema)
        assert not result.is_range_restricted
        assert any("X" in v or "Y" in v for v in result.violations)


class TestRangeFunctions:
    """Theorem 5.1: derived ranges make restricted == active-domain."""

    def test_ranges_are_polynomial(self, p_instance):
        report = evaluate_range_restricted(nest_query(), p_instance)
        for name, size in report.range_sizes.items():
            assert size <= p_instance.cardinality * 4, name

    def test_nest_agreement(self, p_instance):
        assert verify_safety(nest_query(), p_instance)

    def test_nest_ifp_agreement(self, p_instance):
        assert verify_safety(nest_query_ifp(), p_instance)

    def test_tc_agreement(self, set_graph_instance):
        assert verify_safety(transitive_closure_query(), set_graph_instance)

    def test_tc_term_query_feasible_only_restricted(self, set_graph_schema):
        """The CALC_2^2 closure-as-object query has a 2^64-element head
        domain on 4 atoms — active-domain evaluation is impossible, the
        derived ranges make it instant (the point of Section 5)."""
        a, b, c, d = (cset(atom(ch)) for ch in "abcd")
        inst = instance(set_graph_schema, G=[(a, b), (b, c), (c, d)])
        report = evaluate_range_restricted(transitive_closure_term_query(),
                                           inst)
        assert len(report.answer) == 1
        (closure,) = next(iter(report.answer)).items
        assert len(closure) == 6  # 3+2+1 reachable pairs

    def test_not_rr_raises(self, flat_graph_schema):
        from repro.workloads import cycle_graph

        with pytest.raises(RangeComputationError):
            compute_ranges(bipartite_query(), cycle_graph(3))

    def test_constants_seed_ranges(self, p_instance):
        x, y = V("x", "U"), V("y", "U")
        q = query([x], eq(x, C("z")) & ~rel("P")(x, x))
        report = evaluate_range_restricted(q, p_instance)
        assert {str(t) for t in report.answer} == {"[z]"}

    def test_equality_chain_ranges(self, p_instance):
        x, y = V("x", "U"), V("y", "U")
        q = query([x], exists(y, eq(x, y) & rel("P")(y, y)))
        # P has no self-loops: empty, but must not error
        report = evaluate_range_restricted(q, p_instance)
        assert report.answer == frozenset()


class TestManyQueriesAgree:
    """Semantic check of Theorem 5.1 across a battery of RR queries."""

    @pytest.mark.parametrize("query_factory", [
        nest_query, nest_query_ifp, transitive_closure_query,
    ])
    def test_on_random_instances(self, query_factory):
        import random

        rng = random.Random(5)
        for trial in range(3):
            if query_factory in (nest_query, nest_query_ifp):
                schema = database_schema(P=["U", "U"])
                atoms = ["a", "b", "c", "d"]
                rows = {(rng.choice(atoms), rng.choice(atoms))
                        for _ in range(rng.randint(1, 6))}
                inst = instance(schema, P=list(rows))
                q = query_factory()
            else:
                schema = database_schema(G=["{U}", "{U}"])
                nodes = [cset(atom(ch)) for ch in "abc"]
                rows = {(rng.choice(nodes), rng.choice(nodes))
                        for _ in range(rng.randint(1, 4))}
                inst = instance(schema, G=list(rows))
                q = query_factory("{U}")
            assert verify_safety(q, inst), (query_factory, trial)
