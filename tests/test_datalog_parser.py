"""The textual Datalog format (:mod:`repro.datalog.parser`).

Round-trips the grammar's constructs into the syntax objects and pins
the error positions (1-based line:column) of :class:`DatalogParseError`.
"""

import pytest

from repro.datalog import (
    BuiltinLiteral,
    DatalogParseError,
    DConst,
    DVar,
    Literal,
    parse_program,
)
from repro.datalog.parser import looks_like_program


class TestGrammar:
    def test_declarations_rules_and_query(self):
        program, query = parse_program("""
            # transitive closure
            idb T({U}, {U}).
            T(x, y) :- G(x, y).
            T(x, y) :- T(x, z), G(z, y).
            ?- T(x, y).
        """)
        assert sorted(program.idb_types) == ["T"]
        assert len(program.rules) == 2
        assert query == Literal("T", ["x", "y"])
        assert program.level() == (1, 0)

    def test_fact_rule_without_body(self):
        program, _ = parse_program("idb T(U). T('a').")
        assert program.rules[0].body == ()
        assert program.rules[0].head.terms == (DConst("a"),)

    def test_negated_literal_and_builtins(self):
        program, _ = parse_program("""
            idb T(U, U).
            T(x, y) :- G(x, y), not G(y, x), x != y.
        """)
        body = program.rules[0].body
        assert body[1] == Literal("G", ["y", "x"], positive=False)
        assert body[2] == BuiltinLiteral("=", "x", "y", positive=False)

    def test_in_sub_and_their_negations(self):
        program, _ = parse_program("""
            idb T(U, {U}).
            T(x, s) :- G(x, s), x in s, x not in s, s sub s, s not sub s.
        """)
        ops = [(lit.op, lit.positive) for lit in program.rules[0].body[1:]]
        assert ops == [("in", True), ("in", False),
                       ("sub", True), ("sub", False)]

    def test_nested_constants(self):
        program, query = parse_program("""
            idb T([U, {U}]).
            T(['a', {'b', 'c'}]).
            ?- T(['a', {'b', 'c'}]).
        """)
        constant = program.rules[0].head.terms[0]
        assert isinstance(constant, DConst)
        assert query.terms[0] == constant

    def test_numbers_are_atom_constants(self):
        program, _ = parse_program("idb T(U). T(42).")
        assert program.rules[0].head.terms == (DConst(42),)

    def test_variables_are_lowercase_initial(self):
        program, _ = parse_program("idb T(U, U). T(x, y) :- G(x, y).")
        assert all(isinstance(t, DVar)
                   for t in program.rules[0].head.terms)

    def test_query_constant_seeds_adornment_binding(self):
        _, query = parse_program("""
            idb T(U, U).
            T(x, y) :- G(x, y).
            ?- T('a', y).
        """)
        assert query.terms[0] == DConst("a")
        assert query.terms[1] == DVar("y")


class TestErrors:
    def test_error_carries_line_and_column(self):
        with pytest.raises(DatalogParseError) as excinfo:
            parse_program("idb T(U).\nT(x) :- G(x,\n")
        assert excinfo.value.line >= 2

    def test_unterminated_atom(self):
        with pytest.raises(DatalogParseError, match="unterminated"):
            parse_program("idb T(U). T('a.")

    def test_missing_dot(self):
        with pytest.raises(DatalogParseError):
            parse_program("idb T(U) T(x) :- G(x, x).")

    def test_undeclared_idb_head(self):
        with pytest.raises(DatalogParseError, match="undeclared"):
            parse_program("T(x, y) :- G(x, y).")

    def test_duplicate_declaration(self):
        with pytest.raises(DatalogParseError, match="duplicate"):
            parse_program("idb T(U). idb T(U).")

    def test_two_queries_rejected(self):
        with pytest.raises(DatalogParseError, match="one"):
            parse_program("idb T(U). T('a'). ?- T(x). ?- T(y).")

    def test_head_arity_mismatch(self):
        with pytest.raises(DatalogParseError, match="arity"):
            parse_program("idb T(U, U). T(x) :- G(x, x).")

    def test_unexpected_character(self):
        with pytest.raises(DatalogParseError, match="unexpected"):
            parse_program("idb T(U). T(x) :- G(x, x) & G(x, x).")


class TestSniffer:
    def test_programs_are_detected(self):
        assert looks_like_program("idb T(U). T('a').")
        assert looks_like_program("T(x, y) :- G(x, y).")
        assert looks_like_program("?- T(x).")

    def test_calc_queries_are_not(self):
        assert not looks_like_program("{[x:{U}] | not G(x, x)}")
        assert not looks_like_program(
            "{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})](G(x,y))(x, y)}")
