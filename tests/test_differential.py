"""Differential tests: naive vs semi-naive vs interned, indistinguishable.

The delta-driven strategy (PR 3's tentpole) and the interned columnar
kernel (PR 8's tentpole) are only optimisations — on every query they
must produce the same answer, the same stage count and the same
divergence behaviour as the naive re-derive-everything object engine.
This suite checks that on:

* every canonical workload query over its worked instances,
* randomly generated CALC+IFP and CALC+PFP queries (hypothesis),
* randomly generated safe inf-Datalog programs (hypothesis),

including the *failure* channel: a PFP query that diverges must raise
``PFPDivergenceError`` with the identical period and stage under all
three lanes.  The naive object engine is the oracle; the interned
engine (``intern=True``) is the candidate.

Fast versions run in tier-1; ``-m slow`` runs the deeper sweeps
(hundreds of extra examples).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import (
    calc_queries,
    datalog_programs,
    flat_graph_instances,
    supply_chain_instances,
)
from repro.core.evaluation import evaluate
from repro.core.fixpoint import PFPDivergenceError
from repro.datalog import evaluate_inflationary, inflationary_stages
from repro.obs import Tracer, use_tracer
from repro.workloads import (
    bipartite_graph,
    bipartite_query,
    chain_graph,
    cyclic_nodes_query,
    cycle_graph,
    nest_query_ifp,
    pfp_transitive_closure_query,
    set_chain_graph,
    set_random_graph,
    transitive_closure_query,
)

FAST = settings(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
DEEP = settings(max_examples=150, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _calc_outcome(query, inst, strategy, intern=False):
    """Evaluate under a fresh tracer; normalise success and divergence
    into one comparable value, alongside the total fixpoint stage count."""
    tracer = Tracer()
    with use_tracer(tracer):
        try:
            outcome = ("ok", evaluate(query, inst, strategy=strategy,
                                      intern=intern))
        except PFPDivergenceError as error:
            outcome = ("diverged", error.period, error.stage)
    stages = (tracer.counters.get("ifp.stages", 0),
              tracer.counters.get("pfp.stages", 0))
    return outcome, stages


def assert_calc_strategies_agree(query, inst):
    naive = _calc_outcome(query, inst, "naive")
    seminaive = _calc_outcome(query, inst, "seminaive")
    interned = _calc_outcome(query, inst, "seminaive", intern=True)
    assert naive == seminaive == interned


def assert_datalog_strategies_agree(program, inst):
    naive = list(inflationary_stages(program, inst, strategy="naive"))
    seminaive = list(inflationary_stages(program, inst,
                                         strategy="seminaive"))
    interned = list(inflationary_stages(program, inst,
                                        strategy="seminaive", intern=True))
    # Identical state *sequences*, not just final results.
    assert naive == seminaive == interned
    assert (evaluate_inflationary(program, inst, strategy="naive")
            == evaluate_inflationary(program, inst, strategy="seminaive")
            == evaluate_inflationary(program, inst, strategy="seminaive",
                                     intern=True))


# ---------------------------------------------------------------------------
# Canonical workload queries
# ---------------------------------------------------------------------------

WORKLOADS = [
    pytest.param(transitive_closure_query(), set_chain_graph(4),
                 id="tc-set-chain"),
    pytest.param(transitive_closure_query(), set_random_graph(3, 5),
                 id="tc-set-random"),
    pytest.param(transitive_closure_query("U"), chain_graph(6),
                 id="tc-flat-chain"),
    pytest.param(transitive_closure_query("U"), cycle_graph(5),
                 id="tc-flat-cycle"),
    pytest.param(pfp_transitive_closure_query(), set_chain_graph(4),
                 id="pfp-tc-set-chain"),
    pytest.param(pfp_transitive_closure_query("U"), cycle_graph(4),
                 id="pfp-tc-flat-cycle"),
    pytest.param(cyclic_nodes_query("U"), cycle_graph(4),
                 id="cyclic-nodes"),
    pytest.param(bipartite_query(), bipartite_graph(2, 2, p=1.0),
                 id="bipartite"),
]


class TestWorkloadQueries:
    @pytest.mark.parametrize("query,inst", WORKLOADS)
    def test_strategies_agree(self, query, inst):
        assert_calc_strategies_agree(query, inst)

    def test_nest_ifp_strategies_agree(self):
        from repro.objects import database_schema, instance

        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("a", "c"), ("b", "c")])
        assert_calc_strategies_agree(nest_query_ifp(), inst)

    def test_pfp_divergence_identical(self, set_graph_schema):
        """A diverging PFP raises with the same period/stage either way."""
        from repro.core.builder import V, pfp, query, rel
        from repro.objects import atom, cset, instance

        a, b = cset(atom("a")), cset(atom("b"))
        inst = instance(set_graph_schema, G=[(a, b)])
        x = V("x", "{U}")
        flip = pfp("S", [x], ~rel("S")(x))
        q = query([x], flip(x))
        naive = _calc_outcome(q, inst, "naive")
        seminaive = _calc_outcome(q, inst, "seminaive")
        interned = _calc_outcome(q, inst, "seminaive", intern=True)
        assert naive == seminaive == interned
        assert naive[0][0] == "diverged"


# ---------------------------------------------------------------------------
# Random CALC(+IFP/PFP) queries
# ---------------------------------------------------------------------------

class TestRandomCalc:
    @FAST
    @given(query=calc_queries("ifp"), inst=flat_graph_instances())
    def test_ifp_strategies_agree(self, query, inst):
        assert_calc_strategies_agree(query, inst)

    @FAST
    @given(query=calc_queries("pfp"), inst=flat_graph_instances())
    def test_pfp_strategies_agree(self, query, inst):
        assert_calc_strategies_agree(query, inst)

    @pytest.mark.slow
    @DEEP
    @given(query=calc_queries("ifp"), inst=flat_graph_instances())
    def test_ifp_strategies_agree_deep(self, query, inst):
        assert_calc_strategies_agree(query, inst)

    @pytest.mark.slow
    @DEEP
    @given(query=calc_queries("pfp"), inst=flat_graph_instances())
    def test_pfp_strategies_agree_deep(self, query, inst):
        assert_calc_strategies_agree(query, inst)


# ---------------------------------------------------------------------------
# Random inf-Datalog programs
# ---------------------------------------------------------------------------

class TestRandomDatalog:
    @FAST
    @given(program=datalog_programs(), inst=flat_graph_instances())
    def test_strategies_agree(self, program, inst):
        assert_datalog_strategies_agree(program, inst)

    @pytest.mark.slow
    @DEEP
    @given(program=datalog_programs(), inst=flat_graph_instances())
    def test_strategies_agree_deep(self, program, inst):
        assert_datalog_strategies_agree(program, inst)


# ---------------------------------------------------------------------------
# Random supply-chain instances (PR 10): realistic nested values
# ---------------------------------------------------------------------------
#
# The flat-graph draws above never exercise set-valued columns.  Here the
# random differential answers the golden supply-chain inventory — nested
# membership, BOM fixpoints, PFP — over randomly drawn miniature nested
# instances, holding all three lanes to identical answers *and* stage
# counts on every (instance, question) pair.

def assert_question_lanes_agree(question, inst):
    from repro.workloads import answer_question

    naive = answer_question(question, inst, strategy="naive")
    seminaive = answer_question(question, inst, strategy="seminaive")
    interned = answer_question(question, inst, strategy="seminaive",
                               intern=True)
    assert naive == seminaive == interned


def _inventory_questions():
    from repro.workloads import QUESTIONS

    return st.sampled_from(QUESTIONS)


class TestSupplyChainDifferential:
    @FAST
    @given(inst=supply_chain_instances(), question=_inventory_questions())
    def test_lanes_agree(self, question, inst):
        assert_question_lanes_agree(question, inst)

    @pytest.mark.slow
    @DEEP
    @given(inst=supply_chain_instances(), question=_inventory_questions())
    def test_lanes_agree_deep(self, question, inst):
        assert_question_lanes_agree(question, inst)
