"""Golden tests for the ``repro.lint`` static analyzer.

Each test pins a diagnostic transcript from the paper's own examples:
Example 5.1 (rule 9 nesting), Example 5.3 (rules 9'/10 via IFP terms),
Example 5.2 (the tau* iteration dropping columns), and the Theorem 5.3
exempt-type discipline.
"""

import json

import pytest

from repro.core.builder import V, exists, ifp, pfp, query, rel
from repro.datalog.syntax import Literal, Program, Rule
from repro.lint import (
    CODES,
    Severity,
    explain,
    lint_program,
    lint_query,
    lint_source,
)
from repro.objects import database_schema
from repro.workloads import (
    nest_query,
    nest_query_ifp,
    pfp_transitive_closure_query,
    set_graph_schema,
)

from .test_theorem53 import EXEMPT, guarded_parity_query


def codes(report):
    return [d.code for d in report]


def find(report, code):
    return [d for d in report if d.code == code]


def rr_citations(report):
    """``RR001`` diagnostics keyed by the cited variable name."""
    return {d.message.split("'")[1]: d for d in find(report, "RR001")}


@pytest.fixture
def p_schema():
    return database_schema(P=["U", "U"])


class TestGoldenExamples:
    def test_example_5_1_cites_rule_9(self, p_schema):
        report = lint_query(nest_query(), p_schema)
        assert find(report, "RR005"), "Example 5.1 is range restricted"
        by_var = rr_citations(report)
        assert set(by_var) == {"x", "s", "y", "z"}
        assert by_var["s"].rule == "9"
        assert "nest pattern" in by_var["s"].message
        assert by_var["y"].rule == "9"
        assert by_var["x"].rule == "1"
        verdict = find(report, "CPX001")[0]
        assert "LOGSPACE" in verdict.message

    def test_example_5_3_cites_rules_9prime_and_10(self, p_schema):
        report = lint_query(nest_query_ifp(), p_schema)
        assert find(report, "RR005")
        by_var = rr_citations(report)
        assert by_var["s"].rule == "9'"
        assert "fixpoint term" in by_var["s"].message
        assert by_var["yv"].rule == "10"
        assert "survives the tau iteration" in by_var["yv"].message
        verdict = find(report, "CPX001")[0]
        assert "PTIME" in verdict.message

    def test_example_5_2_tau_star_drops_columns(self):
        # Example 5.2: tau* = {2}, so only y is restricted; x and z are
        # free-variable violations and columns 1, 3 are dropped.
        x, y, z, t = (V(n, "U") for n in "xyzt")
        phi = (exists(t, rel("S52")(z, x, t) & rel("S52")(t, y, y))
               | (~rel("Pu")(x) & rel("Pu")(y)))
        fix = ifp("S52", [x, y, z], phi)
        q = query([x, y, z], fix(x, y, z))
        report = lint_query(q, database_schema(Pu=["U"]))

        assert not find(report, "RR005")
        free = find(report, "RR002")
        assert {d.message.split("'")[1] for d in free} == {"x", "z"}
        for diagnostic in free:
            assert diagnostic.severity is Severity.ERROR
            assert diagnostic.suggestion is not None
            assert "rule 1 of Definition 5.2" in diagnostic.suggestion
        dropped = find(report, "RR006")[0]
        assert dropped.severity is Severity.WARNING
        assert "[1, 3]" in dropped.message
        assert "rule 10" in dropped.message
        assert find(report, "CPX003")

    def test_theorem_5_3_exempt_discipline(self):
        schema = database_schema(P=["U"])
        q = guarded_parity_query()

        strict = lint_query(q, schema)
        assert not find(strict, "RR005")
        assert find(strict, "CPX003")

        relaxed = lint_query(q, schema, exempt_types=EXEMPT)
        assert find(relaxed, "RR005")
        note = find(relaxed, "CPX004")[0]
        assert "Theorem 5.3" in note.message
        verdict = find(relaxed, "CPX001")[0]
        assert "Theorem 5.3" in verdict.message


class TestTypePass:
    def test_three_independent_errors_three_diagnostics(self):
        schema = database_schema(G=["U", "U"])
        report = lint_source("{[x:U] | H(x) and G(x) and G(x, x, x)}",
                             schema)
        assert codes(report) == ["TYP001", "TYP002", "TYP002"]
        assert all(d.severity is Severity.ERROR for d in report)
        # Distinct source locations: the errors are independent.
        assert len({d.column for d in report}) == 3

    def test_type_errors_suppress_later_passes(self):
        schema = database_schema(G=["U", "U"])
        report = lint_source("{[x:U] | H(x)}", schema)
        assert codes(report) == ["TYP001"]  # no LVL/RR/CPX noise

    def test_parse_error_is_a_finding(self):
        report = lint_source("{[x:U] | G(x", database_schema(G=["U"]))
        assert codes(report) == ["PAR001"]
        assert report.fails()


class TestSpans:
    def test_violation_pinpoints_source(self):
        report = lint_source("{[x:{U}] | not G(x, x)}", set_graph_schema())
        violation = find(report, "RR002")[0]
        assert violation.line == 1
        assert violation.column == 12
        assert violation.snippet == "not G(x, x)"
        text = "{[x:{U}] | not G(x, x)}"
        assert text[violation.span.start:violation.span.end] == "not G(x, x)"

    def test_render_includes_location_and_suggestion(self):
        report = lint_source("{[x:{U}] | not G(x, x)}", set_graph_schema())
        rendered = report.render()
        assert "1:12: error[RR002]" in rendered
        assert "suggestion:" in rendered


class TestCostPass:
    def test_cost001_when_quantified_height_exceeds_schema(self, p_schema):
        report = lint_source(
            "{[x:U] | P(x, x) and exists s:{U} "
            "(forall y:U (y in s <-> P(x, y)))}",
            p_schema)
        warning = find(report, "COST001")[0]
        assert warning.severity is Severity.WARNING
        assert "set height 1" in warning.message
        assert "Theorem 5.1" in warning.suggestion
        # The query is still range restricted; the warning is advisory.
        assert find(report, "RR005")

    def test_cost002_for_set_typed_quantification(self):
        report = lint_query(pfp_transitive_closure_query(),
                            set_graph_schema())
        info = find(report, "COST002")[0]
        assert info.severity is Severity.INFO
        assert "|dom({U}, D)| = 256" in info.message


class TestComplexityPass:
    def test_pfp_with_reassertion_converges(self):
        report = lint_query(pfp_transitive_closure_query(),
                            set_graph_schema())
        divergence = find(report, "CPX002")[0]
        assert divergence.severity is Severity.INFO
        assert "inflationary" in divergence.message
        assert "PSPACE" in find(report, "CPX001")[0].message

    def test_pfp_without_reassertion_warns(self):
        x, y, z = V("x", "{U}"), V("y", "{U}"), V("z", "{U}")
        G, S = rel("G"), rel("S")
        fix = pfp("S", [x, y], G(x, y) | exists(z, S(x, z) & G(z, y)))
        report = lint_query(query([x, y], fix(x, y)), set_graph_schema())
        divergence = find(report, "CPX002")[0]
        assert divergence.severity is Severity.WARNING
        assert "use IFP" in divergence.suggestion


class TestDatalogPass:
    def test_translated_program_gets_full_pipeline(self):
        program = Program(
            rules=[
                Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
                Rule(Literal("T", ["x", "y"]),
                     [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
            ],
            idb_types={"T": ["{U}", "{U}"]},
        )
        report = lint_program(program, set_graph_schema())
        # Program-level passes come first; the translation note and the
        # translated-query pipeline follow.
        assert codes(report)[0] == "DEP001"
        assert codes(report).index("DEP001") < codes(report).index("DLG002")
        assert find(report, "RR005")
        assert "PTIME" in find(report, "CPX001")[0].message
        assert report.analysis is not None
        assert report.analysis.stratified

    def test_multi_idb_program_skips_translation(self):
        program = Program(
            rules=[
                Rule(Literal("A", ["x"]), [Literal("G", ["x", "y"])]),
                Rule(Literal("B", ["x"]), [Literal("G", ["y", "x"])]),
            ],
            idb_types={"A": ["{U}"], "B": ["{U}"]},
        )
        report = lint_program(program, set_graph_schema())
        # The single-IDB translation limit is informational now that the
        # program passes analyze multi-IDB programs natively.
        assert find(report, "DLG004")
        assert not find(report, "DLG001")
        assert find(report, "DEP001")
        assert not report.fails()
        assert report.analysis is not None

    def test_bad_program_is_still_a_dlg001_error(self):
        # An unknown EDB predicate defeats the translation for real
        # (not just structurally): that stays an ERROR.
        program = Program(
            rules=[Rule(Literal("A", ["x"]), [Literal("Nope", ["x"])])],
            idb_types={"A": ["{U}"]},
        )
        report = lint_program(program, set_graph_schema())
        assert find(report, "DLG001")
        assert report.fails()


class TestReportAPI:
    def test_json_round_trip(self):
        report = lint_source("{[x:{U}] | not G(x, x)}", set_graph_schema())
        payload = json.loads(report.to_json())
        assert [d["code"] for d in payload] == codes(report)
        assert all(d["severity"] in {"info", "warning", "error"}
                   for d in payload)
        violation = next(d for d in payload if d["code"] == "RR002")
        assert violation["span"] == {"start": 11, "end": 22}
        assert violation["line"] == 1 and violation["column"] == 12
        assert "suggestion" in violation

    def test_fail_on_thresholds(self, p_schema):
        clean = lint_query(nest_query(), p_schema)
        assert not clean.fails()
        assert not clean.fails(Severity.WARNING)
        report = lint_source(
            "{[x:U] | P(x, x) and exists s:{U} "
            "(forall y:U (y in s <-> P(x, y)))}",
            p_schema)
        assert not report.fails()  # only a warning
        assert report.fails(Severity.WARNING)

    def test_every_code_in_registry_explains(self):
        for code in CODES:
            text = explain(code)
            assert text.startswith(code)
            assert "Paper:" in text
        with pytest.raises(KeyError):
            explain("XXX999")

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert str(Severity.WARNING) == "warning"
