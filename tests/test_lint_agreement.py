"""Regression: the lint verdict agrees with the evaluator.

For every workload query, ``lint_query`` says "range restricted"
(``RR005``) exactly when :func:`evaluate_range_restricted` accepts the
query — the static analyzer and the safe evaluation path share one
Definition 5.2/5.3 analysis and must never drift apart.
"""

import pytest

from repro.core.builder import V, query, rel
from repro.core.range_restriction import RangeComputationError
from repro.core.safety import evaluate_range_restricted
from repro.lint import lint_query
from repro.objects import atom, cset, database_schema, instance
from repro.workloads import (
    bipartite_query,
    chain_graph,
    cyclic_nodes_query,
    nest_query,
    nest_query_ifp,
    pfp_transitive_closure_query,
    same_members_query,
    set_chain_graph,
    transitive_closure_query,
    transitive_closure_term_query,
)


def _flat_p_instance():
    schema = database_schema(P=["U", "U"])
    return instance(schema, P=[("a", "b"), ("a", "c"), ("b", "c")])


def _sets_instance():
    schema = database_schema(R=["{U}"])
    return instance(schema, R=[
        (cset(atom("a")),),
        (cset(atom("a"), atom("b")),),
    ])


def _unsafe_query():
    x = V("x", "{U}")
    return query([x], ~rel("G")(x, x))


CASES = [
    ("transitive_closure", transitive_closure_query,
     lambda: set_chain_graph(4)),
    ("transitive_closure_term", transitive_closure_term_query,
     lambda: set_chain_graph(4)),
    ("pfp_transitive_closure", pfp_transitive_closure_query,
     lambda: set_chain_graph(4)),
    ("cyclic_nodes", cyclic_nodes_query, lambda: set_chain_graph(4)),
    ("bipartite", bipartite_query, lambda: chain_graph(3)),
    ("nest", nest_query, _flat_p_instance),
    ("nest_ifp", nest_query_ifp, _flat_p_instance),
    ("same_members", same_members_query, _sets_instance),
    ("unsafe_negation", _unsafe_query, lambda: set_chain_graph(3)),
]


@pytest.mark.parametrize(("name", "make_query", "make_instance"), CASES,
                         ids=[case[0] for case in CASES])
def test_lint_verdict_matches_evaluator(name, make_query, make_instance):
    q = make_query()
    inst = make_instance()
    report = lint_query(q, inst.schema)

    lint_says_rr = any(d.code == "RR005" for d in report)
    try:
        evaluate_range_restricted(q, inst)
        evaluator_accepts = True
    except RangeComputationError:
        evaluator_accepts = False

    assert lint_says_rr == evaluator_accepts, (
        f"{name}: lint says range-restricted={lint_says_rr} but the "
        f"evaluator {'accepted' if evaluator_accepts else 'rejected'} it"
    )
    # A rejected query must come with pinpointed violations, an accepted
    # one with per-variable citations.
    if lint_says_rr:
        assert any(d.code == "RR001" for d in report)
    else:
        assert any(d.code in {"RR002", "RR003", "RR004"} for d in report)
