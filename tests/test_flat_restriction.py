"""Tests for the flat-to-flat restriction (Section 6; experiment E18).

``(CALC_i^k)_0`` queries take flat inputs to flat answers but may use
higher intermediate types; Theorems 6.1/6.2 place them at
``P(hyper(i,k))``-time with IFP.  We exercise the machinery:

* a quintessential ``(CALC_1^2)_0`` query — kernel existence (an NP
  property decided by quantifying over a set variable);
* an exponential-space fixpoint over set-typed columns on a flat input
  (the EXPTIME flavour of ``(CALC_1^2 + IFP)_0``);
* the density facts used in Theorem 6.1's proof: flat inputs are dense
  w.r.t. ``<0,k>``-types and sparse w.r.t. all higher types.
"""

import itertools

import pytest

from repro.analysis import is_dense_witness, is_sparse_witness
from repro.core.builder import V, eq, exists, forall, ifp, member, proj, query, rel
from repro.core.evaluation import evaluate
from repro.core.typecheck import query_level
from repro.objects import database_schema
from repro.workloads import chain_graph, cycle_graph, random_graph


def kernel_query():
    """The graph itself if it has a kernel (independent + dominating set).

    A flat-to-flat query whose only higher-order ingredient is one
    existential set variable — squarely in (CALC_1^2)_0.
    """
    t = V("t", "[U,U]")
    X = V("X", "{U}")
    u, v = V("u", "U"), V("v", "U")
    w, z = V("w", "U"), V("z", "U")
    G = rel("G")
    independent = forall([u, v],
                         (member(u, X) & member(v, X)).implies(~G(u, v)))
    is_node = (exists(V("n1", "U"), G(w, V("n1", "U")))
               | exists(V("n2", "U"), G(V("n2", "U"), w)))
    dominated = member(w, X) | exists(z, member(z, X) & G(z, w))
    dominating = forall(w, is_node.implies(dominated))
    return query([t], G(proj(t, 1), proj(t, 2))
                 & exists(X, independent & dominating))


def brute_force_has_kernel(inst) -> bool:
    edges = {(row.component(1).label, row.component(2).label)
             for row in inst.relation("G")}
    nodes = sorted({n for edge in edges for n in edge})
    for size in range(len(nodes) + 1):
        for candidate in itertools.combinations(nodes, size):
            members = set(candidate)
            independent = all(
                not ((u, v) in edges) for u in members for v in members
            )
            dominating = all(
                n in members or any((m, n) in edges for m in members)
                for n in nodes
            )
            if independent and dominating:
                return True
    return False


class TestKernelQuery:
    def test_level(self):
        schema = database_schema(G=["U", "U"])
        assert query_level(kernel_query(), schema) == (1, 2)

    @pytest.mark.parametrize("make,n", [
        (chain_graph, 3), (chain_graph, 4),
        (cycle_graph, 3), (cycle_graph, 4), (cycle_graph, 5),
    ])
    def test_matches_brute_force(self, make, n):
        inst = make(n)
        answers = evaluate(kernel_query(), inst)
        expected = brute_force_has_kernel(inst)
        assert bool(answers) == expected
        if expected:
            assert len(answers) == inst.relation("G").cardinality

    def test_random_graphs(self):
        for seed in (1, 2, 3):
            inst = random_graph(4, p=0.5, seed=seed)
            if inst.relation("G").cardinality == 0:
                continue
            answers = evaluate(kernel_query(), inst)
            assert bool(answers) == brute_force_has_kernel(inst)


class TestSetFixpointOnFlatInput:
    """(CALC_1 + IFP)_0: a fixpoint whose columns are set-typed."""

    def reachable_sets_query(self):
        """IFP over {U}-columns: X -> X ∪ N(X), seeded with {source}.

        The stages enumerate the BFS-closure sets of the source; the
        iteration space is dom({U}) — exponential in the flat input, as
        Theorem 6.1's EXPTIME bound allows.
        """
        X, Y = V("X", "{U}"), V("Y", "{U}")
        u, v, u2 = V("u", "U"), V("v", "U"), V("u2", "U")
        G = rel("G")
        seed = forall(u, member(u, X).iff(eq(u, V("src", "U"))))
        grow = exists(Y, rel("Frontier")(Y) & forall(
            v, member(v, X).iff(
                member(v, Y)
                | exists(u2, member(u2, Y) & G(u2, v)))))
        frontier = ifp("Frontier", [X], seed | grow)
        return query([("src", "U"), ("X", "{U}")],
                     exists(V("o", "U"), G(V("src", "U"), V("o", "U")))
                     & frontier(X))

    def test_reachable_sets_on_chain(self):
        inst = chain_graph(3)
        answers = evaluate(self.reachable_sets_query(), inst,
                           max_domain_size=10 ** 5)
        by_source = {}
        for row in answers:
            by_source.setdefault(str(row.component(1)), set()).add(
                frozenset(str(x) for x in row.component(2)))
        # from a00: {a00}, {a00,a01}, {a00,a01,a02} (stages of BFS)
        assert frozenset({"a00"}) in by_source["a00"]
        assert frozenset({"a00", "a01", "a02"}) in by_source["a00"]

    def test_final_stage_is_reach_set(self):
        inst = cycle_graph(4)
        answers = evaluate(self.reachable_sets_query(), inst,
                           max_domain_size=10 ** 5)
        biggest = max(
            (row for row in answers if str(row.component(1)) == "a00"),
            key=lambda row: len(row.component(2)),
        )
        assert len(biggest.component(2)) == 4  # whole cycle reachable


class TestFlatDensityFacts:
    """Theorem 6.1's proof: flat inputs are dense w.r.t. <0,k>-types and
    sparse w.r.t. all higher types."""

    def test_flat_dense_at_height_zero(self):
        inst = random_graph(6, p=0.5, seed=9)
        assert is_dense_witness(inst, 0, 2)

    def test_flat_sparse_at_height_one(self):
        inst = chain_graph(30)
        assert is_sparse_witness(inst, 1, 2)
        assert not is_dense_witness(inst, 1, 2)
